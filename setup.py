"""Setup shim so `setup.py develop` works offline (no wheel available)."""
from setuptools import setup

setup()
