"""Tests for superimposed-coding signatures (IR²-tree)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.text.signature import SignatureScheme

term_sets = st.frozensets(st.integers(min_value=0, max_value=127), max_size=10)


class TestScheme:
    def test_sizing_for_vocabulary(self):
        assert SignatureScheme.for_vocabulary(256).signature_bits == 128
        assert SignatureScheme.for_vocabulary(16).signature_bits == 32

    def test_byte_length(self):
        assert SignatureScheme(64).byte_length == 8
        assert SignatureScheme(65).byte_length == 9

    def test_validation(self):
        with pytest.raises(IndexError_):
            SignatureScheme(4)
        with pytest.raises(IndexError_):
            SignatureScheme(64, bits_per_term=0)
        with pytest.raises(IndexError_):
            SignatureScheme(64, bits_per_term=100)

    def test_term_signature_deterministic(self):
        scheme = SignatureScheme(64)
        assert scheme.term_signature(5) == scheme.term_signature(5)

    def test_term_signature_popcount(self):
        scheme = SignatureScheme(64, bits_per_term=3)
        for t in range(50):
            assert scheme.term_signature(t).bit_count() >= 3


class TestNoFalseNegatives:
    """The correctness-critical property: a term present below a node is
    always reported as possibly present."""

    @given(term_sets)
    def test_members_always_match(self, terms):
        scheme = SignatureScheme(64)
        sig = scheme.make(terms)
        for t in terms:
            assert scheme.may_contain(sig, t)

    @given(term_sets, term_sets)
    def test_union_covers_both(self, a, b):
        scheme = SignatureScheme(64)
        union_sig = scheme.make(a) | scheme.make(b)
        for t in a | b:
            assert scheme.may_contain(union_sig, t)

    @given(term_sets, term_sets)
    def test_matching_terms_upper_bounds_truth(self, terms, query):
        scheme = SignatureScheme(64)
        sig = scheme.make(terms)
        true_matches = len(terms & query)
        assert scheme.matching_terms(sig, query) >= true_matches


class TestFromMask:
    @given(term_sets)
    def test_from_mask_matches_make(self, terms):
        scheme = SignatureScheme(64)
        mask = 0
        for t in terms:
            mask |= 1 << t
        assert scheme.from_mask(mask) == scheme.make(terms)

    def test_empty_mask(self):
        assert SignatureScheme(64).from_mask(0) == 0


class TestFalsePositiveRate:
    def test_false_positives_exist_but_bounded(self):
        """With a saturating OR of many terms, unrelated terms may match —
        the expected cost of signatures — but a small signature over few
        terms should stay selective."""
        scheme = SignatureScheme(128, bits_per_term=3)
        sig = scheme.make(range(4))
        false_hits = sum(
            1 for t in range(200, 400) if scheme.may_contain(sig, t)
        )
        assert false_hits < 20  # 4 terms x 3 bits in 128 -> fp rate ~0.1%
