"""Tests for Jaccard similarity and the node-level upper bound."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.similarity import (
    jaccard,
    jaccard_sets,
    mask_of,
    mask_to_ids,
    overlap_ratio,
)

masks = st.integers(min_value=0, max_value=2**24 - 1)


class TestMaskHelpers:
    def test_mask_of(self):
        assert mask_of([0, 2, 5]) == 0b100101

    def test_mask_to_ids(self):
        assert mask_to_ids(0b100101) == frozenset({0, 2, 5})

    @given(st.frozensets(st.integers(min_value=0, max_value=63), max_size=8))
    def test_roundtrip(self, ids):
        assert mask_to_ids(mask_of(ids)) == ids


class TestJaccard:
    def test_paper_example_beijing(self):
        """Beijing Restaurant: {chinese, asian} vs {italian, pizza} -> 0,
        s(r1) = 0.5*0.6 = 0.3 as in Section 3."""
        t = mask_of([0, 1])  # chinese, asian
        w = mask_of([2, 3])  # italian, pizza
        assert jaccard(t, w) == 0.0
        assert 0.5 * 0.6 + 0.5 * jaccard(t, w) == pytest.approx(0.3)

    def test_paper_example_ontarios(self):
        """Ontario's Pizza: {pizza, italian} vs {italian, pizza} -> 1,
        s(r6) = 0.5*0.8 + 0.5*1 = 0.9 as in Section 3."""
        t = mask_of([2, 3])
        w = mask_of([2, 3])
        assert jaccard(t, w) == 1.0
        assert 0.5 * 0.8 + 0.5 * 1.0 == pytest.approx(0.9)

    def test_partial_overlap(self):
        assert jaccard(0b011, 0b110) == pytest.approx(1 / 3)

    def test_both_empty(self):
        assert jaccard(0, 0) == 0.0

    def test_one_empty(self):
        assert jaccard(0b1, 0) == 0.0

    @given(masks, masks)
    def test_range(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(masks, masks)
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @given(masks)
    def test_self_similarity(self, a):
        assert jaccard(a, a) == (1.0 if a else 0.0)

    @given(
        st.frozensets(st.integers(min_value=0, max_value=31), max_size=6),
        st.frozensets(st.integers(min_value=0, max_value=31), max_size=6),
    )
    def test_matches_set_version(self, a, b):
        assert jaccard(mask_of(a), mask_of(b)) == pytest.approx(
            jaccard_sets(a, b)
        )


class TestOverlapRatio:
    def test_upper_bounds_jaccard(self):
        """The SRT bound: |e.W ∩ W|/|W| >= J(t.W, W) for any t under e."""
        node = 0b111100  # union of child keywords
        query = 0b000110
        child = 0b000100  # subset of node
        assert overlap_ratio(node, query) >= jaccard(child, query)

    @given(masks, masks, masks)
    def test_upper_bound_property(self, child, extra, query):
        node = child | extra  # node summary covers the child
        assert overlap_ratio(node, query) + 1e-12 >= jaccard(child, query)

    def test_empty_query(self):
        assert overlap_ratio(0b111, 0) == 0.0

    def test_full_cover(self):
        assert overlap_ratio(0b111, 0b101) == 1.0

    @given(masks, masks)
    def test_monotone_in_node(self, node, query):
        bigger = node | (query and (1 << 30))
        assert overlap_ratio(bigger, query) >= overlap_ratio(node, query)
