"""Tests for the keyword vocabulary."""

import pytest

from repro.errors import VocabularyError
from repro.text.vocabulary import Vocabulary


class TestVocabulary:
    def test_add_and_lookup(self):
        v = Vocabulary()
        pid = v.add("pizza")
        assert v.term_id("pizza") == pid
        assert v.term(pid) == "pizza"
        assert v.size == 1

    def test_add_idempotent(self):
        v = Vocabulary()
        assert v.add("pizza") == v.add("pizza")
        assert v.size == 1

    def test_normalization(self):
        v = Vocabulary(["Pizza"])
        assert v.term_id("  PIZZA ") == 0
        assert "pizza" in v

    def test_unknown_term(self):
        v = Vocabulary(["a"])
        assert v.term_id("b") is None
        with pytest.raises(VocabularyError):
            v.require_id("b")

    def test_empty_term_rejected(self):
        v = Vocabulary()
        with pytest.raises(VocabularyError):
            v.add("   ")

    def test_term_id_out_of_range(self):
        v = Vocabulary(["a"])
        with pytest.raises(VocabularyError):
            v.term(5)

    def test_encode_drops_unknown(self):
        v = Vocabulary(["a", "b"])
        assert v.encode(["a", "zzz", "b"]) == frozenset({0, 1})

    def test_encode_adding_registers(self):
        v = Vocabulary(["a"])
        ids = v.encode_adding(["a", "b"])
        assert ids == frozenset({0, 1})
        assert v.size == 2

    def test_decode(self):
        v = Vocabulary(["a", "b", "c"])
        assert v.decode([0, 2]) == frozenset({"a", "c"})

    def test_mask_of(self):
        v = Vocabulary(["a", "b", "c"])
        assert v.mask_of(["a", "c", "unknown"]) == 0b101

    def test_iteration_order(self):
        v = Vocabulary(["x", "y", "z"])
        assert list(v) == ["x", "y", "z"]
        assert len(v) == 3

    def test_equality(self):
        assert Vocabulary(["a", "b"]) == Vocabulary(["a", "b"])
        assert Vocabulary(["a"]) != Vocabulary(["b"])
