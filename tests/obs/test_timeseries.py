"""Tests for repro.obs.timeseries: delta ring, windows, sampler.

The hypothesis property at the bottom is the accuracy contract: any
windowed quantile reconstructed from bucket-count deltas must land
within one log-bucket of the exact numpy percentile of the same
observations.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.obs.metrics import DEFAULT_LATENCY_BUCKETS, MetricsRegistry
from repro.obs.timeseries import Sampler, TimeSeriesRing


@pytest.fixture()
def reg() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_queries_total", "Queries.", ("algorithm",))
    reg.histogram("repro_query_seconds", "Latency.")
    reg.gauge("repro_resource_rss_bytes", "RSS.")
    return reg


class TestDeltaEncoding:
    def test_counter_delta_per_slot(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=16)
        c = reg.counter("repro_queries_total", "Queries.", ("algorithm",))
        ring.sample()
        c.labels(algorithm="stps").inc(5)
        slot = ring.sample()
        assert slot.counters[("repro_queries_total", ("stps",))] == 5.0
        # No activity: the next slot stores nothing for the counter.
        slot = ring.sample()
        assert slot.counters == {}

    def test_histogram_delta_and_window_merge(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=16)
        h = reg.histogram("repro_query_seconds", "Latency.")
        ring.sample()
        for v in (0.004, 0.004, 0.05):
            h.observe(v)
        ring.sample()
        h.observe(0.05)
        ring.sample()
        counts, sum_, count = ring.window_hist("repro_query_seconds", 60.0)
        assert count == 4
        assert sum_ == pytest.approx(0.004 * 2 + 0.05 * 2)
        assert sum(counts) == 4

    def test_gauges_are_absolute(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=16)
        g = reg.gauge("repro_resource_rss_bytes", "RSS.")
        g.set(100.0)
        ring.sample()
        g.set(60.0)  # gauges go down; a delta would be meaningless
        ring.sample()
        assert ring.latest_gauge("repro_resource_rss_bytes") == 60.0

    def test_preexisting_totals_count_once(self, reg):
        # Activity before the first sample lands in the first slot that
        # sees it, then never again (cumulative -> delta).
        c = reg.counter("repro_queries_total", "Queries.", ("algorithm",))
        c.labels(algorithm="stps").inc(7)
        ring = TimeSeriesRing(registry=reg, capacity=16)
        ring.sample()
        ring.sample()
        assert ring.delta("repro_queries_total", 60.0) == 7.0


class TestWindows:
    def test_rate_uses_covered_span(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=16)
        c = reg.counter("repro_queries_total", "Queries.", ("algorithm",))
        ring.sample()
        c.labels(algorithm="stps").inc(10)
        time.sleep(0.05)
        ring.sample()
        rate = ring.rate("repro_queries_total", window_s=60.0)
        span = ring.window_span(60.0)
        assert span > 0
        assert rate == pytest.approx(10.0 / span)

    def test_window_excludes_old_slots(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=16)
        c = reg.counter("repro_queries_total", "Queries.", ("algorithm",))
        ring.sample()
        c.labels(algorithm="stps").inc(100)
        time.sleep(0.05)
        ring.sample()  # old activity
        time.sleep(0.05)
        c.labels(algorithm="stps").inc(1)
        ring.sample()  # recent activity
        # A window shorter than the gap sees only the newest slot.
        assert ring.delta("repro_queries_total", 0.04) == 1.0
        assert ring.delta("repro_queries_total", 60.0) == 101.0

    def test_label_filter(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=16)
        c = reg.counter("repro_queries_total", "Queries.", ("algorithm",))
        ring.sample()
        c.labels(algorithm="stps").inc(3)
        c.labels(algorithm="stds").inc(9)
        ring.sample()
        assert ring.delta(
            "repro_queries_total", 60.0, labels={"algorithm": "stps"}
        ) == 3.0
        assert ring.delta("repro_queries_total", 60.0) == 12.0

    def test_empty_ring_is_quiet(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=16)
        assert ring.rate("repro_queries_total") == 0.0
        assert ring.delta("repro_queries_total", 60.0) == 0.0
        assert ring.window_quantile("repro_query_seconds", 0.99) == 0.0
        assert ring.latest_gauge("repro_resource_rss_bytes") is None
        assert len(ring) == 0

    def test_capacity_bounds_history(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=4)
        for _ in range(10):
            ring.sample()
        assert len(ring) == 4
        assert ring.samples_taken == 10

    def test_capacity_validation(self, reg):
        with pytest.raises(ReproError):
            TimeSeriesRing(registry=reg, capacity=1)


class TestTimeline:
    def test_per_slot_entries(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=16)
        c = reg.counter("repro_queries_total", "Queries.", ("algorithm",))
        h = reg.histogram("repro_query_seconds", "Latency.")
        g = reg.gauge("repro_resource_rss_bytes", "RSS.")
        g.set(1.0)
        ring.sample()
        c.labels(algorithm="stps").inc(4)
        h.observe(0.01)
        g.set(2.0)
        time.sleep(0.01)
        ring.sample()
        timeline = ring.timeline(
            counter_names=("repro_queries_total",),
            hist_names=("repro_query_seconds",),
            gauge_names=("repro_resource_rss_bytes",),
        )
        assert len(timeline) == 2
        last = timeline[-1]
        assert last["rates"]["repro_queries_total"] > 0
        assert last["hist"]["repro_query_seconds"]["count"] == 1
        assert "p95" in last["hist"]["repro_query_seconds"]
        assert last["gauges"]["repro_resource_rss_bytes"] == 2.0

    def test_max_slots_truncates(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=16)
        for _ in range(6):
            ring.sample()
        assert len(ring.timeline(max_slots=3)) == 3


class TestSampler:
    def test_samples_on_interval(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=64)
        with Sampler(ring, interval_s=0.02):
            time.sleep(0.1)
        assert len(ring) >= 3  # immediate + periodic + final

    def test_pre_sample_hook_runs_each_tick(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=64)
        calls = []
        with Sampler(ring, interval_s=0.02, pre_sample=(lambda: calls.append(1),)):
            time.sleep(0.08)
        assert len(calls) == len(ring)

    def test_failing_hook_disabled_not_fatal(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=64)

        def boom():
            raise RuntimeError("hook failure")

        with Sampler(ring, interval_s=0.02, pre_sample=(boom,)) as sampler:
            time.sleep(0.08)
            assert sampler.running
        assert len(ring) >= 3  # sampling survived the hook

    def test_restart_after_stop(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=64)
        sampler = Sampler(ring, interval_s=0.02)
        sampler.start()
        sampler.stop()
        n = len(ring)
        sampler.start()
        time.sleep(0.05)
        sampler.stop()
        assert len(ring) > n
        assert not sampler.running

    def test_interval_validation(self, reg):
        with pytest.raises(ReproError):
            Sampler(TimeSeriesRing(registry=reg), interval_s=0.0)

    def test_no_leaked_threads(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=64)
        with Sampler(ring, interval_s=0.02):
            assert any(
                t.name == "repro-ts-sampler" for t in threading.enumerate()
            )
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(
                t.name == "repro-ts-sampler" for t in threading.enumerate()
            ):
                break
            time.sleep(0.01)
        else:  # pragma: no cover - diagnostic
            pytest.fail("sampler thread leaked")


def _bucket_index(buckets: tuple[float, ...], value: float) -> int:
    for i, bound in enumerate(buckets):
        if value <= bound:
            return i
    return len(buckets)


class TestQuantileAccuracyProperty:
    """Windowed quantiles vs exact percentiles of the same stream."""

    @settings(max_examples=60, deadline=None, derandomize=True)
    @given(
        st.lists(
            st.floats(min_value=1e-4, max_value=20.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=200,
        ),
        st.integers(min_value=1, max_value=5),
    )
    def test_window_quantile_within_one_bucket(self, values, n_batches):
        reg = MetricsRegistry()
        h = reg.histogram("repro_query_seconds", "Latency.")
        ring = TimeSeriesRing(registry=reg, capacity=16)
        ring.sample()
        # Spread the stream over several slots: the windowed quantile
        # must merge the per-slot deltas back into one distribution.
        for batch in np.array_split(np.asarray(values), n_batches):
            for v in batch:
                h.observe(float(v))
            ring.sample()
        buckets = ring.buckets("repro_query_seconds")
        assert buckets == tuple(DEFAULT_LATENCY_BUCKETS)
        for q in (0.5, 0.95, 0.99):
            got = ring.window_quantile("repro_query_seconds", q, 1e9)
            # "inverted_cdf" is the ceil(q*n) order statistic — the same
            # rank rule the bucket walk uses, and always an actual
            # observation (linear interpolation would invent values no
            # bucketed histogram could report).
            exact = float(
                np.percentile(values, q * 100, method="inverted_cdf")
            )
            # Same contract as Histogram.quantile: the reconstructed
            # value may be off by at most one log-bucket.
            got_idx = _bucket_index(buckets, got)
            exact_idx = _bucket_index(buckets, exact)
            assert abs(got_idx - exact_idx) <= 1, (
                f"q={q}: got {got} (bucket {got_idx}), "
                f"exact {exact} (bucket {exact_idx})"
            )
