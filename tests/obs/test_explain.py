"""Tests for repro.obs.explain: collectors, plans, EXPLAIN end-to-end."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.obs import explain
from repro.obs.explain import (
    MAX_BOUND_SAMPLES,
    MAX_TRAJECTORY,
    NULL_COLLECTOR,
    BoundSummary,
    DiagnosticsCollector,
    QueryPlan,
    counter_deltas,
    counter_snapshot,
    resolve,
)
from repro.obs.metrics import MetricsRegistry


class TestBoundSummary:
    def test_tracks_count_min_max_sample(self):
        s = BoundSummary()
        for v in (0.5, 0.2, 0.9):
            s.add(v)
        assert s.count == 3
        assert s.min == 0.2
        assert s.max == 0.9
        assert s.sample == [0.5, 0.2, 0.9]

    def test_sample_capped(self):
        s = BoundSummary()
        for i in range(MAX_BOUND_SAMPLES + 10):
            s.add(float(i))
        assert len(s.sample) == MAX_BOUND_SAMPLES
        assert s.count == MAX_BOUND_SAMPLES + 10

    def test_empty_to_dict(self):
        assert BoundSummary().to_dict() == {"count": 0}

    def test_merge(self):
        a, b = BoundSummary(), BoundSummary()
        a.add(0.5)
        b.add(0.1)
        b.add(0.9)
        a.merge(b)
        assert (a.count, a.min, a.max) == (3, 0.1, 0.9)
        a.merge(BoundSummary())  # merging empty is a no-op
        assert a.count == 3


class TestCollector:
    def test_feature_set_anatomy(self):
        col = DiagnosticsCollector()
        col.node_visited(0, 1.0)
        col.node_pruned(0)  # text prune: no bound
        col.node_pruned(0, 0.4)  # bound prune
        col.entries_pruned(0, 7)
        col.entries_pruned(0, 0)  # no-op
        col.feature_pulled(1)
        plan = col.plan()
        assert [d.set_id for d in plan.feature_sets] == [0, 1]
        d0 = plan.feature_sets[0]
        assert (d0.nodes_visited, d0.nodes_pruned, d0.entries_pruned) == (
            1, 2, 7,
        )
        assert d0.pruned_bounds.count == 1  # only the bound-carrying prune
        assert plan.feature_sets[1].features_pulled == 1

    def test_pull_trajectory_capped(self):
        col = DiagnosticsCollector()
        for i in range(MAX_TRAJECTORY + 5):
            col.pull(0, 0.5, 0.4)
        cd = col.plan().combinations
        assert cd.pull_rounds == MAX_TRAJECTORY + 5
        assert len(cd.trajectory) == MAX_TRAJECTORY
        assert cd.to_dict()["trajectory_truncated"] is True

    def test_combination_accept_reject(self):
        col = DiagnosticsCollector()
        col.combination(1.0, accepted=True)
        col.combination(0.9, accepted=False)
        col.retrieval_skipped(0.8)
        cd = col.plan().combinations
        assert (cd.released, cd.rejected_2r, cd.retrievals_skipped) == (
            1, 1, 1,
        )

    def test_shard_verdicts_sorted_and_counted(self):
        col = DiagnosticsCollector()
        col.shard(2, "pruned", 0.3, 0.5)
        col.shard(0, "executed", 0.9, 0.5)
        col.shard(1, "failed", 0.7, 0.5, error="boom")
        plan = col.plan()
        assert [s.shard_id for s in plan.shards] == [0, 1, 2]
        assert plan.shard_outcomes() == {
            "executed": 1, "failed": 1, "pruned": 1,
        }

    def test_executed_shard_merges_sub_plan(self):
        col = DiagnosticsCollector()
        sub = col.child(0)
        sub.feature_pulled(0)
        sub.feature_pulled(1)
        sub.combination(1.0, accepted=True)
        sub.combination(0.5, accepted=False)
        col.shard(0, "executed", 1.0, -math.inf, sub=sub)
        plan = col.plan()
        assert plan.features_pulled_total == 2
        assert plan.combinations.released == 1
        assert plan.combinations.rejected_2r == 1
        # The embedded sub-plan survives verbatim.
        assert plan.shards[0].plan["feature_sets"][0]["features_pulled"] == 1

    def test_finalize_copies_stats(self):
        from repro.core.results import QueryStats

        col = DiagnosticsCollector()
        col.combination(1.0, accepted=True)
        stats = QueryStats()
        stats.objects_scored = 17
        stats.combinations = 4  # the authoritative count
        query = PreferenceQuery(5, 0.05, 0.5, (0b1,))
        col.finalize(query, "stps", "prioritized", "abc123", 0.01, stats)
        plan = col.plan()
        assert plan.objects_scored == 17
        assert plan.combinations.released == 4
        assert plan.trace_id == "abc123"
        assert plan.algorithm == "stps"
        assert plan.variant == "range"
        assert plan.k == 5

    def test_counters_view(self):
        col = DiagnosticsCollector()
        col.feature_pulled(0)
        col.feature_pulled(0)
        col.feature_pulled(1)
        col.combination(1.0, accepted=True)
        col.shard(0, "executed", 1.0, -math.inf)
        col.shard(1, "pruned", 0.1, 0.5)
        plan = col.plan()
        plan.objects_scored = 3
        assert plan.counters() == {
            "repro_combinations_total": 1.0,
            "repro_objects_scored_total": 3.0,
            "repro_features_pulled_total[0]": 2.0,
            "repro_features_pulled_total[1]": 1.0,
            "repro_shard_queries[executed]": 1.0,
            "repro_shard_queries[pruned]": 1.0,
        }


class TestNullCollector:
    def test_inactive_and_inert(self):
        assert NULL_COLLECTOR.active is False
        NULL_COLLECTOR.node_visited(0, 1.0)
        NULL_COLLECTOR.pull(0, 0.5, 0.4)
        NULL_COLLECTOR.shard(0, "executed", 1.0, 0.0)
        assert NULL_COLLECTOR.child(3) is NULL_COLLECTOR
        assert NULL_COLLECTOR.plan().objects_scored == 0

    def test_resolve(self):
        col = DiagnosticsCollector()
        assert resolve(col) is col
        assert resolve(None) is NULL_COLLECTOR


class TestPlanRendering:
    def _populated_plan(self) -> QueryPlan:
        col = DiagnosticsCollector()
        col.node_visited(0, 1.0)
        col.node_pruned(0, 0.3)
        col.pull(0, 0.8, 0.7)
        col.combination(1.0, accepted=True)
        col.chunk(0, 100, 0.9)
        col.voronoi_cell(cache_hit=False)
        col.iss_probe(point=True)
        col.shard(0, "executed", 1.0, -math.inf)
        plan = col.plan()
        plan.algorithm = "stps"
        plan.variant = "range"
        plan.trace_id = "deadbeef"
        return plan

    def test_to_json_round_trips(self):
        doc = json.loads(self._populated_plan().to_json())
        assert doc["schema_version"] == explain.PLAN_SCHEMA_VERSION
        assert doc["trace_id"] == "deadbeef"
        assert doc["feature_sets"][0]["nodes_visited"] == 1
        assert doc["combinations"]["released"] == 1
        assert doc["stds"]["chunk_count"] == 1
        assert doc["shards"][0]["verdict"] == "executed"
        assert doc["shard_outcomes"] == {"executed": 1}

    def test_infinities_are_json_safe(self):
        plan = self._populated_plan()
        plan.stds.threshold_final = -math.inf
        doc = json.loads(plan.to_json())  # must not emit bare Infinity
        assert doc["stds"]["threshold_final"] is None
        assert doc["shards"][0]["floor"] is None

    def test_render_mentions_every_section(self):
        text = self._populated_plan().render()
        assert "QUERY PLAN" in text
        assert "trace_id=deadbeef" in text
        assert "feature sets" in text
        assert "combinations" in text
        assert "stds scan" in text
        assert "voronoi" in text
        assert "iss" in text
        assert "shard fan-out" in text


@pytest.fixture(scope="module")
def processor():
    objects = synthetic_objects(300, seed=5)
    feature_sets = synthetic_feature_sets(2, 200, 32, seed=6)
    return QueryProcessor.build(objects, feature_sets)


class TestExplainEndToEnd:
    def test_explain_matches_plain_query(self, processor):
        q = PreferenceQuery(5, 0.05, 0.5, (0b111, 0b1110))
        report = processor.explain(q, algorithm="stps")
        plain = processor.query(q, algorithm="stps")
        assert [(i.oid, i.score) for i in report.result.items] == [
            (i.oid, i.score) for i in plain.items
        ]
        plan = report.plan
        assert plan.algorithm == "stps"
        assert plan.trace_id == report.result.stats.trace_id
        assert plan.objects_scored == report.result.stats.objects_scored
        assert plan.combinations.released == report.result.stats.combinations
        assert plan.features_pulled_total == (
            report.result.stats.features_pulled
        )

    def test_explain_stds_records_scan(self, processor):
        q = PreferenceQuery(5, 0.05, 0.5, (0b111, 0b1110))
        report = processor.explain(q, algorithm="stds")
        assert report.plan.stds is not None
        assert report.plan.stds.chunk_count >= 1
        assert report.plan.objects_scored > 0

    def test_explain_influence_and_iss(self, processor):
        q = PreferenceQuery(
            5, 0.05, 0.5, (0b111, 0b1110), variant=Variant.INFLUENCE
        )
        stps_report = processor.explain(q, algorithm="stps")
        assert stps_report.plan.combinations is not None
        iss_report = processor.explain(q, algorithm="iss")
        assert iss_report.plan.iss is not None
        assert iss_report.plan.iss["bound_probes_point"] > 0
        assert [(i.oid, i.score) for i in stps_report.result.items] == [
            (i.oid, i.score) for i in iss_report.result.items
        ]

    def test_explain_nearest_records_voronoi(self, processor):
        q = PreferenceQuery(
            5, 0.05, 0.5, (0b111, 0b1110), variant=Variant.NEAREST
        )
        report = processor.explain(q)
        assert report.plan.voronoi is not None
        assert report.plan.voronoi["cells_computed"] >= 1

    def test_query_without_collector_builds_no_plan(self, processor):
        q = PreferenceQuery(5, 0.05, 0.5, (0b111, 0b1110))
        result = processor.query(q)
        assert result.stats.trace_id  # trace id is always minted
        # and the null collector accumulated nothing (shared instance).
        assert NULL_COLLECTOR.plan().feature_sets == []


class TestCounterSnapshot:
    def test_snapshot_and_deltas(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total", "c", ("lbl",))
        reg.gauge("g").set(5)  # gauges excluded from counter snapshots
        c.labels(lbl="a").inc(2)
        before = counter_snapshot(reg)
        c.labels(lbl="a").inc(3)
        c.labels(lbl="b").inc(1)
        deltas = counter_deltas(before, counter_snapshot(reg))
        assert deltas == {
            ("c_total", ("a",)): 3.0,
            ("c_total", ("b",)): 1.0,
        }
        assert ("g", ()) not in before
