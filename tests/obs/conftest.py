"""Shared fixtures for the observability tests.

Tracing state is process-global, so every test in this package gets a
clean, *disabled* tracer before and after it runs.
"""

from __future__ import annotations

import pytest

from repro.obs import tracing


@pytest.fixture(autouse=True)
def clean_tracing():
    tracing.set_enabled(False)
    tracing.clear()
    yield
    tracing.set_enabled(False)
    tracing.clear()
