"""Tests for repro.obs.profiler: sampling, captures, install lifecycle."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ReproError
from repro.obs import flight, profiler
from repro.obs.profiler import CAPTURE_SLACK_S, MAX_CAPTURES, SamplingProfiler


@pytest.fixture(autouse=True)
def clean_profiler_state():
    yield
    # Drain any leftover installs so tests stay independent.
    while profiler.uninstall() or profiler._install_count:
        pass
    flight.configure(enabled_=False)
    flight.clear()


def _busy_wait(stop: threading.Event) -> None:
    while not stop.wait(0.001):
        sum(range(100))


@pytest.fixture()
def busy_thread():
    stop = threading.Event()
    thread = threading.Thread(target=_busy_wait, args=(stop,), daemon=True)
    thread.start()
    yield thread
    stop.set()
    thread.join(timeout=5)


class TestSamplingProfiler:
    def test_collects_other_thread_stacks(self, busy_thread):
        with SamplingProfiler(interval_s=0.002) as prof:
            time.sleep(0.06)
        assert prof.ticks > 5
        collapsed = prof.collapsed()
        assert collapsed
        # The busy thread's helper frame appears, in root;...;leaf order.
        assert any("_busy_wait" in stack for stack in collapsed)
        for stack in collapsed:
            assert all(":" in part for part in stack.split(";"))

    def test_own_sampler_thread_excluded(self):
        with SamplingProfiler(interval_s=0.002) as prof:
            time.sleep(0.03)
        assert not any("_loop" in s and "profiler" in s for s in prof.collapsed())

    def test_write_collapsed_format(self, busy_thread, tmp_path):
        with SamplingProfiler(interval_s=0.002) as prof:
            time.sleep(0.04)
        path = prof.write_collapsed(tmp_path / "flame.txt")
        lines = path.read_text().splitlines()
        assert lines
        for line in lines:
            stack, _, count = line.rpartition(" ")
            assert stack and int(count) > 0

    def test_retention_bounds_ring(self):
        prof = SamplingProfiler(interval_s=0.01, retention_s=0.05)
        assert prof._samples.maxlen == 5

    def test_capture_windows_and_eviction(self, busy_thread):
        with SamplingProfiler(interval_s=0.002) as prof:
            time.sleep(0.05)
            record = prof.capture("trace-a", lookback_s=0.04)
            assert record["trace_id"] == "trace-a"
            assert record["samples"] > 0
            assert record["collapsed"]
            assert prof.capture_for("trace-a") is record
            for i in range(MAX_CAPTURES + 5):
                prof.capture(f"trace-{i}", lookback_s=0.01)
            assert len(prof.captures()) == MAX_CAPTURES
            assert prof.capture_for("trace-a") is None  # oldest evicted

    def test_validation(self):
        with pytest.raises(ReproError):
            SamplingProfiler(interval_s=0.0)
        with pytest.raises(ReproError):
            SamplingProfiler(interval_s=1.0, retention_s=0.5)

    def test_stop_joins_thread(self):
        prof = SamplingProfiler(interval_s=0.002).start()
        assert prof.running
        prof.stop()
        assert not prof.running
        assert not any(
            t.name == "repro-profiler" for t in threading.enumerate()
        )


class TestModuleLifecycle:
    def test_install_refcounting(self):
        assert profiler.install(interval_s=0.002) is True
        first = profiler.get()
        assert first is not None and first.running
        assert profiler.install() is False  # nested: same instance
        assert profiler.get() is first
        assert profiler.uninstall() is False  # one ref still held
        assert profiler.get() is first
        assert profiler.uninstall() is True  # last ref stops it
        assert profiler.get() is None
        assert profiler.uninstall() is False  # extra uninstall is a no-op

    def test_flight_admission_triggers_capture(self, busy_thread):
        from repro.core.query import PreferenceQuery

        profiler.install(interval_s=0.002)
        flight.configure(enabled_=True, latency_threshold_s=0.0)
        flight.clear()
        time.sleep(0.04)  # let the ring fill before the "query" lands
        assert flight.maybe_record(
            PreferenceQuery(5, 0.06, 0.5, (0b11, 0b11)),
            algorithm="stps",
            pulling="prioritized",
            trace_id="trace-slow-1",
            latency_s=0.03,
        )
        capture = profiler.get().capture_for("trace-slow-1")
        assert capture is not None
        assert capture["lookback_s"] == pytest.approx(0.03 + CAPTURE_SLACK_S)
        assert capture["samples"] > 0

    def test_executor_profile_knob(self):
        from repro.core.executor import QueryExecutor
        from repro.core.processor import QueryProcessor
        from repro.data.synthetic import (
            synthetic_feature_sets,
            synthetic_objects,
        )

        processor = QueryProcessor.build(
            synthetic_objects(120, seed=11),
            synthetic_feature_sets(2, 80, 32, seed=12),
        )
        executor = QueryExecutor(processor, max_workers=1, profile=True)
        try:
            assert profiler.get() is not None
            assert profiler.get().running
        finally:
            executor.close()
        assert profiler.get() is None
