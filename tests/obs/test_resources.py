"""Tests for repro.obs.resources: gauges, live registries, sampler."""

from __future__ import annotations

import gc
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import GAUGES, ResourceSampler, collect
from repro.obs.timeseries import TimeSeriesRing


class TestCollect:
    def test_all_gauges_published(self):
        reg = MetricsRegistry()
        values = collect(reg)
        published = {f.name for f in reg.families()}
        assert set(GAUGES) <= published
        assert set(values) == set(GAUGES)

    def test_process_facts_sane(self):
        reg = MetricsRegistry()
        values = collect(reg)
        assert values["repro_resource_rss_bytes"] > 1 << 20  # > 1 MiB
        assert values["repro_resource_open_fds"] >= 3  # stdio at least
        assert values["repro_resource_threads"] >= 1

    def test_executor_queue_depth_visible(self):
        from repro.core.executor import QueryExecutor
        from repro.core.processor import QueryProcessor
        from repro.data.synthetic import (
            synthetic_feature_sets,
            synthetic_objects,
        )

        processor = QueryProcessor.build(
            synthetic_objects(120, seed=3),
            synthetic_feature_sets(2, 80, 32, seed=4),
        )
        reg = MetricsRegistry()
        with QueryExecutor(processor, max_workers=2):
            values = collect(reg)
            # Idle executor: registered, zero queued/running.
            assert values["repro_resource_executor_queue_depth"] == 0
            assert values["repro_resource_executor_running"] == 0
        gc.collect()
        values = collect(reg)
        assert values["repro_resource_executor_queue_depth"] == 0

    def test_shm_bytes_track_live_segments(self):
        from repro.storage.pagefile import MemoryPageFile
        from repro.storage.shm import SharedMemoryPageFile

        source = MemoryPageFile(page_size=512)
        source.allocate()
        reg = MetricsRegistry()
        before = collect(reg)["repro_resource_shm_bytes"]
        frozen = SharedMemoryPageFile.freeze(source)
        try:
            during = collect(reg)["repro_resource_shm_bytes"]
            assert during >= before + 512
        finally:
            frozen.close()
        after = collect(reg)["repro_resource_shm_bytes"]
        assert after == before

    def test_cache_bytes_estimated(self):
        from repro.core.processor import QueryProcessor
        from repro.core.query import PreferenceQuery
        from repro.data.synthetic import (
            synthetic_feature_sets,
            synthetic_objects,
        )

        processor = QueryProcessor.build(
            synthetic_objects(200, seed=5),
            synthetic_feature_sets(2, 100, 32, seed=6),
        )
        processor.query(PreferenceQuery(5, 0.08, 0.5, (0b11, 0b11)))
        reg = MetricsRegistry()
        values = collect(reg)
        assert values["repro_resource_node_cache_nodes"] > 0
        assert values["repro_resource_node_cache_bytes"] > 0
        assert values["repro_resource_buffer_pages"] > 0
        assert values["repro_resource_buffer_bytes"] > 0


class TestResourceSampler:
    def test_gauges_land_in_ring_slots(self):
        reg = MetricsRegistry()
        ring = TimeSeriesRing(registry=reg, capacity=64)
        with ResourceSampler(ring, interval_s=0.02, registry=reg):
            time.sleep(0.08)
        assert len(ring) >= 3
        rss = ring.latest_gauge("repro_resource_rss_bytes")
        assert rss is not None and rss > 0
        timeline = ring.timeline(gauge_names=("repro_resource_threads",))
        assert timeline[-1]["gauges"]["repro_resource_threads"] >= 1

    def test_extra_pre_sample_hooks_compose(self):
        reg = MetricsRegistry()
        ring = TimeSeriesRing(registry=reg, capacity=64)
        calls = []
        sampler = ResourceSampler(
            ring, interval_s=0.02, registry=reg,
            pre_sample=(lambda: calls.append(1),),
        )
        with sampler:
            time.sleep(0.06)
        assert calls
        assert ring.latest_gauge("repro_resource_rss_bytes") is not None
