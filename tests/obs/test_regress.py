"""Tests for repro.obs.regress: the perf-regression sentinel."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.obs import regress

REPO_ROOT = Path(__file__).resolve().parents[2]

EXECUTOR_DOC = {
    "benchmark": "executor-hot-path",
    "config": {
        "objects": 2000, "features_per_set": 1000, "feature_sets": 2,
        "vocabulary": 64, "distinct_queries": 5, "repeats": 2,
        "workers": 4, "numpy_fast_path": True, "python": "3.11.7",
    },
    "results": [
        {
            "algorithm": "stps", "queries": 10, "speedup": 40.0,
            "speedup_warm": 9.0, "throughput_qps": 900.0,
            "optimized_s": 0.2,
        },
        {
            "algorithm": "stds", "queries": 10, "speedup": 12.0,
            "speedup_warm": 8.0, "throughput_qps": 50.0,
            "optimized_s": 3.0,
        },
    ],
}

SHARDS_DOC = {
    "benchmark": "shard-scaling",
    "config": {
        "objects": 1000, "features_per_set": 600, "feature_sets": 2,
        "queries": 4, "cpus": 8, "python": "3.11.7",
    },
    "headline_algorithm": "stps",
    "results": [
        {
            "algorithm": "stps", "queries": 4,
            "shards": [
                {"shards": 2, "speedup_cold": 1.9},
                {"shards": 4, "speedup_cold": 4.2},
            ],
            "speedup_cold_s4": 4.2,
        },
    ],
}


class TestCompareDocs:
    def test_identical_docs_pass_matched_mode(self):
        verdict = regress.compare_docs(EXECUTOR_DOC, EXECUTOR_DOC)
        assert verdict["mode"] == "matched"
        assert verdict["ok"] is True
        units = {c["unit"] for c in verdict["checks"]}
        assert units == {"executor/stps", "executor/stds"}

    def test_synthetic_2x_slowdown_fails(self):
        slowed = copy.deepcopy(EXECUTOR_DOC)
        for row in slowed["results"]:
            row["speedup"] /= 2.0
            row["speedup_warm"] /= 2.0
            row["throughput_qps"] /= 2.0
            row["optimized_s"] *= 2.0
        verdict = regress.compare_docs(EXECUTOR_DOC, slowed)
        assert verdict["mode"] == "matched"
        assert verdict["ok"] is False
        failing = [c for c in verdict["checks"] if not c["ok"]]
        assert failing  # every ratio check is below tolerance
        assert all(c["rule"] == "ratio" for c in failing)

    def test_noise_within_tolerance_passes(self):
        noisy = copy.deepcopy(EXECUTOR_DOC)
        for row in noisy["results"]:
            row["speedup"] *= 0.8  # 20% dip: inside the 45% budget
            row["speedup_warm"] *= 0.8
            row["throughput_qps"] *= 0.8
        assert regress.compare_docs(EXECUTOR_DOC, noisy)["ok"] is True

    def test_machine_keys_do_not_break_matched_mode(self):
        other = copy.deepcopy(EXECUTOR_DOC)
        other["config"]["python"] = "3.12.1"
        other["config"]["workers"] = 8
        verdict = regress.compare_docs(EXECUTOR_DOC, other)
        assert verdict["mode"] == "matched"

    def test_workload_mismatch_uses_floor_mode(self):
        smoke = copy.deepcopy(EXECUTOR_DOC)
        smoke["config"]["objects"] = 500  # different workload shape
        verdict = regress.compare_docs(EXECUTOR_DOC, smoke)
        assert verdict["mode"] == "floor"
        assert verdict["ok"] is True  # speedups 40/12 clear the 1.2 floor
        assert {c["rule"] for c in verdict["checks"]} == {"floor"}

    def test_floor_mode_catches_lost_speedup(self):
        smoke = copy.deepcopy(EXECUTOR_DOC)
        smoke["config"]["objects"] = 500
        smoke["results"][0]["speedup"] = 1.05  # hot path gone
        verdict = regress.compare_docs(EXECUTOR_DOC, smoke)
        assert verdict["ok"] is False

    def test_shard_floor_mode_uses_headline(self):
        smoke = copy.deepcopy(SHARDS_DOC)
        smoke["config"]["objects"] = 500
        verdict = regress.compare_docs(SHARDS_DOC, smoke)
        assert verdict["mode"] == "floor"
        assert verdict["ok"] is True
        (check,) = verdict["checks"]
        assert check["unit"] == "shards/stps"
        smoke["results"][0]["speedup_cold_s4"] = 1.0
        assert regress.compare_docs(SHARDS_DOC, smoke)["ok"] is False

    def test_speedup_cold_s4_fallback_from_rows(self):
        doc = copy.deepcopy(SHARDS_DOC)
        del doc["results"][0]["speedup_cold_s4"]
        metrics = regress.extract_metrics(doc)
        assert metrics["shards/stps"]["speedup_cold_s4"] == 4.2

    def test_benchmark_type_mismatch_is_invalid(self):
        verdict = regress.compare_docs(EXECUTOR_DOC, SHARDS_DOC)
        assert verdict["mode"] == "invalid"
        assert verdict["ok"] is False

    def test_missing_metric_fails(self):
        broken = copy.deepcopy(EXECUTOR_DOC)
        del broken["results"][0]["speedup"]
        verdict = regress.compare_docs(EXECUTOR_DOC, broken)
        assert verdict["ok"] is False


class TestCli:
    def _write(self, tmp_path, name, doc) -> str:
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_pass_run_writes_verdict_and_history(self, tmp_path, capsys):
        base = self._write(tmp_path, "base.json", EXECUTOR_DOC)
        verdict_path = tmp_path / "verdict.json"
        history_path = tmp_path / "history.jsonl"
        rc = regress.main([
            "--pair", base, base,
            "--verdict", str(verdict_path),
            "--history", str(history_path),
        ])
        assert rc == 0
        doc = json.loads(verdict_path.read_text())
        assert doc["schema_version"] == regress.SENTINEL_SCHEMA_VERSION
        assert doc["ok"] is True
        assert doc["pairs"][0]["mode"] == "matched"
        (line,) = history_path.read_text().splitlines()
        record = json.loads(line)
        assert record["ok"] is True
        assert record["git_sha"]
        assert record["timestamp"]
        assert record["pairs"][0]["metrics"]["executor/stps:speedup"] == 40.0
        assert "PASS" in capsys.readouterr().out

    def test_history_appends(self, tmp_path):
        base = self._write(tmp_path, "base.json", EXECUTOR_DOC)
        history_path = tmp_path / "history.jsonl"
        for _ in range(2):
            regress.main(["--pair", base, base, "--history", str(history_path)])
        assert len(history_path.read_text().splitlines()) == 2

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        slowed = copy.deepcopy(EXECUTOR_DOC)
        for row in slowed["results"]:
            row["speedup"] /= 2.0
        base = self._write(tmp_path, "base.json", EXECUTOR_DOC)
        cur = self._write(tmp_path, "cur.json", slowed)
        verdict_path = tmp_path / "verdict.json"
        rc = regress.main(
            ["--pair", base, cur, "--verdict", str(verdict_path)]
        )
        assert rc == 1
        assert json.loads(verdict_path.read_text())["ok"] is False
        assert "REGRESSION" in capsys.readouterr().out

    def test_multiple_pairs_all_must_pass(self, tmp_path):
        base_e = self._write(tmp_path, "e.json", EXECUTOR_DOC)
        base_s = self._write(tmp_path, "s.json", SHARDS_DOC)
        assert regress.main(["--pair", base_e, base_e,
                             "--pair", base_s, base_s]) == 0
        broken = copy.deepcopy(SHARDS_DOC)
        broken["results"][0]["speedup_cold_s4"] = 0.1
        cur_s = self._write(tmp_path, "s2.json", broken)
        assert regress.main(["--pair", base_e, base_e,
                             "--pair", base_s, cur_s]) == 1


@pytest.mark.skipif(
    not (REPO_ROOT / "BENCH_executor.json").exists(),
    reason="committed baselines not present",
)
class TestCommittedBaselines:
    def test_baselines_pass_against_themselves(self):
        executor = str(REPO_ROOT / "BENCH_executor.json")
        shards = str(REPO_ROOT / "BENCH_shards.json")
        assert regress.main([
            "--pair", executor, executor,
            "--pair", shards, shards,
        ]) == 0


class TestSloVerdictRideAlong:
    def _verdict_doc(self, exhausted=False) -> dict:
        return {
            "slos": [{
                "slo": "query_latency_p95_100ms",
                "kind": "latency",
                "objective": 0.95,
                "total": 100, "good": 98, "bad": 2,
                "error_budget": {
                    "total": 5.0, "consumed": 2,
                    "remaining": 3.0, "consumed_fraction": 0.4,
                    "exhausted": exhausted,
                },
                "alerts": [{
                    "name": "fast_burn",
                    "long_window_s": 60.0, "short_window_s": 15.0,
                    "factor": 14.4,
                    "long_burn_rate": 0.4, "short_burn_rate": 0.2,
                    "firing": False,
                }],
                "firing": False,
            }],
            "firing": False,
            "exhausted": exhausted,
            "ok": not exhausted,
        }

    def test_slo_history_fields_shape(self):
        from repro.obs.regress import slo_history_fields

        fields = slo_history_fields(self._verdict_doc())
        row = fields["slos"]["query_latency_p95_100ms"]
        assert row["budget_consumed_fraction"] == 0.4
        assert row["burn_rates"]["fast_burn"]["long"] == 0.4
        assert not fields["exhausted"]

    def test_slo_verdict_lands_in_history(self, tmp_path, capsys):
        from repro.obs.regress import main as regress_main

        verdict_path = tmp_path / "slo_verdict.json"
        verdict_path.write_text(json.dumps(self._verdict_doc()))
        history = tmp_path / "history.jsonl"
        code = regress_main([
            "--slo-verdict", str(verdict_path),
            "--history", str(history),
        ])
        assert code == 0  # burn rates are recorded, never gated here
        record = json.loads(history.read_text().splitlines()[-1])
        assert "query_latency_p95_100ms" in record["slo"]["slos"]
        out = capsys.readouterr().out
        assert "slo query_latency_p95_100ms: ok" in out

    def test_exhausted_budget_recorded_but_not_gated(self, tmp_path):
        from repro.obs.regress import main as regress_main

        verdict_path = tmp_path / "slo_verdict.json"
        verdict_path.write_text(json.dumps(self._verdict_doc(exhausted=True)))
        history = tmp_path / "history.jsonl"
        code = regress_main([
            "--slo-verdict", str(verdict_path),
            "--history", str(history),
        ])
        assert code == 0
        record = json.loads(history.read_text().splitlines()[-1])
        assert record["slo"]["exhausted"] is True

    def test_pairs_still_required_without_slo_verdict(self, capsys):
        from repro.obs.regress import main as regress_main

        with pytest.raises(SystemExit):
            regress_main(["--history", "nope.jsonl"])

    def test_slo_fields_merge_into_pair_verdict(self, tmp_path):
        from repro.obs.regress import main as regress_main

        doc = copy.deepcopy(EXECUTOR_DOC)
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(doc))
        cur.write_text(json.dumps(doc))
        verdict_path = tmp_path / "slo_verdict.json"
        verdict_path.write_text(json.dumps(self._verdict_doc()))
        out = tmp_path / "verdict_out.json"
        code = regress_main([
            "--pair", str(base), str(cur),
            "--slo-verdict", str(verdict_path),
            "--verdict", str(out),
        ])
        assert code == 0
        merged = json.loads(out.read_text())
        assert merged["ok"]
        assert "query_latency_p95_100ms" in merged["slo"]["slos"]
