"""Tests for repro.obs.tracing: spans, recorders, Chrome trace export."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import tracing


class TestDisabledByDefault:
    def test_disabled_flag(self):
        assert tracing.enabled is False
        assert tracing.is_enabled() is False

    def test_span_is_shared_noop(self):
        a = tracing.span("x")
        b = tracing.span("y", cat="other", foo=1)
        assert a is b is tracing.NULL_SPAN
        with a:
            pass
        assert tracing.events() == []

    def test_recorder_is_shared_noop(self):
        rec = tracing.recorder()
        assert rec is tracing.NULL_RECORDER
        assert rec.active is False
        with rec.span("phase"):
            pass
        rec.add("phase", 1.0)
        assert rec.totals() == {}
        assert tracing.events() == []

    def test_instant_noop(self):
        tracing.instant("cache.hit", page_id=3)
        assert tracing.events() == []

    def test_disabled_overhead_smoke(self):
        """A disabled span() call stays cheap (loose upper bound)."""
        n = 100_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tracing.span("hot"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 1.0  # ~10 µs/call budget; typically ~0.1 µs


class TestEnabledSpans:
    def test_span_records_complete_event(self):
        tracing.set_enabled(True)
        with tracing.span("query.stps", variant="range", k=5):
            time.sleep(0.001)
        (event,) = tracing.events()
        assert event["name"] == "query.stps"
        assert event["ph"] == "X"
        assert event["cat"] == "query"
        assert event["dur"] >= 500  # microseconds
        assert event["ts"] >= 0
        assert event["args"] == {"variant": "range", "k": 5}
        assert "pid" in event and "tid" in event

    def test_instant_event(self):
        tracing.set_enabled(True, verbose_events=True)
        assert tracing.verbose is True
        tracing.instant("node_cache.hit", cat="cache", page_id=7)
        (event,) = tracing.events()
        assert event["ph"] == "i"
        assert event["s"] == "t"
        assert event["args"] == {"page_id": 7}

    def test_disable_clears_verbose(self):
        tracing.set_enabled(True, verbose_events=True)
        tracing.set_enabled(False)
        assert tracing.verbose is False

    def test_set_enabled_returns_previous(self):
        assert tracing.set_enabled(True) is False
        assert tracing.set_enabled(False) is True

    def test_enabled_tracing_context_restores(self):
        with tracing.enabled_tracing():
            assert tracing.enabled
        assert not tracing.enabled

    def test_trace_decorator(self):
        calls = []

        @tracing.trace("my.fn", cat="test")
        def fn(x):
            calls.append(x)
            return x * 2

        assert fn(3) == 6  # disabled: no event
        assert tracing.events() == []
        tracing.set_enabled(True)
        assert fn(4) == 8
        (event,) = tracing.events()
        assert event["name"] == "my.fn"
        assert event["cat"] == "test"
        assert calls == [3, 4]

    def test_event_cap_counts_drops(self, monkeypatch):
        monkeypatch.setattr(tracing, "MAX_EVENTS", 2)
        tracing.set_enabled(True)
        for i in range(5):
            with tracing.span(f"s{i}"):
                pass
        assert len(tracing.events()) == 2
        assert tracing.dropped_events() == 3
        assert tracing.clear() == 2
        assert tracing.dropped_events() == 0


class TestPhaseRecorder:
    def test_totals_accumulate(self):
        tracing.set_enabled(True)
        rec = tracing.recorder()
        assert isinstance(rec, tracing.PhaseRecorder)
        assert rec.active is True
        with rec.span("pull"):
            time.sleep(0.001)
        with rec.span("pull"):
            time.sleep(0.001)
        with rec.span("assemble"):
            pass
        totals = rec.totals()
        assert set(totals) == {"pull", "assemble"}
        assert totals["pull"] >= 0.002
        # Spans were emitted to the trace buffer too.
        assert len(tracing.events()) == 3

    def test_add_is_thread_safe(self):
        tracing.set_enabled(True)
        rec = tracing.recorder()
        n, workers = 5_000, 4

        def hammer():
            for _ in range(n):
                rec.add("phase", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(workers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.totals()["phase"] == pytest.approx(n * workers * 0.001)


class TestChromeTrace:
    def test_schema(self, tmp_path):
        tracing.set_enabled(True)
        with tracing.span("a", cat="query"):
            with tracing.span("b", cat="phase"):
                pass
        doc = tracing.chrome_trace()
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"a", "b"}
        for event in complete:
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        # thread_name metadata so Perfetto labels the tracks.
        assert meta and all(
            e["name"] == "thread_name" and "name" in e["args"] for e in meta
        )
        # Nesting: the outer span fully contains the inner one.
        by_name = {e["name"]: e for e in complete}
        assert by_name["a"]["ts"] <= by_name["b"]["ts"]
        assert (
            by_name["a"]["ts"] + by_name["a"]["dur"]
            >= by_name["b"]["ts"] + by_name["b"]["dur"]
        )

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracing.set_enabled(True)
        with tracing.span("x"):
            pass
        path = tracing.write_chrome_trace(tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        assert any(e.get("name") == "x" for e in doc["traceEvents"])

    def test_clear_drops_events(self):
        tracing.set_enabled(True)
        with tracing.span("x"):
            pass
        assert tracing.clear() == 1
        assert tracing.events() == []
        assert tracing.chrome_trace()["traceEvents"] == []
