"""End-to-end tests for ``python -m repro.obs`` and the instrumentation.

These run a miniature workload through the real query stack and check
the acceptance criteria: the Prometheus snapshot contains query latency
histograms labeled by algorithm, and the Chrome trace contains spans for
feature pulls, combination assembly and R-tree node expansion.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics, tracing
from repro.obs.cli import build_parser, main

TINY = [
    "--objects", "400",
    "--features", "200",
    "--sets", "2",
    "--queries", "3",
    "--repeats", "2",
    "--workers", "2",
    "--vocab", "16",
]


class TestParser:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0
        assert "--trace-out" in capsys.readouterr().out

    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.algorithms == ["stps", "stds"]
        assert not args.smoke

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithms", "magic"])


class TestEndToEnd:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        rc = main(["--out-dir", str(tmp_path), *TINY])
        assert rc == 0
        return tmp_path

    def test_writes_all_artifacts(self, artifacts):
        assert (artifacts / "obs_trace.json").exists()
        assert (artifacts / "obs_metrics.prom").exists()
        assert (artifacts / "obs_metrics.json").exists()

    def test_prometheus_snapshot_has_labeled_latency_histograms(
        self, artifacts
    ):
        text = (artifacts / "obs_metrics.prom").read_text()
        assert "# TYPE repro_query_seconds histogram" in text
        for algorithm in ("stps", "stds"):
            assert f'algorithm="{algorithm}"' in text
        assert "repro_query_seconds_bucket{" in text
        assert "repro_features_pulled_total" in text
        assert "repro_executor_queue_wait_seconds" in text
        assert "repro_index_node_cache_hit_rate" in text

    def test_trace_has_required_spans(self, artifacts):
        doc = json.loads((artifacts / "obs_trace.json").read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        for required in (
            "query.stps",
            "query.stds",
            "stps.feature_pull",
            "stps.combination_assembly",
            "stds.chunk_scan",
            "rtree.node_expand",
        ):
            assert required in names, f"missing span {required}"

    def test_json_snapshot_has_percentiles(self, artifacts):
        doc = json.loads((artifacts / "obs_metrics.json").read_text())
        series = doc["repro_query_seconds"]["series"]
        assert series
        for s in series:
            assert s["p50"] <= s["p95"] <= s["p99"]

    def test_tracing_disabled_after_run(self, artifacts):
        assert not tracing.enabled


class TestNoTrace:
    def test_metrics_only_run(self, tmp_path):
        rc = main(["--out-dir", str(tmp_path), "--no-trace", *TINY])
        assert rc == 0
        assert not (tmp_path / "obs_trace.json").exists()  # no trace written
        assert tracing.events() == []  # and no spans recorded
        text = (tmp_path / "obs_metrics.prom").read_text()
        assert "repro_query_seconds_bucket{" in text  # metrics still on


class TestInstrumentationNeutrality:
    def test_tracing_does_not_change_results(self, srt_processor):
        from repro.core.query import PreferenceQuery

        q = PreferenceQuery(
            k=5, radius=0.08, lam=0.5, keyword_masks=(0b11, 0b110)
        )
        metrics.registry().reset()
        plain = srt_processor.query(q)
        assert plain.stats.phase_times == {}  # tracing off: no breakdown
        with tracing.enabled_tracing():
            traced = srt_processor.query(q)
        assert traced.oids == plain.oids
        assert traced.scores == plain.scores
        assert traced.stats.phase_times  # tracing on: breakdown present
        assert all(v >= 0.0 for v in traced.stats.phase_times.values())

    @pytest.mark.parametrize("algorithm", ["stps", "stds"])
    def test_phase_times_cover_known_phases(self, srt_processor, algorithm):
        from repro.core.query import PreferenceQuery

        q = PreferenceQuery(
            k=5, radius=0.08, lam=0.5, keyword_masks=(0b11, 0b110)
        )
        with tracing.enabled_tracing():
            result = srt_processor.query(q, algorithm=algorithm)
        phases = set(result.stats.phase_times)
        if algorithm == "stps":
            assert "stps.feature_pull" in phases
            assert "stps.combination_assembly" in phases
        else:
            assert "stds.scan_objects" in phases
            assert "stds.chunk_scan" in phases


class TestTelemetryMode:
    @pytest.fixture(scope="class")
    def artifacts_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("telemetry")
        code = main(
            TINY + [
                "--telemetry", "--no-trace", "--algorithms", "stps",
                "--sample-interval", "0.05", "--out-dir", str(out),
            ]
        )
        assert code == 0
        return out

    def test_writes_telemetry_artifacts(self, artifacts_dir):
        for name in (
            "timeseries.json", "dashboard.html", "slo_verdict.json",
            "flamegraph.txt", "obs_metrics.om",
        ):
            assert (artifacts_dir / name).exists(), name

    def test_timeseries_has_query_activity(self, artifacts_dir):
        doc = json.loads((artifacts_dir / "timeseries.json").read_text())
        assert doc["slots"] >= 2
        deltas = [
            s["rates"].get("repro_queries_total", 0.0) * s["dt"]
            for s in doc["timeline"] if s.get("rates")
        ]
        assert sum(deltas) > 0  # the workload's queries landed in slots

    def test_slo_verdict_budget_math_consistent(self, artifacts_dir):
        doc = json.loads((artifacts_dir / "slo_verdict.json").read_text())
        assert {"slos", "firing", "exhausted", "ok"} <= set(doc)
        for verdict in doc["slos"]:
            budget = verdict["error_budget"]
            assert verdict["total"] == verdict["good"] + verdict["bad"]
            assert budget["total"] == pytest.approx(
                (1 - verdict["objective"]) * verdict["total"]
            )
            assert budget["consumed"] == verdict["bad"]
            assert budget["exhausted"] == (
                budget["consumed"] > budget["total"]
            )

    def test_openmetrics_artifact_wellformed(self, artifacts_dir):
        text = (artifacts_dir / "obs_metrics.om").read_text()
        assert text.endswith("# EOF\n")
        assert "repro_query_seconds_bucket" in text

    def test_exemplars_and_profiler_off_after_run(self, artifacts_dir):
        from repro.obs import profiler
        from repro.obs.metrics import exemplars_enabled

        assert not exemplars_enabled
        assert profiler.get() is None


class TestWatchRender:
    def test_renders_windows_gauges_and_slos(self):
        from repro.obs.cli import render_watch

        payload = {
            "slots": 5, "capacity": 600, "samples_taken": 5,
            "windows": {
                "60": {
                    "span_s": 4.0,
                    "rates": {"repro_queries_total": 12.5},
                    "hist": {"repro_query_seconds": {
                        "count": 50, "p50": 0.004, "p95": 0.02, "p99": 0.08,
                    }},
                },
            },
            "timeline": [{
                "ts": 0.0, "dt": 1.0,
                "gauges": {
                    "repro_resource_rss_bytes": 64 << 20,
                    "repro_resource_threads": 7,
                },
            }],
            "slo": {"slos": [{
                "slo": "query_latency_p95_100ms",
                "firing": False,
                "error_budget": {
                    "consumed": 1, "total": 2.5,
                    "consumed_fraction": 0.4, "exhausted": False,
                },
            }]},
        }
        text = render_watch(payload)
        assert "repro telemetry — 5/600 slots" in text
        assert "12.5" in text      # qps
        assert "20.00" in text     # p95 in ms
        assert "rss_bytes" in text and "64.0 MiB" in text
        assert "query_latency_p95_100ms" in text and "ok" in text
        assert "40.0% used" in text

    def test_handles_empty_payload(self):
        from repro.obs.cli import render_watch

        text = render_watch({})
        assert "repro telemetry" in text

    def test_watch_against_live_server(self):
        from repro.obs.cli import main as cli_main
        from repro.obs.export import MetricsServer
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.timeseries import TimeSeriesRing

        reg = MetricsRegistry()
        ring = TimeSeriesRing(registry=reg)
        ring.sample()
        with MetricsServer(reg, port=0, ring=ring) as server:
            code = cli_main([
                "watch", "--url", f"http://127.0.0.1:{server.port}",
                "--iterations", "1", "--interval", "0.01",
            ])
        assert code == 0

    def test_watch_unreachable_exits_nonzero(self, capsys):
        from repro.obs.cli import main as cli_main

        code = cli_main([
            "watch", "--url", "http://127.0.0.1:9", "--iterations", "1",
        ])
        assert code == 1


class TestSloSubcommand:
    def test_healthy_run_exits_zero(self, tmp_path):
        out = tmp_path / "verdict.json"
        code = main([
            "slo", "--smoke", "--queries", "3", "--repeats", "1",
            "--objects", "400", "--features", "200", "--vocab", "16",
            "--algorithms", "stps", "--out", str(out),
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["slos"]

    def test_exhausted_budget_exits_nonzero(self, tmp_path):
        # An impossible latency SLO (nothing finishes in 100 ns) must
        # trip the gate.
        slo_file = tmp_path / "slo.json"
        slo_file.write_text(json.dumps({"slos": [{
            "name": "impossible", "kind": "latency", "objective": 0.99,
            "metric": "repro_query_seconds", "threshold_s": 1e-7,
            "window_s": 300.0,
            "alerts": [],
        }]}))
        code = main([
            "slo", "--smoke", "--queries", "3", "--repeats", "1",
            "--objects", "400", "--features", "200", "--vocab", "16",
            "--algorithms", "stps", "--slo-file", str(slo_file),
        ])
        assert code == 1
