"""End-to-end tests for ``python -m repro.obs`` and the instrumentation.

These run a miniature workload through the real query stack and check
the acceptance criteria: the Prometheus snapshot contains query latency
histograms labeled by algorithm, and the Chrome trace contains spans for
feature pulls, combination assembly and R-tree node expansion.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics, tracing
from repro.obs.cli import build_parser, main

TINY = [
    "--objects", "400",
    "--features", "200",
    "--sets", "2",
    "--queries", "3",
    "--repeats", "2",
    "--workers", "2",
    "--vocab", "16",
]


class TestParser:
    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--help"])
        assert excinfo.value.code == 0
        assert "--trace-out" in capsys.readouterr().out

    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.algorithms == ["stps", "stds"]
        assert not args.smoke

    def test_bad_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--algorithms", "magic"])


class TestEndToEnd:
    @pytest.fixture()
    def artifacts(self, tmp_path):
        rc = main(["--out-dir", str(tmp_path), *TINY])
        assert rc == 0
        return tmp_path

    def test_writes_all_artifacts(self, artifacts):
        assert (artifacts / "obs_trace.json").exists()
        assert (artifacts / "obs_metrics.prom").exists()
        assert (artifacts / "obs_metrics.json").exists()

    def test_prometheus_snapshot_has_labeled_latency_histograms(
        self, artifacts
    ):
        text = (artifacts / "obs_metrics.prom").read_text()
        assert "# TYPE repro_query_seconds histogram" in text
        for algorithm in ("stps", "stds"):
            assert f'algorithm="{algorithm}"' in text
        assert "repro_query_seconds_bucket{" in text
        assert "repro_features_pulled_total" in text
        assert "repro_executor_queue_wait_seconds" in text
        assert "repro_index_node_cache_hit_rate" in text

    def test_trace_has_required_spans(self, artifacts):
        doc = json.loads((artifacts / "obs_trace.json").read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        for required in (
            "query.stps",
            "query.stds",
            "stps.feature_pull",
            "stps.combination_assembly",
            "stds.chunk_scan",
            "rtree.node_expand",
        ):
            assert required in names, f"missing span {required}"

    def test_json_snapshot_has_percentiles(self, artifacts):
        doc = json.loads((artifacts / "obs_metrics.json").read_text())
        series = doc["repro_query_seconds"]["series"]
        assert series
        for s in series:
            assert s["p50"] <= s["p95"] <= s["p99"]

    def test_tracing_disabled_after_run(self, artifacts):
        assert not tracing.enabled


class TestNoTrace:
    def test_metrics_only_run(self, tmp_path):
        rc = main(["--out-dir", str(tmp_path), "--no-trace", *TINY])
        assert rc == 0
        assert not (tmp_path / "obs_trace.json").exists()  # no trace written
        assert tracing.events() == []  # and no spans recorded
        text = (tmp_path / "obs_metrics.prom").read_text()
        assert "repro_query_seconds_bucket{" in text  # metrics still on


class TestInstrumentationNeutrality:
    def test_tracing_does_not_change_results(self, srt_processor):
        from repro.core.query import PreferenceQuery

        q = PreferenceQuery(
            k=5, radius=0.08, lam=0.5, keyword_masks=(0b11, 0b110)
        )
        metrics.registry().reset()
        plain = srt_processor.query(q)
        assert plain.stats.phase_times == {}  # tracing off: no breakdown
        with tracing.enabled_tracing():
            traced = srt_processor.query(q)
        assert traced.oids == plain.oids
        assert traced.scores == plain.scores
        assert traced.stats.phase_times  # tracing on: breakdown present
        assert all(v >= 0.0 for v in traced.stats.phase_times.values())

    @pytest.mark.parametrize("algorithm", ["stps", "stds"])
    def test_phase_times_cover_known_phases(self, srt_processor, algorithm):
        from repro.core.query import PreferenceQuery

        q = PreferenceQuery(
            k=5, radius=0.08, lam=0.5, keyword_masks=(0b11, 0b110)
        )
        with tracing.enabled_tracing():
            result = srt_processor.query(q, algorithm=algorithm)
        phases = set(result.stats.phase_times)
        if algorithm == "stps":
            assert "stps.feature_pull" in phases
            assert "stps.combination_assembly" in phases
        else:
            assert "stds.scan_objects" in phases
            assert "stds.chunk_scan" in phases
