"""End-to-end exemplar walk: one trace id joins all three systems.

The operational story the telemetry layer sells: a slow query's latency
lands in a histogram bucket *with its trace id attached* (exemplar);
that same id resolves to a flight-recorder entry (what the query was)
and to a profiler capture (what the process was doing).  This test
walks the whole chain through a real query.
"""

from __future__ import annotations

import time

import pytest

from repro.core.processor import QUERY_SECONDS, QueryProcessor
from repro.core.query import PreferenceQuery
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.obs import flight, metrics, profiler
from repro.obs.export import render_openmetrics


@pytest.fixture()
def telemetry():
    """Exemplars + record-everything flight + fast profiler, then reset."""
    metrics.set_exemplars(True)
    flight.clear()
    flight.configure(enabled_=True, latency_threshold_s=0.0)
    profiler.install(interval_s=0.002)
    try:
        yield
    finally:
        profiler.uninstall()
        flight.configure(enabled_=False)
        flight.clear()
        metrics.set_exemplars(False)


@pytest.fixture(scope="module")
def processor() -> QueryProcessor:
    return QueryProcessor.build(
        synthetic_objects(400, seed=21),
        synthetic_feature_sets(2, 200, 32, seed=22),
    )


def _exemplar_for(trace_id: str):
    for _, child in QUERY_SECONDS.series():
        for bucket_index, value, tid, ts in child.exemplars():
            if tid == trace_id:
                return bucket_index, value, child
    return None


class TestExemplarWalk:
    def test_trace_id_joins_bucket_flight_and_profile(
        self, telemetry, processor
    ):
        time.sleep(0.05)  # pre-fill the profiler ring
        result = processor.query(
            PreferenceQuery(5, 0.06, 0.5, (0b111, 0b1011))
        )
        trace_id = result.stats.trace_id
        assert trace_id

        # 1. The latency histogram bucket carries the trace id.
        found = _exemplar_for(trace_id)
        assert found is not None, "no exemplar captured for the query"
        bucket_index, value, child = found
        bounds = list(child.buckets) + [float("inf")]
        low = child.buckets[bucket_index - 1] if bucket_index else 0.0
        assert low < value <= bounds[bucket_index]

        # 2. The same id resolves to a flight-recorder entry.
        record = next(
            (r for r in flight.records() if r.trace_id == trace_id), None
        )
        assert record is not None
        assert record.latency_s == pytest.approx(value, rel=0.5)

        # 3. ...and to a profiler capture taken retroactively on
        #    admission, covering the query's lifetime.
        capture = profiler.get().capture_for(trace_id)
        assert capture is not None
        assert capture["lookback_s"] >= record.latency_s
        assert capture["samples"] > 0

        # 4. The exemplar is externally visible in OpenMetrics form.
        assert f'trace_id="{trace_id}"' in render_openmetrics()

    def test_no_exemplars_when_disabled(self, processor):
        flight.configure(enabled_=True, latency_threshold_s=0.0)
        try:
            result = processor.query(
                PreferenceQuery(3, 0.05, 0.5, (0b11, 0b11))
            )
        finally:
            flight.configure(enabled_=False)
            flight.clear()
        assert _exemplar_for(result.stats.trace_id) is None
