"""Tests for repro.obs.metrics: types, labels, buckets, thread safety."""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ReproError
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    log_buckets,
    registry,
)


@pytest.fixture()
def reg() -> MetricsRegistry:
    return MetricsRegistry()


class TestBuckets:
    def test_default_buckets_are_geometric(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-5)
        ratios = [
            b / a
            for a, b in zip(DEFAULT_LATENCY_BUCKETS, DEFAULT_LATENCY_BUCKETS[1:])
        ]
        assert all(r == pytest.approx(2.0) for r in ratios)
        # Spans microseconds to > 1 minute, as the workloads need.
        assert DEFAULT_LATENCY_BUCKETS[-1] > 60.0

    def test_log_buckets(self):
        assert log_buckets(1.0, 10.0, 3) == (1.0, 10.0, 100.0)

    @pytest.mark.parametrize(
        "start,factor,count", [(0.0, 2.0, 3), (1.0, 1.0, 3), (1.0, 2.0, 0)]
    )
    def test_log_buckets_validation(self, start, factor, count):
        with pytest.raises(ReproError):
            log_buckets(start, factor, count)

    def test_bucket_edge_is_inclusive(self, reg):
        """``le`` semantics: a value equal to a bound lands in that bucket."""
        h = reg.histogram("h", buckets=[1.0, 2.0, 4.0])
        h.observe(1.0)
        h.observe(2.0)
        h.observe(2.0000001)
        h.observe(100.0)  # +Inf bucket
        child = h.labels()
        assert child.bucket_counts() == [1, 1, 1, 1]
        assert child.cumulative_counts() == [1, 2, 3, 4]
        assert child.count == 4
        assert child.sum == pytest.approx(1.0 + 2.0 + 2.0000001 + 100.0)

    def test_unsorted_buckets_rejected(self, reg):
        with pytest.raises(ReproError):
            reg.histogram("bad", buckets=[1.0, 1.0])
        with pytest.raises(ReproError):
            reg.histogram("bad2", buckets=[])


class TestQuantiles:
    def test_empty_histogram(self, reg):
        h = reg.histogram("h", buckets=[1.0, 2.0])
        assert h.quantile(0.5) == 0.0

    def test_interpolation_within_bucket(self, reg):
        h = reg.histogram("h", buckets=[1.0, 2.0, 4.0])
        for _ in range(100):
            h.observe(1.5)  # all in the (1, 2] bucket
        # Interpolates linearly across (1.0, 2.0].
        assert 1.0 < h.quantile(0.5) <= 2.0
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_in_inf_bucket_returns_top_bound(self, reg):
        h = reg.histogram("h", buckets=[1.0, 2.0])
        h.observe(50.0)
        assert h.quantile(0.99) == 2.0

    def test_quantile_domain(self, reg):
        h = reg.histogram("h", buckets=[1.0])
        with pytest.raises(ReproError):
            h.quantile(0.0)
        with pytest.raises(ReproError):
            h.quantile(1.5)

    def test_percentile_properties(self, reg):
        h = reg.histogram("h")
        for i in range(1, 101):
            h.observe(i / 1000.0)  # 1 ms .. 100 ms
        child = h.labels()
        assert child.p50 <= child.p95 <= child.p99


class TestCounterGauge:
    def test_counter_monotonic(self, reg):
        c = reg.counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ReproError):
            c.inc(-1.0)

    def test_gauge_set_inc_dec(self, reg):
        g = reg.gauge("g")
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value == pytest.approx(13.0)


class TestLabels:
    def test_label_children_are_distinct(self, reg):
        c = reg.counter("c", labelnames=("algorithm",))
        c.labels(algorithm="stps").inc()
        c.labels(algorithm="stds").inc(2)
        assert c.labels(algorithm="stps").value == 1
        assert c.labels(algorithm="stds").value == 2
        assert [lv for lv, _ in c.series()] == [("stds",), ("stps",)]

    def test_label_mismatch_rejected(self, reg):
        c = reg.counter("c", labelnames=("algorithm",))
        with pytest.raises(ReproError):
            c.labels(wrong="x")
        with pytest.raises(ReproError):
            c.labels()
        with pytest.raises(ReproError):
            c.inc()  # labeled family has no sole child

    def test_invalid_names_rejected(self, reg):
        with pytest.raises(ReproError):
            reg.counter("9starts_with_digit")
        with pytest.raises(ReproError):
            reg.counter("has space")
        with pytest.raises(ReproError):
            reg.counter("ok", labelnames=("bad-label",))


class TestRegistry:
    def test_registration_idempotent(self, reg):
        a = reg.counter("c", "help", ("x",))
        b = reg.counter("c", "other help", ("x",))
        assert a is b

    def test_type_mismatch_rejected(self, reg):
        reg.counter("c")
        with pytest.raises(ReproError):
            reg.gauge("c")
        with pytest.raises(ReproError):
            reg.counter("c", labelnames=("x",))

    def test_reset_keeps_registrations(self, reg):
        c = reg.counter("c", labelnames=("x",))
        h = reg.histogram("h")
        c.labels(x="1").inc(5)
        h.observe(0.1)
        assert reg.reset() == 2
        assert reg.counter("c", labelnames=("x",)) is c
        assert c.labels(x="1").value == 0
        assert h.labels().count == 0

    def test_unregister(self, reg):
        reg.counter("c")
        assert reg.unregister("c")
        assert not reg.unregister("c")
        assert reg.get("c") is None

    def test_default_registry_is_shared(self):
        assert registry() is registry()


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self, reg):
        c = reg.counter("c", labelnames=("worker",))
        rounds, workers = 2_000, 8

        def hammer(i: int) -> None:
            child = c.labels(worker=str(i % 2))
            for _ in range(rounds):
                child.inc()

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))
        total = sum(child.value for _, child in c.series())
        assert total == rounds * workers

    def test_concurrent_histogram_observations_are_exact(self, reg):
        h = reg.histogram("h")
        rounds, workers = 2_000, 8

        def hammer(i: int) -> None:
            child = h.labels()
            for j in range(rounds):
                child.observe(1e-4 * (1 + (j % 7)))

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))
        child = h.labels()
        assert child.count == rounds * workers
        assert sum(child.bucket_counts()) == rounds * workers
        assert not math.isnan(child.sum)
