"""Concurrency tests: scrape-under-load, flight wraparound, trace ids.

The observability layer is shared mutable state under the batch
executor's worker threads — these tests drive real concurrent query
traffic and assert the diagnostics stay coherent.
"""

from __future__ import annotations

import threading
import urllib.request

import pytest

from repro.core.executor import QueryExecutor
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.obs import flight
from repro.obs.export import MetricsServer
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def clean_flight():
    flight.clear()
    flight.configure(
        enabled_=False, latency_threshold_s=0.0,
        capacity=flight.DEFAULT_CAPACITY,
    )
    yield
    flight.clear()
    flight.configure(
        enabled_=False, latency_threshold_s=0.0,
        capacity=flight.DEFAULT_CAPACITY,
    )


@pytest.fixture(scope="module")
def processor():
    objects = synthetic_objects(400, seed=21)
    feature_sets = synthetic_feature_sets(2, 250, 32, seed=22)
    return QueryProcessor.build(objects, feature_sets)


def _queries(n: int) -> list[PreferenceQuery]:
    masks = [(0b1 << (i % 5)) | 0b1 for i in range(n)]
    return [
        PreferenceQuery(3, 0.03 + 0.001 * (i % 7), 0.5, (m, m << 1))
        for i, m in enumerate(masks)
    ]


class TestScrapeUnderLoad:
    def test_concurrent_scrapes_stay_parseable(self, processor):
        """Scraping while the executor hammers the registry never sees a
        torn line or a 500."""
        from repro.obs import metrics as _metrics

        server = MetricsServer(_metrics.registry(), port=0).start()
        bodies: list[str] = []
        errors: list[Exception] = []
        stop = threading.Event()

        def scrape_loop():
            url = f"http://127.0.0.1:{server.port}/metrics"
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(url, timeout=5) as resp:
                        bodies.append(resp.read().decode())
                except Exception as exc:  # noqa: BLE001 — collected
                    errors.append(exc)

        scraper = threading.Thread(target=scrape_loop, daemon=True)
        scraper.start()
        try:
            with QueryExecutor(processor, max_workers=4) as executor:
                executor.query_many(_queries(40), dedup=False)
        finally:
            stop.set()
            scraper.join(timeout=10)
            server.close()
        assert not errors
        assert bodies
        for body in bodies:
            for line in body.strip().splitlines():
                if line.startswith("#"):
                    continue
                # name{labels} value — two fields after the label block.
                assert " " in line, line
                value = line.rsplit(" ", 1)[1]
                assert value in ("NaN", "+Inf", "-Inf") or float(
                    value
                ) is not None

    def test_registry_counts_survive_concurrency(self, processor):
        reg = MetricsRegistry()
        c = reg.counter("t_total", "t", ("w",))

        def bump(wid: str):
            for _ in range(500):
                c.labels(w=wid).inc()

        threads = [
            threading.Thread(target=bump, args=(str(i % 3),))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(child.value for _, child in c.series())
        assert total == 3000.0


class TestFlightUnderLoad:
    def test_wraparound_under_query_many(self, processor):
        flight.configure(enabled_=True, latency_threshold_s=0.0, capacity=8)
        queries = _queries(30)
        with QueryExecutor(processor, max_workers=4) as executor:
            results = executor.query_many(queries, dedup=False)
        assert len(results) == 30
        stats = flight.stats()
        assert stats["buffered"] == 8
        assert stats["total_recorded"] == 30
        assert stats["total_evicted"] == 22
        records = flight.records()
        assert len(records) == 8
        # Ring keeps the newest: timestamps are non-decreasing.
        ts = [r.ts for r in records]
        assert ts == sorted(ts)

    def test_trace_ids_unique_per_execution(self, processor):
        flight.configure(enabled_=True, latency_threshold_s=0.0)
        queries = _queries(12)
        with QueryExecutor(processor, max_workers=4) as executor:
            results = executor.query_many(queries, dedup=False)
        record_ids = [r.trace_id for r in flight.records()]
        assert len(record_ids) == 12
        assert len(set(record_ids)) == 12
        # Every result's trace id has a matching flight record.
        assert {r.stats.trace_id for r in results} == set(record_ids)

    def test_dedup_executes_once_records_once(self, processor):
        flight.configure(enabled_=True, latency_threshold_s=0.0)
        query = _queries(1)[0]
        with QueryExecutor(processor, max_workers=4) as executor:
            results = executor.query_many([query] * 6, dedup=True)
        assert len(results) == 6
        assert len(flight.records()) == 1  # one execution, one record
