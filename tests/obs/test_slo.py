"""Tests for repro.obs.slo: budgets, burn rates, multi-window alerts."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_ALERTS,
    AvailabilitySLO,
    BurnRateAlert,
    LatencySLO,
    default_slos,
    evaluate_slos,
    load_slos,
    slo_from_dict,
)
from repro.obs.timeseries import TimeSeriesRing


@pytest.fixture()
def reg() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.histogram("repro_query_seconds", "Latency.")
    reg.counter("repro_queries_total", "Queries.", ("algorithm",))
    reg.counter("repro_executor_failures_total", "Failures.", ("algorithm", "error"))
    return reg


def _ring_with_latencies(reg, values) -> TimeSeriesRing:
    ring = TimeSeriesRing(registry=reg, capacity=32)
    ring.sample()
    h = reg.histogram("repro_query_seconds", "Latency.")
    for v in values:
        h.observe(v)
    ring.sample()
    return ring


class TestBurnRateAlert:
    def test_roundtrip(self):
        alert = BurnRateAlert("fast", 60.0, 15.0, 14.4)
        assert BurnRateAlert.from_dict(alert.to_dict()) == alert

    def test_short_window_must_be_shorter(self):
        with pytest.raises(ReproError):
            BurnRateAlert("bad", 15.0, 60.0, 2.0)

    def test_factor_positive(self):
        with pytest.raises(ReproError):
            BurnRateAlert("bad", 60.0, 15.0, 0.0)


class TestLatencySLO:
    def test_budget_accounting(self, reg):
        # 90 fast + 10 slow with a 95% objective: budget is 5% of 100
        # = 5 events, 10 bad events consumed 200% of it.
        ring = _ring_with_latencies(reg, [0.005] * 90 + [0.5] * 10)
        slo = LatencySLO(
            "lat", objective=0.95,
            metric="repro_query_seconds", threshold_s=0.1,
        )
        verdict = slo.evaluate(ring)
        assert verdict["total"] == 100
        assert verdict["good"] == 90
        assert verdict["bad"] == 10
        budget = verdict["error_budget"]
        assert budget["total"] == pytest.approx(5.0)
        assert budget["consumed"] == 10
        assert budget["consumed_fraction"] == pytest.approx(2.0)
        assert budget["exhausted"]
        assert not verdict["ok"]

    def test_all_good_within_budget(self, reg):
        ring = _ring_with_latencies(reg, [0.005] * 50)
        slo = LatencySLO(
            "lat", objective=0.95,
            metric="repro_query_seconds", threshold_s=0.1,
        )
        verdict = slo.evaluate(ring)
        assert verdict["bad"] == 0
        assert not verdict["error_budget"]["exhausted"]
        assert not verdict["firing"]
        assert verdict["ok"]

    def test_threshold_snaps_to_bucket_bound(self, reg):
        ring = _ring_with_latencies(reg, [0.01])
        slo = LatencySLO(
            "lat", objective=0.95,
            metric="repro_query_seconds", threshold_s=0.1,
        )
        # 0.1 is not a log-bucket bound; the effective threshold is the
        # nearest bound at or below it, reported so nobody is surprised.
        assert slo.effective_threshold(ring) == pytest.approx(0.08192)

    def test_burn_rate_alert_fires_only_when_both_windows_burn(self, reg):
        # 80% of events bad against a 95% objective: burn rate
        # (0.8 / 0.05) = 16 > 14.4, in both fast-burn windows (all
        # activity is recent, so the 15 s and 60 s windows agree).
        ring = _ring_with_latencies(reg, [0.005] * 2 + [0.5] * 8)
        slo = LatencySLO(
            "lat", objective=0.95,
            metric="repro_query_seconds", threshold_s=0.1,
        )
        verdict = slo.evaluate(ring)
        fast = next(a for a in verdict["alerts"] if a["name"] == "fast_burn")
        assert fast["long_burn_rate"] == pytest.approx(16.0)
        assert fast["short_burn_rate"] == pytest.approx(16.0)
        assert fast["firing"]
        assert verdict["firing"]

    def test_objective_validated(self):
        with pytest.raises(ReproError):
            LatencySLO("bad", objective=1.0,
                       metric="repro_query_seconds", threshold_s=0.1)


class TestAvailabilitySLO:
    def test_failures_consume_budget(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=32)
        ring.sample()
        total = reg.counter("repro_queries_total", "Queries.", ("algorithm",))
        bad = reg.counter(
            "repro_executor_failures_total", "Failures.", ("algorithm", "error")
        )
        total.labels(algorithm="stps").inc(1000)
        bad.labels(algorithm="stps", error="QueryError").inc(3)
        ring.sample()
        slo = AvailabilitySLO(
            "avail", objective=0.999,
            total_metric="repro_queries_total",
            bad_metric="repro_executor_failures_total",
        )
        verdict = slo.evaluate(ring)
        assert verdict["total"] == 1000
        assert verdict["bad"] == 3
        assert verdict["error_budget"]["total"] == pytest.approx(1.0)
        assert verdict["error_budget"]["exhausted"]

    def test_no_traffic_is_healthy(self, reg):
        ring = TimeSeriesRing(registry=reg, capacity=32)
        ring.sample()
        ring.sample()
        slo = AvailabilitySLO(
            "avail", objective=0.999,
            total_metric="repro_queries_total",
            bad_metric="repro_executor_failures_total",
        )
        verdict = slo.evaluate(ring)
        assert verdict["total"] == 0
        assert verdict["ok"]


class TestSerialization:
    def test_roundtrip_both_kinds(self):
        for slo in default_slos():
            clone = slo_from_dict(slo.to_dict())
            assert clone.to_dict() == slo.to_dict()

    def test_committed_slo_json_matches_defaults(self):
        # SLO.json is the operational contract the CI gate evaluates;
        # it must stay loadable and aligned with the code defaults.
        loaded = load_slos("SLO.json")
        assert [s.to_dict() for s in loaded] == [
            s.to_dict() for s in default_slos()
        ]

    def test_load_slos_accepts_bare_list(self, tmp_path):
        path = tmp_path / "slos.json"
        path.write_text(json.dumps([s.to_dict() for s in default_slos()]))
        assert len(load_slos(path)) == len(default_slos())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            slo_from_dict({"name": "x", "kind": "weather", "objective": 0.9})


class TestEvaluateSlos:
    def test_aggregate_verdict(self, reg):
        ring = _ring_with_latencies(reg, [0.005] * 90 + [0.5] * 10)
        result = evaluate_slos(default_slos(), ring)
        assert len(result["slos"]) == len(default_slos())
        assert result["exhausted"]  # latency budget blown above
        assert isinstance(result["firing"], bool)
        assert result["ok"] is False

    def test_default_alert_pairs(self):
        names = [a.name for a in DEFAULT_ALERTS]
        assert names == ["fast_burn", "slow_burn"]
        for slo in default_slos():
            assert tuple(slo.alerts) == DEFAULT_ALERTS
