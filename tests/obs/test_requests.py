"""Unit tests for :mod:`repro.obs.requests`.

W3C traceparent parsing edge cases, the tail-sampled trace store's
retention guarantees (100% of interesting requests kept, byte bound
held by evicting the boring sample first), and the tree renderer.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import requests as rq

VALID = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"


@pytest.fixture(autouse=True)
def clean_store():
    rq.configure(
        enabled_=False,
        max_bytes=rq.DEFAULT_MAX_BYTES,
        slow_threshold_s=rq.DEFAULT_SLOW_THRESHOLD_S,
        uniform_every=rq.DEFAULT_UNIFORM_EVERY,
    )
    rq.clear()
    yield
    rq.configure(
        enabled_=False,
        max_bytes=rq.DEFAULT_MAX_BYTES,
        slow_threshold_s=rq.DEFAULT_SLOW_THRESHOLD_S,
        uniform_every=rq.DEFAULT_UNIFORM_EVERY,
    )
    rq.clear()


class TestParseTraceparent:
    def test_valid_header(self):
        assert rq.parse_traceparent(VALID) == (
            "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7",
        )

    def test_surrounding_whitespace_tolerated(self):
        assert rq.parse_traceparent(f"  {VALID}  ") is not None

    @pytest.mark.parametrize("header", [
        None,
        "",
        "not-a-traceparent",
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",  # 3 fields
        "0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",  # ver width
        "00-4bf92f3577b34da6a3ce929d0e0e47-00f067aa0ba902b7-01",  # short tid
        "00-4bf92f3577b34da6a3ce929d0e0e473600-00f067aa0ba902b7-01",
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902-01",  # short pid
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-1",  # flags
        "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
        "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        "00-XBF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
    ])
    def test_malformed_rejected(self, header):
        assert rq.parse_traceparent(header) is None

    def test_all_zero_trace_id_rejected(self):
        assert rq.parse_traceparent(
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01"
        ) is None

    def test_all_zero_parent_id_rejected(self):
        assert rq.parse_traceparent(
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01"
        ) is None

    def test_version_ff_rejected(self):
        assert rq.parse_traceparent(
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
        ) is None

    def test_uppercase_hex_rejected(self):
        assert rq.parse_traceparent(VALID.upper()) is None

    def test_version_00_with_extra_fields_rejected(self):
        assert rq.parse_traceparent(VALID + "-extra") is None

    def test_future_version_with_extra_fields_accepted(self):
        header = (
            "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-xyz"
        )
        assert rq.parse_traceparent(header) == (
            "4bf92f3577b34da6a3ce929d0e0e4736", "00f067aa0ba902b7",
        )


class TestFormatTraceparent:
    def test_internal_id_padded_to_w3c_width(self):
        header = rq.format_traceparent("deadbeefcafe0123")
        version, trace_id, parent_id, flags = header.split("-")
        assert version == "00"
        assert trace_id == "deadbeefcafe0123".rjust(32, "0")
        assert len(parent_id) == 16
        assert flags == "01"
        # Round-trips through the parser.
        assert rq.parse_traceparent(header)[0] == trace_id

    def test_client_donated_id_preserved(self):
        tid = "4bf92f3577b34da6a3ce929d0e0e4736"
        assert rq.format_traceparent(tid).split("-")[1] == tid

    def test_w3c_trace_id_idempotent(self):
        assert rq.w3c_trace_id(rq.w3c_trace_id("abc")) == rq.w3c_trace_id(
            "abc"
        )


def _fill(
    n: int, outcome: str = "ok", status: int = 200, duration_s: float = 0.0,
    tenant: str = "t", prefix: str = "req",
):
    kept = 0
    for i in range(n):
        kept += rq.record(
            trace_id=f"{prefix}{i:08x}", tenant=tenant, outcome=outcome,
            status=status, duration_s=duration_s,
        )
    return kept


class TestTailSampling:
    def test_disabled_store_records_nothing(self):
        assert _fill(5) == 0
        assert rq.stats()["buffered"] == 0

    def test_interesting_requests_always_kept(self):
        rq.configure(enabled_=True, uniform_every=0)
        assert _fill(20, outcome="error", status=500) == 20
        assert _fill(20, outcome="quota", status=429, prefix="shed") == 20
        assert _fill(
            20, outcome="ok", status=200, duration_s=1.0, prefix="slow"
        ) == 20
        stats = rq.stats()
        assert stats["kept"] == 60
        assert stats["kept_by_reason"] == {
            "error": 20, "shed": 20, "slow": 20,
        }

    def test_uniform_sample_is_deterministic_one_in_n(self):
        rq.configure(enabled_=True, uniform_every=10)
        kept = _fill(100)
        assert kept == 10
        assert all(
            t["keep_reason"] == "uniform" for t in rq.query_traces()
        )

    def test_mixed_load_retains_all_interesting_within_byte_bound(self):
        # Small budget so the mixed load must evict; every interesting
        # request must survive anyway, shed from the uniform sample.
        rq.configure(
            enabled_=True, max_bytes=64 * 1024, slow_threshold_s=0.1,
            uniform_every=2,
        )
        interesting = []
        for i in range(120):
            rq.record(
                trace_id=f"ok{i:08x}", tenant="bulk", outcome="ok",
                status=200, duration_s=0.001,
            )
            if i % 3 == 0:
                tid = f"bad{i:08x}"
                interesting.append(tid)
                rq.record(
                    trace_id=tid, tenant="vip",
                    outcome=("error", "quota", "ok")[i % 3 // 1 % 3],
                    status=(500, 429, 200)[(i // 3) % 3],
                    duration_s=0.5,
                )
        stats = rq.stats()
        assert stats["bytes"] <= stats["max_bytes"]
        stored = {t["trace_id"] for t in rq.query_traces(limit=10_000)}
        assert set(interesting) <= stored
        assert stats["evicted_interesting"] == 0

    def test_byte_bound_wins_when_everything_is_interesting(self):
        rq.configure(enabled_=True, max_bytes=8 * 1024, uniform_every=0)
        _fill(200, outcome="error", status=500)
        stats = rq.stats()
        assert stats["bytes"] <= stats["max_bytes"]
        assert stats["evicted_interesting"] > 0
        assert stats["buffered"] > 0

    def test_slow_threshold_zero_keeps_everything(self):
        rq.configure(enabled_=True, slow_threshold_s=0.0, uniform_every=0)
        assert _fill(10) == 10
        assert all(t["keep_reason"] == "slow" for t in rq.query_traces())

    def test_span_cap_per_trace(self):
        rq.configure(enabled_=True)
        spans = [
            {"name": f"s{i}", "ts": float(i), "dur": 1.0}
            for i in range(rq.MAX_SPANS_PER_TRACE + 100)
        ]
        rq.record(
            trace_id="big", tenant="t", outcome="error", status=500,
            duration_s=0.0, spans=spans,
        )
        (trace,) = rq.query_traces(trace_id="big")
        assert len(trace["spans"]) == rq.MAX_SPANS_PER_TRACE


class TestQueryAndDump:
    def test_filters_compose(self):
        rq.configure(enabled_=True, uniform_every=0)
        rq.record(trace_id="a1", tenant="acme", outcome="error",
                  status=500, duration_s=0.2)
        rq.record(trace_id="b1", tenant="bob", outcome="error",
                  status=500, duration_s=0.002)
        rq.record(trace_id="b2", tenant="bob", outcome="quota",
                  status=429, duration_s=0.3)
        assert {t["trace_id"] for t in rq.query_traces(tenant="bob")} == {
            "b1", "b2",
        }
        assert [t["trace_id"] for t in rq.query_traces(min_ms=100.0)] == [
            "b2", "a1",
        ]
        assert rq.query_traces(tenant="bob", min_ms=100.0)[0][
            "trace_id"
        ] == "b2"

    def test_get_matches_short_and_w3c_forms(self):
        rq.configure(enabled_=True, uniform_every=0)
        rq.record(trace_id="deadbeefcafe0123", tenant="t",
                  outcome="error", status=500, duration_s=0.0)
        assert rq.get("deadbeefcafe0123") is not None
        assert rq.get("deadbeefcafe0123".rjust(32, "0")) is not None
        assert rq.get("f" * 32) is None

    def test_payload_shape_and_dump_jsonl(self, tmp_path):
        rq.configure(enabled_=True, uniform_every=0)
        rq.record(trace_id="x1", tenant="t", outcome="error", status=500,
                  duration_s=0.0)
        doc = rq.payload()
        assert doc["stats"]["buffered"] == 1
        assert doc["traces"][0]["trace_id"] == "x1"
        json.dumps(doc, allow_nan=False)
        path = rq.dump_jsonl(tmp_path / "traces.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert rq.RequestTrace.from_dict(
            json.loads(lines[0])
        ).trace_id == "x1"


class TestRenderTraceTree:
    def test_nesting_by_time_containment(self):
        trace = {
            "trace_id": "t1", "tenant": "acme", "outcome": "ok",
            "status": 200, "duration_s": 0.012, "keep_reason": "slow",
            "spans": [
                {"name": "serve.request", "ts": 0.0, "dur": 1000.0},
                {"name": "serve.quota", "ts": 10.0, "dur": 20.0},
                {"name": "serve.execute", "ts": 100.0, "dur": 800.0},
                {"name": "executor.query", "ts": 150.0, "dur": 700.0,
                 "args": {"algorithm": "stps"}},
            ],
        }
        out = rq.render_trace_tree(trace)
        lines = out.splitlines()
        assert "trace t1" in lines[0] and "12.00ms" in lines[0]
        indent = {
            line.strip().split()[1]: len(line) - len(line.lstrip())
            for line in lines[1:]
        }
        assert indent["serve.quota"] > indent["serve.request"]
        assert indent["serve.execute"] > indent["serve.request"]
        assert indent["executor.query"] > indent["serve.execute"]
        assert "algorithm=stps" in out

    def test_spanless_trace_renders(self):
        out = rq.render_trace_tree({
            "trace_id": "t2", "tenant": "t", "outcome": "quota",
            "status": 429, "duration_s": 0.0, "keep_reason": "shed",
            "reason": "tenant 't' over quota", "spans": [],
        })
        assert "no spans recorded" in out
        assert "over quota" in out
