"""Tests for repro.obs.slog: structured JSON logs joined on trace id."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.obs import slog, tracing


@pytest.fixture()
def log_stream():
    stream = io.StringIO()
    slog.configure(level=logging.INFO, stream=stream, logger_name="repro")
    yield stream
    slog.teardown("repro")


def _lines(stream: io.StringIO) -> list[dict]:
    return [json.loads(l) for l in stream.getvalue().splitlines()]


class TestJsonLogging:
    def test_basic_record_shape(self, log_stream):
        logging.getLogger("repro.test").info("hello %s", "world")
        (record,) = _lines(log_stream)
        assert record["message"] == "hello world"
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.test"
        assert record["trace_id"] == "-"  # outside any query context
        assert isinstance(record["ts"], float)

    def test_trace_id_stamped_inside_scope(self, log_stream):
        with tracing.trace_scope(tracing.new_trace_id()) as tid:
            logging.getLogger("repro.test").info("inside")
        logging.getLogger("repro.test").info("outside")
        inside, outside = _lines(log_stream)
        assert inside["trace_id"] == tid
        assert outside["trace_id"] == "-"

    def test_extra_fields_pass_through(self, log_stream):
        logging.getLogger("repro.test").info(
            "floor raised", extra={"floor": 0.42, "shard": 3}
        )
        (record,) = _lines(log_stream)
        assert record["floor"] == 0.42
        assert record["shard"] == 3

    def test_non_json_extra_reprs(self, log_stream):
        marker = object()
        logging.getLogger("repro.test").info("x", extra={"obj": marker})
        (record,) = _lines(log_stream)
        assert record["obj"] == repr(marker)

    def test_exception_info(self, log_stream):
        try:
            raise ValueError("boom")
        except ValueError:
            logging.getLogger("repro.test").exception("failed")
        (record,) = _lines(log_stream)
        assert record["exc_type"] == "ValueError"
        assert record["exc_message"] == "boom"
        assert record["level"] == "ERROR"

    def test_configure_idempotent(self, log_stream):
        # Re-configuring replaces the handler: still exactly one line.
        second = io.StringIO()
        slog.configure(stream=second, logger_name="repro")
        logging.getLogger("repro.test").info("once")
        assert _lines(log_stream) == []  # old handler was removed
        assert len(_lines(second)) == 1

    def test_teardown_removes_handler(self):
        stream = io.StringIO()
        slog.configure(stream=stream, logger_name="repro")
        slog.teardown("repro")
        assert not [
            h for h in logging.getLogger("repro").handlers
            if getattr(h, "_repro_slog", False)
        ]

    def test_query_logs_join_flight_and_spans(self, log_stream):
        """The same trace id appears in logs, stats, and trace events."""
        from repro.core.processor import QueryProcessor
        from repro.core.query import PreferenceQuery
        from repro.data.synthetic import (
            synthetic_feature_sets,
            synthetic_objects,
        )

        processor = QueryProcessor.build(
            synthetic_objects(100, seed=3),
            synthetic_feature_sets(2, 80, 32, seed=4),
        )
        query = PreferenceQuery(3, 0.05, 0.5, (0b11, 0b110))
        with tracing.enabled_tracing():
            with tracing.trace_scope(tracing.new_trace_id()) as tid:
                logging.getLogger("repro.test").info("running query")
                result = processor.query(query)
        assert result.stats.trace_id == tid
        (record,) = _lines(log_stream)
        assert record["trace_id"] == tid
        span_ids = {
            e.get("args", {}).get("trace_id")
            for e in tracing.events()
            if e.get("ph") == "X"
        }
        assert tid in span_ids
