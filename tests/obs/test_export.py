"""Tests for repro.obs.export: Prometheus text, JSON, scrape endpoint."""

from __future__ import annotations

import json
import math
import re
import urllib.error
import urllib.request

import pytest

from repro.obs.export import (
    CONTENT_TYPE_PROMETHEUS,
    MetricsServer,
    render_prometheus,
    snapshot,
    write_json,
)
from repro.obs.metrics import MetricsRegistry

#: One sample line: name{labels} value — the grammar Prometheus scrapes.
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (NaN|[+-]Inf|[0-9.e+-]+)$"
)


@pytest.fixture()
def reg() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("repro_queries_total", "Queries executed.", ("algorithm",))
    c.labels(algorithm="stps").inc(3)
    c.labels(algorithm="stds").inc(1)
    g = reg.gauge("repro_cache_pages", "Buffered pages.")
    g.set(42)
    h = reg.histogram(
        "repro_query_seconds", "Latency.", ("algorithm",), buckets=[0.01, 0.1, 1.0]
    )
    for v in (0.005, 0.05, 0.5, 5.0):
        h.labels(algorithm="stps").observe(v)
    return reg


class TestPrometheusText:
    def test_every_line_parses(self, reg):
        text = render_prometheus(reg)
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* ", line)
            else:
                assert SAMPLE_RE.match(line), line

    def test_headers_and_samples(self, reg):
        text = render_prometheus(reg)
        assert "# TYPE repro_queries_total counter" in text
        assert "# HELP repro_queries_total Queries executed." in text
        assert 'repro_queries_total{algorithm="stps"} 3.0' in text
        assert "# TYPE repro_cache_pages gauge" in text
        assert "repro_cache_pages 42.0" in text
        assert "# TYPE repro_query_seconds histogram" in text

    def test_histogram_buckets_cumulative_and_inf(self, reg):
        text = render_prometheus(reg)
        counts = [
            int(m.group(1))
            for m in re.finditer(
                r'repro_query_seconds_bucket\{algorithm="stps",le="[^"]+"\} (\d+)',
                text,
            )
        ]
        assert counts == sorted(counts)  # cumulative => monotone
        assert len(counts) == 4  # 3 finite bounds + +Inf
        assert 'le="+Inf"} 4' in text
        assert 'repro_query_seconds_count{algorithm="stps"} 4' in text
        assert re.search(
            r'repro_query_seconds_sum\{algorithm="stps"\} 5\.55', text
        )

    def test_label_escaping(self):
        reg = MetricsRegistry()
        c = reg.counter("c", labelnames=("q",))
        c.labels(q='say "hi"\nback\\slash').inc()
        text = render_prometheus(reg)
        assert r'q="say \"hi\"\nback\\slash"' in text

    def test_empty_registry(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_special_float_values(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(math.inf)
        assert "g +Inf" in render_prometheus(reg)


def _unescape_label_value(value: str) -> str:
    """Invert Prometheus label escaping (the scraper's view)."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, ch + nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


class TestLabelEscapingRoundTrip:
    """Escaping must be invertible: escape → parse → unescape → original.

    Guards against the classic ordering bug (escaping quotes before
    backslashes double-escapes) and against newlines breaking the
    line-oriented exposition format.
    """

    @pytest.mark.parametrize(
        "raw",
        [
            "plain",
            'say "hi"',
            "back\\slash",
            "line\nbreak",
            '\\"',  # backslash then quote: order-sensitive
            "\\n",  # literal backslash-n, not a newline
            'mix\\of "all"\nthree\\',
            "",
        ],
    )
    def test_round_trip(self, raw):
        reg = MetricsRegistry()
        reg.counter("c", labelnames=("q",)).labels(q=raw).inc()
        text = render_prometheus(reg)
        lines = [
            l for l in text.strip().splitlines() if not l.startswith("#")
        ]
        assert len(lines) == 1  # newlines in values never split a sample
        m = re.match(r'^c\{q="((?:\\.|[^"\\])*)"\} 1\.0$', lines[0])
        assert m, lines[0]
        assert _unescape_label_value(m.group(1)) == raw

    def test_distinct_values_stay_distinct(self):
        # '\\n' (two chars) and '\n' (newline) must not collide after
        # escaping: backslash is escaped first.
        reg = MetricsRegistry()
        c = reg.counter("c", labelnames=("q",))
        c.labels(q="\\n").inc()
        c.labels(q="\n").inc()
        text = render_prometheus(reg)
        assert r'q="\\n"' in text
        assert r'q="\n"' in text


class TestQuantileInfClipping:
    """quantile() at the +Inf bucket clips to the top finite bound."""

    def test_clips_to_top_finite_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[1.0, 2.0])
        h.observe(5.0)  # lands in the implicit +Inf bucket
        assert h.quantile(0.99) == 2.0
        # count/sum still see the real observation.
        ((_, child),) = h.series()
        assert child.count == 1
        assert child.sum == 5.0

    def test_no_finite_buckets_returns_inf(self):
        import threading

        from repro.obs.metrics import Histogram

        h = Histogram(threading.Lock(), ())
        h.observe(3.0)
        assert h.quantile(0.5) == math.inf

    def test_no_observations_returns_zero(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[1.0, 2.0])
        assert h.quantile(0.5) == 0.0

    def test_mixed_observations_interpolate_below_clip(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[1.0, 2.0])
        for v in (0.5, 0.5, 0.5, 5.0):
            h.observe(v)
        # p50 sits inside the first finite bucket; p99 is clipped.
        assert h.quantile(0.5) <= 1.0
        assert h.quantile(0.99) == 2.0


class TestJsonSnapshot:
    def test_snapshot_shape(self, reg):
        snap = snapshot(reg)
        assert snap["repro_queries_total"]["type"] == "counter"
        series = {
            s["labels"]["algorithm"]: s["value"]
            for s in snap["repro_queries_total"]["series"]
        }
        assert series == {"stps": 3.0, "stds": 1.0}
        hist = snap["repro_query_seconds"]["series"][0]
        assert hist["count"] == 4
        assert hist["buckets"] == [0.01, 0.1, 1.0]
        assert sum(hist["bucket_counts"]) == 4
        assert hist["p50"] <= hist["p95"] <= hist["p99"]

    def test_write_json(self, reg, tmp_path):
        path = write_json(tmp_path / "snap.json", reg)
        doc = json.loads(path.read_text())
        assert doc["repro_cache_pages"]["series"][0]["value"] == 42.0


class TestMetricsServer:
    def test_scrape_endpoint(self, reg):
        with MetricsServer(reg, port=0) as server:
            assert server.port != 0
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE_PROMETHEUS
                body = resp.read().decode()
            assert 'repro_queries_total{algorithm="stps"} 3.0' in body
            with urllib.request.urlopen(
                f"{base}/metrics.json", timeout=5
            ) as resp:
                doc = json.load(resp)
            assert doc["repro_cache_pages"]["series"][0]["value"] == 42.0
            with urllib.request.urlopen(f"{base}/healthz", timeout=5) as resp:
                assert resp.read() == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(f"{base}/nope", timeout=5)

    def test_scrape_reflects_live_updates(self, reg):
        with MetricsServer(reg, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            reg.counter("repro_queries_total", labelnames=("algorithm",)).labels(
                algorithm="stps"
            ).inc(7)
            with urllib.request.urlopen(f"{base}/metrics", timeout=5) as resp:
                body = resp.read().decode()
            assert 'repro_queries_total{algorithm="stps"} 10.0' in body

    def test_close_idempotent(self, reg):
        server = MetricsServer(reg, port=0).start()
        server.close()
        server.close()

    def test_close_prompt_despite_half_open_client(self, reg):
        """A connected client that never sends a request line must not
        wedge close(): the listener shuts before the join and handler
        threads are daemonic with a socket timeout, so close() returns
        in well under the 5s join bound (it used to hang for as long as
        the stalled client stayed connected)."""
        import socket
        import time

        server = MetricsServer(reg, port=0).start()
        stuck = socket.create_connection(
            ("127.0.0.1", server.port), timeout=5
        )
        try:
            time.sleep(0.05)  # let the server accept the connection
            t0 = time.perf_counter()
            server.close()
            assert time.perf_counter() - t0 < 2.0
        finally:
            stuck.close()

    def test_half_open_connection_times_out_server_side(self, reg):
        """The handler socket timeout drains the stalled thread: after
        ``timeout`` seconds the server closes the connection on its own
        (the client sees EOF) even while the server keeps running."""
        from repro.obs import export as export_mod

        import socket
        import time

        original = export_mod._Handler.timeout
        export_mod._Handler.timeout = 0.2
        try:
            with MetricsServer(reg, port=0) as server:
                stuck = socket.create_connection(
                    ("127.0.0.1", server.port), timeout=5
                )
                try:
                    stuck.settimeout(5)
                    t0 = time.perf_counter()
                    assert stuck.recv(1) == b""  # server-side close
                    assert time.perf_counter() - t0 < 3.0
                finally:
                    stuck.close()
        finally:
            export_mod._Handler.timeout = original


class TestOpenMetrics:
    @pytest.fixture()
    def reg_with_exemplars(self) -> MetricsRegistry:
        from repro.obs import tracing
        from repro.obs.metrics import enabled_exemplars

        reg = MetricsRegistry()
        h = reg.histogram(
            "repro_query_seconds", "Latency.", buckets=[0.01, 0.1, 1.0]
        )
        with enabled_exemplars():
            with tracing.trace_scope("tr-om-1"):
                h.observe(0.05)
        h.observe(0.5)  # outside any trace scope: no exemplar
        return reg

    def test_bucket_lines_carry_exemplars(self, reg_with_exemplars):
        from repro.obs.export import render_openmetrics

        text = render_openmetrics(reg_with_exemplars)
        assert text.endswith("# EOF\n")
        exemplar_lines = [
            line for line in text.splitlines() if "# {" in line
        ]
        assert len(exemplar_lines) == 1
        line = exemplar_lines[0]
        assert 'le="0.1"' in line
        assert 'trace_id="tr-om-1"' in line
        assert " 0.05 " in line

    def test_prometheus_text_stays_exemplar_free(self, reg_with_exemplars):
        # CI regex-validates every line of obs_metrics.prom; exemplars
        # are OpenMetrics-only syntax and must never leak there.
        text = render_prometheus(reg_with_exemplars)
        assert "# {" not in text
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert SAMPLE_RE.match(line), line

    def test_snapshot_includes_exemplars(self, reg_with_exemplars):
        doc = snapshot(reg_with_exemplars)
        series = doc["repro_query_seconds"]["series"][0]
        assert len(series["exemplars"]) == 1
        ex = series["exemplars"][0]
        assert ex["trace_id"] == "tr-om-1"
        assert ex["value"] == 0.05


class TestTimeseriesEndpoints:
    @pytest.fixture()
    def served(self, reg):
        from repro.obs.slo import default_slos
        from repro.obs.timeseries import TimeSeriesRing

        ring = TimeSeriesRing(registry=reg, capacity=32)
        ring.sample()
        reg.counter(
            "repro_queries_total", labelnames=("algorithm",)
        ).labels(algorithm="stps").inc(5)
        ring.sample()
        with MetricsServer(
            reg, port=0, ring=ring, slos=default_slos()
        ) as server:
            yield f"http://127.0.0.1:{server.port}"

    def test_timeseries_json(self, served):
        with urllib.request.urlopen(
            f"{served}/timeseries.json", timeout=5
        ) as resp:
            doc = json.load(resp)
        assert doc["slots"] == 2
        assert doc["timeline"]
        assert set(doc["windows"]) == {"10", "60", "300"}
        assert doc["windows"]["60"]["rates"]["repro_queries_total"] >= 0
        from repro.obs.slo import default_slos

        assert {v["slo"] for v in doc["slo"]["slos"]} == {
            s.name for s in default_slos()
        }

    def test_dashboard_serves_html(self, served):
        with urllib.request.urlopen(f"{served}/dashboard", timeout=5) as resp:
            assert resp.headers["Content-Type"].startswith("text/html")
            body = resp.read().decode()
        assert "timeseries.json" in body  # polls its sibling endpoint
        assert "<canvas" in body

    def test_openmetrics_endpoint(self, served):
        from repro.obs.export import CONTENT_TYPE_OPENMETRICS

        with urllib.request.urlopen(
            f"{served}/openmetrics", timeout=5
        ) as resp:
            assert resp.headers["Content-Type"] == CONTENT_TYPE_OPENMETRICS
            assert resp.read().decode().endswith("# EOF\n")

    def test_flight_json(self, served):
        with urllib.request.urlopen(f"{served}/flight.json", timeout=5) as resp:
            doc = json.load(resp)
        assert "stats" in doc and "records" in doc

    def test_flamegraph_404_when_not_installed(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{served}/flamegraph.txt", timeout=5)
        assert excinfo.value.code == 404

    def test_timeseries_404_without_ring(self, reg):
        with MetricsServer(reg, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{server.port}/timeseries.json",
                    timeout=5,
                )
            assert excinfo.value.code == 404


class TestTimeseriesPayload:
    def test_payload_shape_without_slos(self, reg):
        from repro.obs.export import timeseries_payload
        from repro.obs.timeseries import TimeSeriesRing

        ring = TimeSeriesRing(registry=reg, capacity=8)
        ring.sample()
        payload = timeseries_payload(ring)
        assert payload["capacity"] == 8
        assert "slo" not in payload
        assert json.dumps(payload)  # must stay JSON-serializable
