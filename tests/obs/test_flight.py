"""Tests for repro.obs.flight: the slow-query flight recorder."""

from __future__ import annotations

import json

import pytest

from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.errors import QueryError, ShardError
from repro.obs import flight


@pytest.fixture(autouse=True)
def clean_flight():
    """Recorder state is process-global: isolate every test."""
    flight.clear()
    flight.configure(
        enabled_=False, latency_threshold_s=0.0,
        capacity=flight.DEFAULT_CAPACITY,
    )
    yield
    flight.clear()
    flight.configure(
        enabled_=False, latency_threshold_s=0.0,
        capacity=flight.DEFAULT_CAPACITY,
        plan_max_bytes=flight.DEFAULT_PLAN_MAX_BYTES,
    )


def _query(k: int = 5) -> PreferenceQuery:
    return PreferenceQuery(k, 0.05, 0.5, (0b111, 0b1110))


class TestRecorderBasics:
    def test_disabled_by_default(self):
        assert flight.enabled is False
        assert not flight.maybe_record(_query(), "stps", "p", "t1", 1.0)
        assert flight.records() == []

    def test_latency_threshold(self):
        flight.configure(enabled_=True, latency_threshold_s=0.1)
        assert not flight.maybe_record(_query(), "stps", "p", "t1", 0.05)
        assert flight.maybe_record(_query(), "stps", "p", "t2", 0.15)
        records = flight.records()
        assert len(records) == 1
        assert records[0].trace_id == "t2"
        assert records[0].latency_s == 0.15
        assert records[0].query["k"] == 5

    def test_errors_bypass_threshold(self):
        flight.configure(enabled_=True, latency_threshold_s=10.0)
        err = QueryError("bad query")
        assert flight.record_error(_query(), "stps", "p", "t3", 0.001, err)
        record = flight.records()[0]
        assert record.error == {"type": "QueryError", "message": "bad query"}
        assert record.shard_id is None

    def test_shard_id_from_shard_error(self):
        flight.configure(enabled_=True)
        err = ShardError(3, "shard blew up")
        flight.record_error(_query(), "stps", "p", "t4", 0.001, err)
        assert flight.records()[0].shard_id == 3

    def test_explicit_shard_id_wins(self):
        flight.configure(enabled_=True)
        flight.record_error(
            _query(), "stps", "p", "t5", 0.001, QueryError("x"), shard_id=7
        )
        assert flight.records()[0].shard_id == 7

    def test_ring_wraparound(self):
        flight.configure(enabled_=True, capacity=4)
        for i in range(10):
            flight.maybe_record(_query(), "stps", "p", f"t{i}", 0.01)
        records = flight.records()
        assert [r.trace_id for r in records] == ["t6", "t7", "t8", "t9"]
        stats = flight.stats()
        assert stats["buffered"] == 4
        assert stats["total_recorded"] == 10
        assert stats["total_evicted"] == 6

    def test_capacity_resize_keeps_newest(self):
        flight.configure(enabled_=True, capacity=8)
        for i in range(6):
            flight.maybe_record(_query(), "stps", "p", f"t{i}", 0.01)
        flight.configure(capacity=2)
        assert [r.trace_id for r in flight.records()] == ["t4", "t5"]
        with pytest.raises(ValueError):
            flight.configure(capacity=0)

    def test_dump_jsonl(self, tmp_path):
        flight.configure(enabled_=True)
        flight.maybe_record(_query(), "stps", "p", "aa", 0.01)
        flight.record_error(_query(), "stds", "p", "bb", 0.02, ShardError(1, "x"))
        path = flight.dump_jsonl(tmp_path / "flight.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["trace_id"] == "aa"
        assert "error" not in lines[0]
        assert lines[1]["error"]["type"] == "ShardError"
        assert lines[1]["shard_id"] == 1

    def test_clear(self):
        flight.configure(enabled_=True)
        flight.maybe_record(_query(), "stps", "p", "t", 0.01)
        assert flight.clear() == 1
        assert flight.records() == []
        assert flight.stats()["total_recorded"] == 0


@pytest.fixture(scope="module")
def processor():
    objects = synthetic_objects(300, seed=9)
    feature_sets = synthetic_feature_sets(2, 200, 32, seed=10)
    return QueryProcessor.build(objects, feature_sets)


class TestProcessorIntegration:
    def test_slow_query_recorded_with_trace_id(self, processor):
        flight.configure(enabled_=True, latency_threshold_s=0.0)
        result = processor.query(_query())
        records = flight.records()
        assert len(records) == 1
        record = records[0]
        assert record.trace_id == result.stats.trace_id
        assert record.algorithm == "stps"
        assert record.counters["objects_scored"] == (
            result.stats.objects_scored
        )

    def test_explain_attaches_plan_summary(self, processor):
        flight.configure(enabled_=True, latency_threshold_s=0.0)
        report = processor.explain(_query())
        record = flight.records()[-1]
        assert record.plan_summary is not None
        assert record.plan_summary["objects_scored"] == (
            report.plan.objects_scored
        )

    def test_failed_query_recorded(self, processor):
        flight.configure(enabled_=True, latency_threshold_s=10.0)
        bad = PreferenceQuery(5, 0.05, 0.5, (0b1,))  # c=1 vs 2 trees
        with pytest.raises(QueryError):
            processor.query(bad)
        records = flight.records()
        assert len(records) == 1  # threshold skipped for errors
        assert records[0].error["type"] == "QueryError"
        assert records[0].trace_id

    def test_disabled_records_nothing(self, processor):
        processor.query(_query())
        assert flight.records() == []


class TestShardedIntegration:
    def test_shard_failure_carries_shard_id(self):
        from repro.shard import ShardedQueryProcessor

        objects = synthetic_objects(200, seed=11)
        feature_sets = synthetic_feature_sets(2, 150, 32, seed=12)
        flight.configure(enabled_=True, latency_threshold_s=10.0)
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.08, max_workers=1
        ) as sharded:
            # Sabotage every shard so whichever runs first raises a
            # wrapped ShardError (run order follows the root bounds).
            for shard in sharded.shards:
                shard.processor.query = _boom
            with pytest.raises(ShardError):
                sharded.query(_query())
        records = flight.records()
        # The sharded fan-out records the wrapped ShardError with the
        # failing shard's id (the per-shard processor was bypassed, so
        # only the fan-out layer records).
        shard_errors = [r for r in records if r.error is not None]
        assert shard_errors
        assert shard_errors[-1].error["type"] == "ShardError"
        assert shard_errors[-1].shard_id in (0, 1)
        assert shard_errors[-1].algorithm == "sharded/stps"

    def test_slow_sharded_query_recorded(self):
        from repro.shard import ShardedQueryProcessor

        objects = synthetic_objects(200, seed=11)
        feature_sets = synthetic_feature_sets(2, 150, 32, seed=12)
        flight.configure(enabled_=True, latency_threshold_s=0.0)
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.08
        ) as sharded:
            result = sharded.query(_query())
        fanout = [
            r for r in flight.records() if r.algorithm == "sharded/stps"
        ]
        assert len(fanout) == 1
        assert fanout[0].trace_id == result.stats.trace_id
        # Per-shard executions (inside the fan-out's trace scope) were
        # recorded too, under the same trace id.
        per_shard = [
            r for r in flight.records() if r.algorithm == "stps"
        ]
        assert per_shard
        assert all(
            r.trace_id == result.stats.trace_id for r in per_shard
        )


def _boom(*args, **kwargs):
    raise RuntimeError("injected shard failure")


class TestPlanPayloadCap:
    def test_oversized_plan_truncated(self):
        flight.configure(
            enabled_=True, latency_threshold_s=0.0, plan_max_bytes=256,
        )
        big_plan = {"nodes": ["x" * 64] * 50}
        record = flight.QueryRecord(
            trace_id="t-cap", ts=0.0, algorithm="stps", variant="range",
            pulling="p", query={}, latency_s=0.1,
            plan_summary=big_plan,
        )
        flight._push(record)
        stored = flight.records()[0]
        assert stored.plan_summary["truncated"] is True
        assert stored.plan_summary["bytes"] > 256

    def test_small_plan_kept_intact(self):
        flight.configure(
            enabled_=True, latency_threshold_s=0.0, plan_max_bytes=4096,
        )
        plan = {"nodes": ["scan"]}
        record = flight.QueryRecord(
            trace_id="t-ok", ts=0.0, algorithm="stps", variant="range",
            pulling="p", query={}, latency_s=0.1, plan_summary=plan,
        )
        flight._push(record)
        assert flight.records()[0].plan_summary == plan


class TestDumpRotation:
    def _fill(self, n: int) -> None:
        flight.configure(enabled_=True, latency_threshold_s=0.0)
        for i in range(n):
            flight.maybe_record(_query(), "stps", "p", f"t{i}", 0.5)

    def test_wraparound_then_rotation(self, tmp_path):
        # Ring wraparound first: capacity 4, 10 records -> newest 4 kept.
        flight.configure(
            enabled_=True, latency_threshold_s=0.0, capacity=4,
        )
        self._fill(10)
        assert [r.trace_id for r in flight.records()] == [
            "t6", "t7", "t8", "t9",
        ]
        path = tmp_path / "flight.jsonl"
        # First dump: no existing file, no rotation.
        flight.dump_jsonl(path, max_bytes=1 << 16)
        assert not (tmp_path / "flight.jsonl.1").exists()
        first = path.read_text()
        # Second dump rotates the first one out instead of clobbering.
        flight.dump_jsonl(path, max_bytes=1 << 16)
        assert (tmp_path / "flight.jsonl.1").read_text() == first
        # Third dump shifts .1 -> .2.
        flight.dump_jsonl(path, max_bytes=1 << 16)
        assert (tmp_path / "flight.jsonl.2").read_text() == first

    def test_backups_bounded(self, tmp_path):
        self._fill(2)
        path = tmp_path / "flight.jsonl"
        for _ in range(6):
            flight.dump_jsonl(path, max_bytes=1 << 16, backups=2)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["flight.jsonl", "flight.jsonl.1", "flight.jsonl.2"]

    def test_oversized_dump_keeps_newest_records(self, tmp_path):
        self._fill(50)
        path = tmp_path / "flight.jsonl"
        one_line = len(json.dumps(flight.records()[0].to_dict())) + 1
        flight.dump_jsonl(path, max_bytes=one_line * 3 + 10)
        lines = path.read_text().splitlines()
        assert 0 < len(lines) <= 4
        # Newest survive (eviction order matches the ring's).
        assert json.loads(lines[-1])["trace_id"] == "t49"
        assert path.stat().st_size <= one_line * 3 + 10

    def test_append_mode_rotates_at_cap(self, tmp_path):
        self._fill(5)
        path = tmp_path / "flight.jsonl"
        one_dump = sum(
            len(json.dumps(r.to_dict())) + 1 for r in flight.records()
        )
        cap = int(one_dump * 2.5)
        flight.dump_jsonl(path, append=True, max_bytes=cap)
        flight.dump_jsonl(path, append=True, max_bytes=cap)
        assert path.stat().st_size <= cap
        # Third append would exceed the cap: current file rotates away
        # and the dump starts fresh.
        flight.dump_jsonl(path, append=True, max_bytes=cap)
        assert (tmp_path / "flight.jsonl.1").exists()
        assert path.stat().st_size <= cap

    def test_unbounded_dump_unchanged(self, tmp_path):
        self._fill(3)
        path = tmp_path / "flight.jsonl"
        flight.dump_jsonl(path)
        flight.dump_jsonl(path)  # plain overwrite, no rotation
        assert not (tmp_path / "flight.jsonl.1").exists()
        assert len(path.read_text().splitlines()) == 3
