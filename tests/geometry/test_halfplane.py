"""Tests for half-planes and perpendicular bisectors."""

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.halfplane import HalfPlane, bisector_halfplane
from repro.geometry.point import dist

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
pts = st.tuples(unit, unit)


class TestHalfPlane:
    def test_contains(self):
        hp = HalfPlane(1.0, 0.0, 0.5)  # x <= 0.5
        assert hp.contains((0.4, 0.9))
        assert hp.contains((0.5, 0.0))  # boundary
        assert not hp.contains((0.6, 0.0))

    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            HalfPlane(0.0, 0.0, 1.0)

    def test_distance_to_boundary(self):
        hp = HalfPlane(1.0, 0.0, 0.5)
        assert hp.distance_to_boundary((0.2, 0.0)) == pytest.approx(0.3)
        assert hp.distance_to_boundary((0.9, 0.0)) == pytest.approx(0.4)

    def test_distance_scale_invariant(self):
        a = HalfPlane(1.0, 0.0, 0.5)
        b = HalfPlane(10.0, 0.0, 5.0)
        assert a.distance_to_boundary((0.1, 0.3)) == pytest.approx(
            b.distance_to_boundary((0.1, 0.3))
        )


class TestBisector:
    def test_site_side(self):
        hp = bisector_halfplane((0.0, 0.0), (1.0, 0.0))
        assert hp.contains((0.0, 0.0))
        assert not hp.contains((1.0, 0.0))
        assert hp.contains((0.5, 0.7))  # on the boundary

    def test_coincident_rejected(self):
        with pytest.raises(GeometryError):
            bisector_halfplane((0.5, 0.5), (0.5, 0.5))

    @given(pts, pts, pts)
    def test_membership_equals_distance_order(self, site, other, probe):
        assume(dist(site, other) > 1e-6)
        hp = bisector_halfplane(site, other)
        closer_to_site = dist(probe, site) <= dist(probe, other) + 1e-9
        if hp.contains(probe):
            assert closer_to_site
        else:
            assert dist(probe, other) < dist(probe, site) + 1e-9

    @given(pts, pts)
    def test_site_always_contained(self, site, other):
        assume(dist(site, other) > 1e-6)
        assert bisector_halfplane(site, other).contains(site)
