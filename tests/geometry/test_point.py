"""Tests for point primitives and distances."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.point import as_point, dist, dist2, midpoint

coords = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)
points_2d = st.tuples(coords, coords)


class TestAsPoint:
    def test_converts_sequence(self):
        assert as_point([1, 2.5]) == (1.0, 2.5)

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            as_point([])

    def test_rejects_nan(self):
        with pytest.raises(GeometryError):
            as_point([0.0, float("nan")])

    def test_rejects_infinity(self):
        with pytest.raises(GeometryError):
            as_point([float("inf")])


class TestDist:
    def test_pythagorean_triple(self):
        assert dist((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert dist((1.5, 2.5), (1.5, 2.5)) == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            dist((0, 0), (0, 0, 0))

    def test_dist2_is_squared_dist(self):
        assert dist2((0, 0), (3, 4)) == pytest.approx(25.0)

    @given(points_2d, points_2d)
    def test_symmetry(self, a, b):
        assert dist(a, b) == pytest.approx(dist(b, a))

    @given(points_2d, points_2d, points_2d)
    def test_triangle_inequality(self, a, b, c):
        assert dist(a, c) <= dist(a, b) + dist(b, c) + 1e-9

    @given(points_2d, points_2d)
    def test_dist2_consistent(self, a, b):
        assert math.sqrt(dist2(a, b)) == pytest.approx(dist(a, b))


class TestMidpoint:
    def test_halfway(self):
        assert midpoint((0, 0), (2, 4)) == (1.0, 2.0)

    def test_dimension_mismatch(self):
        with pytest.raises(GeometryError):
            midpoint((0,), (0, 1))

    @given(points_2d, points_2d)
    def test_equidistant(self, a, b):
        m = midpoint(a, b)
        assert dist(a, m) == pytest.approx(dist(b, m), abs=1e-9)
