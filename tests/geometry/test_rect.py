"""Tests for axis-aligned rectangles (MBRs)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.point import dist
from repro.geometry.rect import Rect

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def rects(draw):
    x0, x1 = sorted((draw(unit), draw(unit)))
    y0, y1 = sorted((draw(unit), draw(unit)))
    return Rect((x0, y0), (x1, y1))


@st.composite
def unit_points(draw):
    return (draw(unit), draw(unit))


class TestConstruction:
    def test_basic(self):
        r = Rect((0.0, 0.0), (1.0, 2.0))
        assert r.dim == 2
        assert r.area() == pytest.approx(2.0)
        assert r.margin() == pytest.approx(3.0)
        assert r.center == (0.5, 1.0)

    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            Rect((1.0, 0.0), (0.0, 1.0))

    def test_dim_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            Rect((0.0,), (1.0, 1.0))

    def test_from_point_is_degenerate(self):
        r = Rect.from_point((0.3, 0.7))
        assert r.area() == 0.0
        assert r.contains_point((0.3, 0.7))

    def test_bounding_points(self):
        r = Rect.bounding([(0, 0), (2, 1), (1, 3)])
        assert r == Rect((0.0, 0.0), (2.0, 3.0))

    def test_bounding_empty_rejected(self):
        with pytest.raises(GeometryError):
            Rect.bounding([])

    def test_union_of_empty_rejected(self):
        with pytest.raises(GeometryError):
            Rect.union_of([])

    def test_4d_rect(self):
        r = Rect((0.0, 0.0, 0.0, 0.0), (1.0, 1.0, 1.0, 1.0))
        assert r.dim == 4
        assert r.area() == 1.0


class TestRelations:
    def test_contains_rect(self):
        outer = Rect((0.0, 0.0), (1.0, 1.0))
        inner = Rect((0.2, 0.2), (0.8, 0.8))
        assert outer.contains_rect(inner)
        assert not inner.contains_rect(outer)

    def test_intersects_boundary_touch(self):
        a = Rect((0.0, 0.0), (0.5, 0.5))
        b = Rect((0.5, 0.5), (1.0, 1.0))
        assert a.intersects(b)

    def test_disjoint(self):
        a = Rect((0.0, 0.0), (0.4, 0.4))
        b = Rect((0.6, 0.6), (1.0, 1.0))
        assert not a.intersects(b)
        assert a.intersection_area(b) == 0.0

    def test_intersection_area(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((0.5, 0.5), (1.5, 1.5))
        assert a.intersection_area(b) == pytest.approx(0.25)

    def test_enlargement(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((1.0, 0.0), (2.0, 1.0))
        assert a.enlargement(b) == pytest.approx(1.0)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects(), unit_points())
    def test_union_point_contains(self, r, p):
        assert r.union_point(p).contains_point(p)


class TestDistances:
    def test_mindist_inside_is_zero(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.mindist((0.5, 0.5)) == 0.0

    def test_mindist_outside(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.mindist((2.0, 1.0)) == pytest.approx(1.0)
        assert r.mindist((2.0, 2.0)) == pytest.approx(2**0.5)

    def test_maxdist_corner(self):
        r = Rect((0.0, 0.0), (1.0, 1.0))
        assert r.maxdist((0.0, 0.0)) == pytest.approx(2**0.5)

    def test_mindist_rect_disjoint(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((2.0, 0.0), (3.0, 1.0))
        assert a.mindist_rect(b) == pytest.approx(1.0)

    def test_mindist_rect_overlapping_is_zero(self):
        a = Rect((0.0, 0.0), (1.0, 1.0))
        b = Rect((0.5, 0.5), (2.0, 2.0))
        assert a.mindist_rect(b) == 0.0

    @given(rects(), unit_points())
    def test_mindist_le_maxdist(self, r, p):
        assert r.mindist(p) <= r.maxdist(p) + 1e-12

    @given(rects(), unit_points(), unit_points())
    def test_mindist_is_lower_bound(self, r, p, q):
        """MINDIST(p, r) lower-bounds the distance to any point in r."""
        if r.contains_point(q):
            assert r.mindist(p) <= dist(p, q) + 1e-9

    @given(rects(), rects(), unit_points())
    def test_mindist_monotone_under_containment(self, a, b, p):
        u = a.union(b)
        assert u.mindist(p) <= a.mindist(p) + 1e-12
