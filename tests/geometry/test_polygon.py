"""Tests for convex polygons and half-plane clipping."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.halfplane import HalfPlane, bisector_halfplane
from repro.geometry.point import dist
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect

UNIT = ConvexPolygon.from_rect(Rect((0.0, 0.0), (1.0, 1.0)))
unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
pts = st.tuples(unit, unit)


class TestBasics:
    def test_from_rect(self):
        assert len(UNIT.vertices) == 4
        assert UNIT.area() == pytest.approx(1.0)
        assert not UNIT.is_empty

    def test_from_rect_requires_2d(self):
        with pytest.raises(GeometryError):
            ConvexPolygon.from_rect(Rect((0.0,), (1.0,)))

    def test_empty(self):
        empty = ConvexPolygon()
        assert empty.is_empty
        assert empty.area() == 0.0
        assert not empty.contains((0.5, 0.5))
        assert empty.max_distance_from((0.0, 0.0)) == 0.0

    def test_contains(self):
        assert UNIT.contains((0.5, 0.5))
        assert UNIT.contains((0.0, 0.0))  # vertex
        assert UNIT.contains((0.5, 0.0))  # edge
        assert not UNIT.contains((1.5, 0.5))

    def test_bounding_rect(self):
        tri = ConvexPolygon(((0.0, 0.0), (1.0, 0.0), (0.0, 1.0)))
        assert tri.bounding_rect() == Rect((0.0, 0.0), (1.0, 1.0))
        with pytest.raises(GeometryError):
            ConvexPolygon().bounding_rect()

    def test_max_distance_from(self):
        assert UNIT.max_distance_from((0.0, 0.0)) == pytest.approx(2**0.5)
        assert UNIT.max_distance_from((0.5, 0.5)) == pytest.approx(0.5 * 2**0.5)


class TestClip:
    def test_half_cut(self):
        clipped = UNIT.clip(HalfPlane(1.0, 0.0, 0.5))  # x <= 0.5
        assert clipped.area() == pytest.approx(0.5)
        assert clipped.contains((0.25, 0.5))
        assert not clipped.contains((0.75, 0.5))

    def test_no_cut(self):
        clipped = UNIT.clip(HalfPlane(1.0, 0.0, 2.0))  # x <= 2
        assert clipped.area() == pytest.approx(1.0)

    def test_full_cut_empty(self):
        clipped = UNIT.clip(HalfPlane(1.0, 0.0, -1.0))  # x <= -1
        assert clipped.is_empty

    def test_corner_cut_makes_pentagon(self):
        clipped = UNIT.clip(HalfPlane(-1.0, -1.0, -0.5))  # x + y >= 0.5
        assert len(clipped.vertices) == 5
        assert clipped.area() == pytest.approx(1.0 - 0.125)

    def test_clip_empty_stays_empty(self):
        assert ConvexPolygon().clip(HalfPlane(1.0, 0.0, 0.5)).is_empty

    @given(pts, pts)
    @settings(max_examples=50)
    def test_clip_area_never_grows(self, site, other):
        assume(dist(site, other) > 1e-6)
        clipped = UNIT.clip(bisector_halfplane(site, other))
        assert clipped.area() <= UNIT.area() + 1e-9

    @given(pts, pts, pts)
    @settings(max_examples=50)
    def test_clip_membership(self, site, other, probe):
        assume(dist(site, other) > 1e-6)
        hp = bisector_halfplane(site, other)
        clipped = UNIT.clip(hp)
        if clipped.contains(probe):
            assert hp.value(probe) <= 1e-6


class TestIntersection:
    def test_overlapping_squares(self):
        a = ConvexPolygon.from_rect(Rect((0.0, 0.0), (0.6, 0.6)))
        b = ConvexPolygon.from_rect(Rect((0.4, 0.4), (1.0, 1.0)))
        inter = a.intersection(b)
        assert inter.area() == pytest.approx(0.04)

    def test_disjoint_is_empty(self):
        a = ConvexPolygon.from_rect(Rect((0.0, 0.0), (0.3, 0.3)))
        b = ConvexPolygon.from_rect(Rect((0.7, 0.7), (1.0, 1.0)))
        assert a.intersection(b).is_empty

    def test_contained(self):
        inner = ConvexPolygon.from_rect(Rect((0.3, 0.3), (0.6, 0.6)))
        inter = UNIT.intersection(inner)
        assert inter.area() == pytest.approx(inner.area())

    def test_with_empty(self):
        assert UNIT.intersection(ConvexPolygon()).is_empty
        assert ConvexPolygon().intersection(UNIT).is_empty

    @given(pts, pts, pts)
    @settings(max_examples=50)
    def test_intersection_membership(self, p0, p1, probe):
        assume(dist(p0, p1) > 1e-3)
        a = UNIT.clip(bisector_halfplane(p0, p1))
        b = UNIT.clip(bisector_halfplane(p1, p0))
        inter = a.intersection(b)
        if inter.contains(probe):
            # Points of the intersection are (within eps) in both parts.
            assert a.contains(probe) or b.contains(probe)

    def test_commutative_area(self):
        a = ConvexPolygon(((0.0, 0.0), (0.8, 0.1), (0.5, 0.9)))
        b = ConvexPolygon(((0.2, 0.0), (1.0, 0.4), (0.1, 0.8)))
        assert a.intersection(b).area() == pytest.approx(
            b.intersection(a).area(), abs=1e-9
        )
