"""Admission-control tests for :class:`repro.serve.service.QueryService`.

A fake executor drives the gates deterministically (queue depth and
queue-wait samples are inputs, not races); one integration test runs the
real executor to pin the end-to-end dispatch.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.core.executor import QueryExecutor
from repro.core.query import PreferenceQuery
from repro.core.results import QueryResult, QueryStats, ResultItem
from repro.errors import QueryError, ReproError
from repro.obs import metrics as _metrics
from repro.serve.quota import QuotaSpec
from repro.serve.service import QueryService, ServeConfig

QUERY = PreferenceQuery(3, 0.1, 0.5, (0b111, 0b101))
OTHER = PreferenceQuery(4, 0.1, 0.5, (0b111, 0b101))


class FakeExecutor:
    """Scripted executor: fixed depth, scripted (wait, latency) samples."""

    max_workers = 2

    def __init__(self, depth: int = 0, queue_wait_s: float = 0.0):
        self.depth = depth
        self.queue_wait_s = queue_wait_s
        self.calls = 0
        self.raises: Exception | None = None

    @property
    def queue_depth(self) -> int:
        return self.depth

    @property
    def running_count(self) -> int:
        return 0

    def execute_one(self, query, algorithm="stps", pulling="prioritized"):
        self.calls += 1
        if self.raises is not None:
            raise self.raises
        result = QueryResult(
            [ResultItem(1, 0.5, 0.1, 0.2)], QueryStats()
        )
        return result, self.queue_wait_s, 0.001


def make_service(executor=None, **config_kwargs) -> QueryService:
    return QueryService(
        executor or FakeExecutor(), ServeConfig(**config_kwargs)
    )


class TestValidation:
    def test_unknown_algorithm_is_400(self):
        decision = make_service().handle("t", QUERY, algorithm="nope")
        assert decision.status == 400
        assert "algorithm" in decision.reason

    def test_unknown_pulling_is_400(self):
        decision = make_service().handle("t", QUERY, pulling="nope")
        assert decision.status == 400
        assert "pulling" in decision.reason

    def test_config_validation(self):
        with pytest.raises(ReproError):
            ServeConfig(max_queue_depth=0)
        with pytest.raises(ReproError):
            ServeConfig(latency_slo_s=0)
        with pytest.raises(ReproError):
            ServeConfig(queue_wait_window=0)


class TestQuotaGate:
    def test_over_quota_tenant_gets_429_with_retry_after(self):
        service = make_service(default_quota=QuotaSpec(rate=1, burst=1))
        assert service.handle("t", QUERY).status == 200
        decision = service.handle("t", QUERY)
        assert decision.status == 429
        assert decision.retry_after_s > 0
        assert service.rejected_quota == 1

    def test_quota_precedes_cache(self):
        # A hot cached key must not serve an exhausted tenant: the quota
        # gate comes first by design.
        service = make_service(default_quota=QuotaSpec(rate=1, burst=1))
        assert service.handle("drained", QUERY).status == 200  # fills cache
        assert service.handle("other", QUERY).cached  # cache is hot
        assert service.handle("drained", QUERY).status == 429

    def test_quota_overrides_clamp_one_tenant(self):
        service = QueryService(
            FakeExecutor(),
            ServeConfig(
                quota_overrides={"abuser": QuotaSpec(rate=1, burst=1)}
            ),
        )
        assert service.handle("abuser", QUERY).status == 200
        assert service.handle("abuser", QUERY).status == 429
        assert service.handle("anyone-else", QUERY).status == 200


class TestCacheGate:
    def test_second_request_is_cached(self):
        executor = FakeExecutor()
        service = QueryService(executor, ServeConfig())
        first = service.handle("a", QUERY)
        second = service.handle("b", QUERY)
        assert not first.cached and second.cached
        assert executor.calls == 1
        assert second.result.items[0].oid == first.result.items[0].oid

    def test_cache_disabled_executes_every_time(self):
        executor = FakeExecutor()
        service = QueryService(
            executor, ServeConfig(cache_enabled=False)
        )
        service.handle("a", QUERY)
        service.handle("b", QUERY)
        assert executor.calls == 2

    def test_hits_bypass_backpressure(self):
        executor = FakeExecutor(depth=0)
        service = QueryService(executor, ServeConfig(max_queue_depth=1))
        assert service.handle("a", QUERY).status == 200  # fills cache
        executor.depth = 50  # now heavily backpressured
        hit = service.handle("b", QUERY)
        assert hit.status == 200 and hit.cached
        miss = service.handle("c", OTHER)
        assert miss.status == 429  # uncached work is shed


class TestBackpressureGate:
    def test_depth_bound_rejects_with_retry_after(self):
        service = make_service(FakeExecutor(depth=8), max_queue_depth=8)
        decision = service.handle("t", QUERY)
        assert decision.status == 429
        assert decision.retry_after_s > 0
        assert "queue depth" in decision.reason
        assert service.rejected_backpressure == 1

    def test_queue_wait_p95_over_slo_rejects(self):
        # Executed queries report a queue wait far over the 100ms SLO
        # target; once the sliding window holds the breach, admission
        # stops even though the queue is shallow.
        executor = FakeExecutor(depth=0, queue_wait_s=0.5)
        service = QueryService(
            executor, ServeConfig(latency_slo_s=0.1, cache_enabled=False)
        )
        assert service.handle("t", QUERY).status == 200  # window empty
        decision = service.handle("t", QUERY)
        assert decision.status == 429
        assert "p95" in decision.reason
        assert executor.calls == 1

    def test_stale_overload_expires_past_horizon(self):
        # A transient overload must not poison the gate forever: shed
        # misses never execute (so they never refresh the window) and
        # cache hits bypass the gate entirely, so only the time horizon
        # can cure a stale breach.
        executor = FakeExecutor(depth=0, queue_wait_s=0.5)
        service = QueryService(
            executor,
            ServeConfig(
                latency_slo_s=0.1, cache_enabled=False,
                queue_wait_horizon_s=0.05,
            ),
        )
        assert service.handle("t", QUERY).status == 200
        assert service.handle("t", QUERY).status == 429  # window poisoned
        time.sleep(0.06)  # breach ages past the horizon
        executor.queue_wait_s = 0.001
        assert service.handle("t", QUERY).status == 200

    def test_rejects_non_positive_horizon(self):
        with pytest.raises(ReproError, match="queue_wait_horizon_s"):
            ServeConfig(queue_wait_horizon_s=0.0)

    def test_healthy_waits_admit(self):
        executor = FakeExecutor(depth=0, queue_wait_s=0.001)
        service = QueryService(
            executor, ServeConfig(latency_slo_s=0.1, cache_enabled=False)
        )
        for _ in range(10):
            assert service.handle("t", QUERY).status == 200
        assert executor.calls == 10


class TestErrors:
    def test_engine_repro_error_maps_to_400(self):
        executor = FakeExecutor()
        executor.raises = QueryError("bad query for this engine")
        decision = make_service(executor).handle("t", QUERY)
        assert decision.status == 400
        assert "bad query" in decision.reason

    def test_unexpected_error_maps_to_500(self):
        executor = FakeExecutor()
        executor.raises = RuntimeError("boom")
        service = make_service(executor)
        decision = service.handle("t", QUERY)
        assert decision.status == 500
        assert "boom" in decision.reason
        assert service.errors == 1


class TestMetricsAndDescribe:
    def test_request_metrics_by_tenant_and_outcome(self):
        with _metrics.scoped_registry() as reg:
            service = make_service(
                default_quota=QuotaSpec(rate=1, burst=1)
            )
            service.handle("t", QUERY)
            service.handle("t", QUERY)
            requests = {
                lv: c.value
                for lv, c in reg.get(
                    "repro_serve_requests_total"
                ).series()
            }
            rejections = {
                lv[0]: c.value
                for lv, c in reg.get(
                    "repro_serve_rejections_total"
                ).series()
            }
            statuses = {
                lv[0]: h.count
                for lv, h in reg.get(
                    "repro_serve_request_seconds"
                ).series()
            }
        assert requests == {("t", "ok"): 1, ("t", "quota"): 1}
        assert rejections == {"quota": 1}
        assert statuses == {"200": 1, "429": 1}

    def test_describe_is_strict_json(self):
        service = make_service()
        service.handle("t", QUERY)
        doc = service.describe()
        json.dumps(doc, allow_nan=False)
        assert doc["served"] == 1
        assert doc["executor"]["max_queue_depth"] == 64
        assert doc["cache"]["entries"] == 1


class TestSLOConfig:
    def test_from_slo_file_prefers_serve_latency_slo(self, tmp_path):
        doc = {"slos": [
            {"name": "q", "kind": "latency", "objective": 0.95,
             "metric": "repro_query_seconds", "threshold_s": 0.2},
            {"name": "s", "kind": "latency", "objective": 0.95,
             "metric": "repro_serve_request_seconds", "threshold_s": 0.05},
        ]}
        path = tmp_path / "SLO.json"
        path.write_text(json.dumps(doc))
        assert ServeConfig.from_slo_file(path).latency_slo_s == 0.05

    def test_from_slo_file_falls_back_to_any_latency_slo(self, tmp_path):
        doc = {"slos": [
            {"name": "q", "kind": "latency", "objective": 0.95,
             "metric": "repro_query_seconds", "threshold_s": 0.2},
        ]}
        path = tmp_path / "SLO.json"
        path.write_text(json.dumps(doc))
        assert ServeConfig.from_slo_file(path).latency_slo_s == 0.2

    def test_committed_slo_document_loads(self):
        config = ServeConfig.from_slo_file("SLO.json")
        assert config.latency_slo_s > 0


class TestRealExecutorIntegration:
    def test_served_answer_matches_direct_query(self, srt_processor):
        query = PreferenceQuery(5, 0.25, 0.5, (0xFF, 0xFF))
        expected = srt_processor.query(query)
        with QueryExecutor(srt_processor, max_workers=2) as executor:
            service = QueryService(executor, ServeConfig())
            decision = service.handle("t", query)
        assert decision.status == 200
        assert decision.result.scores == expected.scores
        assert decision.result.oids == expected.oids
