"""Result-cache tests: LRU/epoch mechanics plus the live-coherence
differential — a mutation that changes a cached query's answer must
never be served stale (verified against brute force at 1e-9).
"""

from __future__ import annotations

import pytest

from repro.core.bruteforce import brute_force
from repro.core.executor import QueryExecutor
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult
from repro.errors import ReproError
from repro.live import LiveDataset
from repro.model.objects import FeatureObject
from repro.obs import metrics as _metrics
from repro.serve.cache import ResultCache, query_signature
from repro.serve.service import QueryService, ServeConfig

from tests.live.conftest import live_world

QUERY = PreferenceQuery(3, 0.35, 0.5, (0xFFFF, 0xFFFF), Variant.RANGE)


def _result(marker: float) -> QueryResult:
    result = QueryResult()
    result.stats.wall_s = marker  # distinguishable payloads
    return result


class TestSignature:
    def test_tenant_never_enters_the_key(self):
        # The signature is a pure function of (query, algorithm, pulling):
        # two tenants sharing a query share a cache entry by construction.
        a = query_signature(QUERY, "stps", "prioritized")
        b = query_signature(QUERY, "stps", "prioritized")
        assert a == b

    def test_answer_changing_fields_split_the_key(self):
        base = query_signature(QUERY, "stps", "prioritized")
        assert query_signature(QUERY, "stds", "prioritized") != base
        assert query_signature(QUERY, "stps", "round_robin") != base
        for changed in (
            PreferenceQuery(4, 0.35, 0.5, (0xFFFF, 0xFFFF)),
            PreferenceQuery(3, 0.36, 0.5, (0xFFFF, 0xFFFF)),
            PreferenceQuery(3, 0.35, 0.6, (0xFFFF, 0xFFFF)),
            PreferenceQuery(3, 0.35, 0.5, (0xFFFF, 0xFFF0)),
            PreferenceQuery(
                3, 0.35, 0.5, (0xFFFF, 0xFFFF), Variant.INFLUENCE
            ),
        ):
            assert query_signature(changed, "stps", "prioritized") != base


class TestLRU:
    def test_miss_then_hit(self):
        cache = ResultCache()
        key = query_signature(QUERY, "stps", "prioritized")
        assert cache.get(key) is None
        cache.put(key, _result(1.0))
        assert cache.get(key).stats.wall_s == 1.0
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put(("a",), _result(1))
        cache.put(("b",), _result(2))
        cache.get(("a",))  # refresh a
        cache.put(("c",), _result(3))  # evicts b
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None
        assert cache.evictions == 1

    def test_hit_rate(self):
        cache = ResultCache()
        cache.put(("k",), _result(1))
        cache.get(("k",))
        cache.get(("k",))
        cache.get(("other",))
        assert cache.hit_rate == pytest.approx(2 / 3)

    def test_validation(self):
        with pytest.raises(ReproError, match="max_entries"):
            ResultCache(max_entries=0)

    def test_clear(self):
        cache = ResultCache()
        cache.put(("k",), _result(1))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestEpochs:
    def test_bump_invalidates_everything_lazily(self):
        cache = ResultCache()
        cache.put(("a",), _result(1))
        cache.put(("b",), _result(2))
        cache.bump()
        assert cache.get(("a",)) is None
        assert cache.get(("b",)) is None
        assert cache.stale == 2
        assert len(cache) == 0  # stale entries dropped on lookup

    def test_refill_after_bump_serves_again(self):
        cache = ResultCache()
        cache.put(("a",), _result(1))
        cache.bump()
        cache.put(("a",), _result(2))
        assert cache.get(("a",)).stats.wall_s == 2

    def test_metrics_count_events(self):
        with _metrics.scoped_registry() as reg:
            cache = ResultCache()
            cache.put(("a",), _result(1))
            cache.get(("a",))
            cache.bump()
            cache.get(("a",))
            family = reg.get("repro_serve_cache_total")
            counts = {lv[0]: c.value for lv, c in family.series()}
        assert counts == {"fill": 1, "hit": 1, "stale": 1}


class TestLiveCoherence:
    @pytest.fixture()
    def live(self) -> LiveDataset:
        objects, feature_sets = live_world(
            n_objects=40, n_features=30, seed=9
        )
        return LiveDataset.build(
            objects, feature_sets, page_size=512, buffer_pages=32
        )

    def test_mutation_bumps_attached_cache(self, live):
        cache = ResultCache()
        cache.attach_live(live)
        cache.put(("k",), _result(1))
        live.insert_feature(
            0, FeatureObject(999_001, 0.5, 0.5, 0.9, frozenset({1}))
        )
        assert cache.get(("k",)) is None  # stale, not served
        cache.detach()
        live.insert_feature(
            0, FeatureObject(999_002, 0.6, 0.6, 0.9, frozenset({2}))
        )
        cache.put(("k2",), _result(2))
        assert cache.get(("k2",)) is not None  # detached: no more bumps

    def test_served_answers_track_mutations_vs_brute_force(self, live):
        """The coherence differential the satellite demands.

        Serve the same query through a cache-enabled QueryService,
        mutate the live dataset so the answer changes, and require every
        served answer to match brute force over the *current* snapshots
        to 1e-9 — a stale cache entry would fail the comparison.
        """
        query = PreferenceQuery(5, 0.3, 0.5, (0xFFFF, 0xFFFF))

        def expected_scores() -> list[float]:
            return brute_force(
                live.objects_snapshot(), live.feature_snapshots(), query
            ).scores

        with QueryExecutor(live.processor, max_workers=2) as executor:
            service = QueryService(executor, ServeConfig(), live=live)
            for round_no in range(4):
                before = expected_scores()
                first = service.handle("tenant-a", query)
                again = service.handle("tenant-b", query)
                assert first.status == again.status == 200
                assert again.cached  # second lookup hits
                for decision in (first, again):
                    got = decision.result.scores
                    assert got == pytest.approx(before, abs=1e-9)
                # Mutate so the next round's answer differs: drop the
                # current winner and plant a high-scoring feature at a
                # fresh location.
                winner = first.result.items[0]
                live.delete_object(winner.oid)
                live.insert_feature(
                    0,
                    FeatureObject(
                        990_000 + round_no,
                        winner.x,
                        winner.y,
                        0.99,
                        frozenset({round_no % 8}),
                    ),
                )
                assert expected_scores() != pytest.approx(
                    before, abs=1e-9
                )
            assert service.cache.stale >= 3  # each round invalidated
            service.close()
