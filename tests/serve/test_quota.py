"""Unit tests for the per-tenant token buckets (:mod:`repro.serve.quota`).

Time is injected, so refill is driven deterministically by a fake clock.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.serve.quota import QuotaSpec, TenantQuotas


class Clock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture()
def clock() -> Clock:
    return Clock()


class TestQuotaSpec:
    def test_default_is_unlimited(self):
        spec = QuotaSpec()
        assert spec.unlimited

    def test_validation(self):
        with pytest.raises(ReproError, match="rate"):
            QuotaSpec(rate=0)
        with pytest.raises(ReproError, match="rate"):
            QuotaSpec(rate=-1)
        with pytest.raises(ReproError, match="burst"):
            QuotaSpec(rate=1, burst=0.5)


class TestTokenBucket:
    def test_unlimited_always_admits(self, clock):
        quotas = TenantQuotas(clock=clock)
        assert all(quotas.try_acquire("t") == 0.0 for _ in range(1000))

    def test_burst_then_reject_with_retry_after(self, clock):
        quotas = TenantQuotas(QuotaSpec(rate=10, burst=3), clock=clock)
        assert [quotas.try_acquire("t") for _ in range(3)] == [0.0] * 3
        retry = quotas.try_acquire("t")
        # Empty bucket at 10 tokens/s: next token in 1/10 s.
        assert retry == pytest.approx(0.1)

    def test_refill_restores_admission(self, clock):
        quotas = TenantQuotas(QuotaSpec(rate=10, burst=1), clock=clock)
        assert quotas.try_acquire("t") == 0.0
        assert quotas.try_acquire("t") > 0.0
        clock.advance(0.1)  # exactly one token
        assert quotas.try_acquire("t") == 0.0
        assert quotas.try_acquire("t") > 0.0

    def test_refill_caps_at_burst(self, clock):
        quotas = TenantQuotas(QuotaSpec(rate=100, burst=2), clock=clock)
        clock.advance(3600.0)  # an hour of refill still only buys `burst`
        admitted = sum(
            1 for _ in range(10) if quotas.try_acquire("t") == 0.0
        )
        assert admitted == 2

    def test_tenants_are_independent(self, clock):
        quotas = TenantQuotas(QuotaSpec(rate=1, burst=1), clock=clock)
        assert quotas.try_acquire("a") == 0.0
        assert quotas.try_acquire("a") > 0.0  # a is drained...
        assert quotas.try_acquire("b") == 0.0  # ...b is untouched


class TestOverrides:
    def test_override_clamps_one_tenant(self, clock):
        quotas = TenantQuotas(
            overrides={"abuser": QuotaSpec(rate=1, burst=1)}, clock=clock
        )
        assert quotas.try_acquire("abuser") == 0.0
        assert quotas.try_acquire("abuser") > 0.0
        # Default tenants stay unlimited.
        assert all(quotas.try_acquire("ok") == 0.0 for _ in range(100))

    def test_set_override_replaces_live_bucket(self, clock):
        quotas = TenantQuotas(QuotaSpec(rate=1000, burst=1000), clock=clock)
        assert quotas.try_acquire("t") == 0.0
        quotas.set_override("t", QuotaSpec(rate=1, burst=1))
        assert quotas.try_acquire("t") == 0.0  # fresh clamped bucket
        assert quotas.try_acquire("t") > 0.0


class TestBoundedTable:
    def test_lru_eviction_bounds_the_table(self, clock):
        quotas = TenantQuotas(
            QuotaSpec(rate=1, burst=5), max_tenants=3, clock=clock
        )
        for tenant in ("a", "b", "c", "d"):
            quotas.try_acquire(tenant)
        assert len(quotas._buckets) == 3
        assert "a" not in quotas._buckets  # least recently seen

    def test_touch_refreshes_recency(self, clock):
        quotas = TenantQuotas(
            QuotaSpec(rate=1, burst=5), max_tenants=2, clock=clock
        )
        quotas.try_acquire("a")
        quotas.try_acquire("b")
        quotas.try_acquire("a")  # refresh a
        quotas.try_acquire("c")  # evicts b, not a
        assert set(quotas._buckets) == {"a", "c"}

    def test_override_buckets_are_pinned(self, clock):
        quotas = TenantQuotas(
            QuotaSpec(rate=1, burst=5),
            overrides={"vip": QuotaSpec(rate=100, burst=100)},
            max_tenants=2,
            clock=clock,
        )
        quotas.try_acquire("vip")
        quotas.try_acquire("a")
        quotas.try_acquire("b")  # table over bound: a default bucket goes
        assert "vip" in quotas._buckets

    def test_evicted_tenant_resurrects_full(self, clock):
        quotas = TenantQuotas(
            QuotaSpec(rate=1, burst=1), max_tenants=1, clock=clock
        )
        assert quotas.try_acquire("a") == 0.0
        assert quotas.try_acquire("a") > 0.0  # drained
        quotas.try_acquire("b")  # evicts a
        assert quotas.try_acquire("a") == 0.0  # fresh bucket, full burst

    def test_max_tenants_validated(self):
        with pytest.raises(ReproError, match="max_tenants"):
            TenantQuotas(max_tenants=0)


class TestDescribe:
    def test_strict_json_with_unlimited_default(self, clock):
        quotas = TenantQuotas(clock=clock)
        quotas.try_acquire("t")
        doc = quotas.describe()
        json.dumps(doc, allow_nan=False)  # inf must have become None
        assert doc["default"]["rate"] is None
        assert doc["tenants"]["t"]["admitted"] == 1

    def test_counts_admissions_and_rejections(self, clock):
        quotas = TenantQuotas(QuotaSpec(rate=1, burst=2), clock=clock)
        for _ in range(5):
            quotas.try_acquire("t")
        doc = quotas.describe()
        assert doc["tenants"]["t"]["admitted"] == 2
        assert doc["tenants"]["t"]["rejected"] == 3
        assert doc["tenants"]["t"]["rate"] == 1
