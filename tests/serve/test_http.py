"""End-to-end tests of the HTTP front end (:mod:`repro.serve.http`).

Real sockets against an ephemeral-port :class:`ServeServer`; the
observability routes inherited from the metrics handler are exercised on
the same listener, as deployed.
"""

from __future__ import annotations

import json
import socket
import time
import urllib.error
import urllib.request

import pytest

from repro.core.executor import QueryExecutor
from repro.core.query import PreferenceQuery
from repro.serve.http import ServeServer, parse_request
from repro.serve.quota import QuotaSpec
from repro.serve.service import QueryService, ServeConfig

QUERY = PreferenceQuery(5, 0.25, 0.5, (0xFF, 0xFF))


def post(url: str, payload: dict):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        return resp.status, json.load(resp)


def body_for(query: PreferenceQuery, tenant: str = "t", **extra) -> dict:
    return {
        "tenant": tenant, "k": query.k, "radius": query.radius,
        "lam": query.lam, "masks": list(query.keyword_masks), **extra,
    }


@pytest.fixture(scope="module")
def served(srt_processor):
    with QueryExecutor(srt_processor, max_workers=2) as executor:
        service = QueryService(
            executor,
            ServeConfig(
                quota_overrides={"throttled": QuotaSpec(rate=1, burst=1)}
            ),
        )
        with ServeServer(service, port=0) as server:
            yield service, f"http://127.0.0.1:{server.port}"


class TestParseRequest:
    def test_round_trip(self):
        tenant, query, algorithm, pulling = parse_request(
            body_for(QUERY, tenant="acme", algorithm="stds",
                     pulling="round_robin", variant="range")
        )
        assert tenant == "acme"
        assert query == QUERY
        assert (algorithm, pulling) == ("stds", "round_robin")

    def test_masks_accept_comma_separated_string(self):
        _, query, _, _ = parse_request(
            {"k": "5", "radius": "0.25", "lam": "0.5", "masks": "255,255"}
        )
        assert query == QUERY

    @pytest.mark.parametrize("broken", [
        {},                                                  # all missing
        {"k": 5, "radius": 0.25, "lam": 0.5},                # no masks
        {"k": 5, "radius": 0.25, "lam": 0.5, "masks": []},
        {"k": 5, "radius": 0.25, "lam": 0.5, "masks": ["x"]},
        {"k": "??", "radius": 0.25, "lam": 0.5, "masks": [1]},
        {"k": 5, "radius": 0.25, "lam": 0.5, "masks": [1],
         "variant": "bogus"},
    ])
    def test_malformed_raises(self, broken):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            parse_request(broken)


class TestQueryEndpoint:
    def test_post_then_cached_get(self, served, srt_processor):
        service, base = served
        status, doc = post(base + "/query", body_for(QUERY))
        assert status == 200 and not doc["cached"]
        expected = srt_processor.query(QUERY)
        assert [item["oid"] for item in doc["items"]] == expected.oids
        query_string = (
            f"tenant=t2&k={QUERY.k}&radius={QUERY.radius}&lam={QUERY.lam}"
            f"&masks=" + ",".join(map(str, QUERY.keyword_masks))
        )
        with urllib.request.urlopen(
            base + "/query?" + query_string
        ) as resp:
            doc = json.load(resp)
        assert doc["cached"]  # same canonical signature, other tenant

    def test_bad_request_is_400_with_reason(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/query?k=5")
        assert excinfo.value.code == 400
        assert "missing" in json.load(excinfo.value)["error"]

    def test_quota_429_carries_retry_after(self, served):
        _, base = served
        payload = body_for(QUERY, tenant="throttled")
        first, _ = post(base + "/query", payload)
        assert first == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(base + "/query", payload)
        assert excinfo.value.code == 429
        assert int(excinfo.value.headers["Retry-After"]) >= 1
        assert json.load(excinfo.value)["retry_after_s"] > 0

    def test_unknown_post_path_is_404(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(base + "/nope", {})
        assert excinfo.value.code == 404


class TestMountedObservability:
    def test_stats_serve(self, served):
        service, base = served
        with urllib.request.urlopen(base + "/stats/serve") as resp:
            doc = json.load(resp)
        assert doc["served"] == service.served
        assert "cache" in doc and "quotas" in doc

    def test_metrics_scrape_includes_serve_families(self, served):
        _, base = served
        with urllib.request.urlopen(base + "/metrics") as resp:
            text = resp.read().decode()
        assert "repro_serve_requests_total" in text
        assert "repro_serve_cache_total" in text

    def test_healthz(self, served):
        _, base = served
        with urllib.request.urlopen(base + "/healthz") as resp:
            assert resp.status == 200


class TestLifecycle:
    def test_close_is_prompt_despite_half_open_client(self, srt_processor):
        with QueryExecutor(srt_processor, max_workers=1) as executor:
            service = QueryService(executor, ServeConfig())
            server = ServeServer(service, port=0).start()
            # Half-open client: connects, never sends a request line.
            stuck = socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            )
            try:
                time.sleep(0.05)  # let the server accept it
                t0 = time.perf_counter()
                server.close()
                assert time.perf_counter() - t0 < 2.0
            finally:
                stuck.close()

    def test_close_idempotent(self, srt_processor):
        with QueryExecutor(srt_processor, max_workers=1) as executor:
            server = ServeServer(
                QueryService(executor, ServeConfig()), port=0
            ).start()
            server.close()
            server.close()
