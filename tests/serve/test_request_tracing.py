"""End-to-end request tracing through the serving path.

The acceptance test for the tracing tentpole: one client-supplied W3C
``traceparent`` id must be observable in the HTTP response header, the
tail-sampled trace store's span tree, the flight recorder, a histogram
exemplar, and a structured log line — all joined on the same id.  Plus
the per-tenant observability pieces that ride along: label-cardinality
capping, serve gauges, resource-sampler serve gauges, and the
``/traces.json`` endpoint.
"""

from __future__ import annotations

import io
import json
import logging
import urllib.error
import urllib.request

import pytest

from repro.core.executor import QueryExecutor
from repro.core.query import PreferenceQuery
from repro.core.results import QueryResult, QueryStats, ResultItem
from repro.obs import flight as _flight
from repro.obs import metrics as _metrics
from repro.obs import requests as _requests
from repro.obs import resources as _resources
from repro.obs import slog as _slog
from repro.serve.http import ServeServer
from repro.serve.quota import QuotaSpec
from repro.serve.service import (
    OVERFLOW_TENANT,
    QueryService,
    ServeConfig,
)

#: A client-donated trace id (32 lowercase hex, as the wire carries it).
CLIENT_TRACE_ID = "00000000deadbeef1234cafe5678feed"
CLIENT_TRACEPARENT = f"00-{CLIENT_TRACE_ID}-00f067aa0ba902b7-01"


def post(url: str, payload: dict, headers: dict | None = None):
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(req) as resp:
        return resp.status, dict(resp.headers), json.load(resp)


def body_for(query: PreferenceQuery, tenant: str = "t", **extra) -> dict:
    return {
        "tenant": tenant, "k": query.k, "radius": query.radius,
        "lam": query.lam, "masks": list(query.keyword_masks), **extra,
    }


@pytest.fixture(scope="module")
def served(srt_processor):
    with QueryExecutor(srt_processor, max_workers=2) as executor:
        service = QueryService(
            executor,
            ServeConfig(
                quota_overrides={"throttled": QuotaSpec(rate=1, burst=1)}
            ),
        )
        with ServeServer(service, port=0) as server:
            yield service, f"http://127.0.0.1:{server.port}"


@pytest.fixture
def observability():
    """The full tracing stack, torn back down afterwards.

    ``slow_threshold_s=0.0`` makes every completed request "interesting"
    so tail sampling keeps all of them; the flight threshold 0.0 admits
    every engine query.  Yields the stream the JSON log handler writes.
    """
    _requests.configure(
        enabled_=True, max_bytes=_requests.DEFAULT_MAX_BYTES,
        slow_threshold_s=0.0, uniform_every=_requests.DEFAULT_UNIFORM_EVERY,
    )
    _requests.clear()
    _flight.configure(enabled_=True, latency_threshold_s=0.0)
    _flight.clear()
    previous_exemplars = _metrics.set_exemplars(True)
    stream = io.StringIO()
    _slog.configure(level=logging.INFO, stream=stream)
    yield stream
    _slog.teardown()
    _metrics.set_exemplars(previous_exemplars)
    _flight.configure(enabled_=False, latency_threshold_s=0.0)
    _flight.clear()
    _requests.configure(
        enabled_=False,
        slow_threshold_s=_requests.DEFAULT_SLOW_THRESHOLD_S,
    )
    _requests.clear()


class TestOneTraceIdEverywhere:
    def test_client_trace_id_joins_every_signal(
        self, served, observability
    ):
        _, base = served
        query = PreferenceQuery(3, 0.21, 0.5, (0xFF, 0xFF))
        status, headers, doc = post(
            base + "/query", body_for(query, tenant="acme"),
            headers={"traceparent": CLIENT_TRACEPARENT},
        )
        assert status == 200

        # 1. The response propagates the client's trace id in W3C form.
        parsed = _requests.parse_traceparent(headers["traceparent"])
        assert parsed is not None and parsed[0] == CLIENT_TRACE_ID
        assert doc["trace_id"] == CLIENT_TRACE_ID
        assert doc["stats"]["trace_id"] == CLIENT_TRACE_ID

        # 2. The trace store holds the request with its full span tree:
        # the admission waterfall plus the executor hop.
        trace = _requests.get(CLIENT_TRACE_ID)
        assert trace is not None
        assert trace.tenant == "acme"
        assert trace.outcome == "ok"
        names = {s["name"] for s in trace.spans}
        assert {
            "serve.request", "serve.quota", "serve.cache",
            "serve.backpressure", "serve.execute", "executor.query",
        } <= names

        # 3. The flight recorder admitted the engine query under the id.
        flight_ids = {r.trace_id for r in _flight.records()}
        assert CLIENT_TRACE_ID in flight_ids

        # 4. A latency-histogram exemplar resolves to the same request.
        exemplar_ids = {
            trace_id
            for _, child in _metrics.registry().get(
                "repro_serve_request_seconds"
            ).series()
            for _, _, trace_id, _ in child.exemplars()
        }
        assert CLIENT_TRACE_ID in exemplar_ids

        # 5. The structured request log carries the id too.
        logged = [
            json.loads(line)
            for line in observability.getvalue().splitlines()
        ]
        assert any(
            entry["trace_id"] == CLIENT_TRACE_ID
            and entry["logger"] == "repro.serve.service"
            for entry in logged
        ), logged

    def test_minted_id_when_client_sends_none(self, served, observability):
        _, base = served
        query = PreferenceQuery(4, 0.22, 0.5, (0xFF, 0xFF))
        _, headers, doc = post(base + "/query", body_for(query))
        parsed = _requests.parse_traceparent(headers["traceparent"])
        assert parsed is not None
        assert _requests.w3c_trace_id(doc["trace_id"]) == parsed[0]

    def test_malformed_traceparent_falls_back_to_minted_id(
        self, served, observability
    ):
        _, base = served
        query = PreferenceQuery(5, 0.23, 0.5, (0xFF, 0xFF))
        _, headers, doc = post(
            base + "/query", body_for(query),
            headers={"traceparent": "00-XYZ-nope-01"},
        )
        parsed = _requests.parse_traceparent(headers["traceparent"])
        assert parsed is not None
        assert parsed[0] != "xyz"
        assert doc["trace_id"]  # a fresh service-minted id


class TestRejectionTracing:
    def test_429_is_traced_and_flight_recorded(
        self, served, observability
    ):
        _, base = served
        query = PreferenceQuery(6, 0.24, 0.5, (0xFF, 0xFF))
        payload = body_for(query, tenant="throttled")
        first, _, _ = post(base + "/query", payload)
        assert first == 200
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post(base + "/query", payload)
        assert excinfo.value.code == 429
        doc = json.load(excinfo.value)
        trace_id = doc["trace_id"]
        assert _requests.parse_traceparent(
            excinfo.value.headers["traceparent"]
        )[0] == _requests.w3c_trace_id(trace_id)

        # Tail sampling classifies shed requests as always-keep.
        trace = _requests.get(trace_id)
        assert trace is not None
        assert trace.keep_reason == "shed"
        assert trace.outcome == "quota"
        names = {s["name"] for s in trace.spans}
        assert "serve.quota" in names
        assert "serve.execute" not in names  # rejected before execution

        # The flight record names the tenant and the gate that shed it.
        rejection = next(
            r for r in _flight.records() if r.trace_id == trace_id
        )
        assert rejection.tenant == "throttled"
        assert rejection.decision == "quota"
        assert rejection.error is None


class TestTracesEndpoint:
    def test_filters_by_tenant_id_and_latency(self, served, observability):
        _, base = served
        fast = PreferenceQuery(7, 0.25, 0.5, (0xFF, 0xFF))
        status, _, doc = post(
            base + "/query", body_for(fast, tenant="filter-me")
        )
        assert status == 200
        trace_id = doc["trace_id"]

        def fetch(params: str) -> dict:
            with urllib.request.urlopen(
                base + "/traces.json" + params
            ) as resp:
                return json.load(resp)

        by_tenant = fetch("?tenant=filter-me")
        assert [t["trace_id"] for t in by_tenant["traces"]] == [trace_id]
        by_id = fetch(f"?trace_id={trace_id}")
        assert [t["trace_id"] for t in by_id["traces"]] == [trace_id]
        assert by_id["traces"][0]["spans"]
        assert fetch("?tenant=filter-me&min_ms=60000")["traces"] == []
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fetch("?min_ms=banana")
        assert excinfo.value.code == 400


class _StubExecutor:
    """Minimal executor double for offline admission tests."""

    max_workers = 1
    queue_depth = 0
    running_count = 0

    def execute_one(self, query, algorithm="stps", pulling="prioritized"):
        result = QueryResult([ResultItem(1, 0.5, 0.1, 0.2)], QueryStats())
        return result, 0.0, 0.001


QUERY = PreferenceQuery(3, 0.1, 0.5, (0b111, 0b101))


class TestTenantCardinality:
    def test_overflow_tenants_fold_into_shared_label(self):
        with _metrics.scoped_registry() as reg:
            service = QueryService(
                _StubExecutor(),
                ServeConfig(tenant_label_limit=2, cache_enabled=False),
            )
            for tenant in ("a", "b", "c", "d", "a"):
                assert service.handle(tenant, QUERY).status == 200
            series = {
                lv: c.value
                for lv, c in reg.get(
                    "repro_serve_requests_total"
                ).series()
            }
        assert series == {
            ("a", "ok"): 2.0, ("b", "ok"): 1.0,
            (OVERFLOW_TENANT, "ok"): 2.0,
        }
        assert service.describe()["tenant_labels"] == {
            "limit": 2, "distinct": 2,
        }

    def test_histogram_shares_the_cap(self):
        with _metrics.scoped_registry() as reg:
            service = QueryService(
                _StubExecutor(),
                ServeConfig(tenant_label_limit=1, cache_enabled=False),
            )
            for tenant in ("one", "two", "three"):
                service.handle(tenant, QUERY)
            labels = {
                lv[0]
                for lv, _ in reg.get(
                    "repro_serve_tenant_seconds"
                ).series()
            }
        assert labels == {"one", OVERFLOW_TENANT}


class TestServeGauges:
    def test_registry_gauges_track_service_state(self):
        with _metrics.scoped_registry() as reg:
            service = QueryService(
                _StubExecutor(),
                ServeConfig(default_quota=QuotaSpec(rate=1, burst=1)),
            )
            assert service.handle("g1", QUERY).status == 200
            assert service.handle("g1", QUERY).status == 429  # quota shed
            assert service.handle("g2", QUERY).cached
            gauges = {
                name: reg.get(name).value
                for name in (
                    "repro_serve_cache_hit_rate",
                    "repro_serve_tenant_table_size",
                    "repro_serve_shed_requests",
                )
            }
        assert gauges["repro_serve_cache_hit_rate"] == pytest.approx(
            service.cache.hit_rate
        )
        assert gauges["repro_serve_tenant_table_size"] == 2.0
        assert gauges["repro_serve_shed_requests"] == 1.0

    def test_resource_sampler_sums_serve_state(self):
        with _metrics.scoped_registry() as reg:
            service = QueryService(_StubExecutor(), ServeConfig())
            assert service.handle("t", QUERY).status == 200
            values = _resources.collect(reg)
        assert values["repro_resource_serve_cache_entries"] >= len(
            service.cache
        )
        assert values["repro_resource_serve_cache_bytes"] > 0
        assert values["repro_resource_serve_tenants"] >= 1
