"""Tests for the valid-combination iterator (Algorithm 4)."""

import itertools
import math
import random

import pytest

from repro.core.combinations import (
    PULL_PRIORITIZED,
    PULL_ROUND_ROBIN,
    CombinationIterator,
)
from repro.core.query import PreferenceQuery
from repro.errors import QueryError
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.text.similarity import jaccard
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_feature_objects, random_mask


@pytest.fixture(scope="module")
def small_world():
    vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
    sets = [
        FeatureDataset(make_feature_objects(60, seed=61), vocab, "A"),
        FeatureDataset(make_feature_objects(60, seed=62), vocab, "B"),
    ]
    trees = [SRTIndex.build(fs) for fs in sets]
    return sets, trees


def feature_score(f, mask, lam=0.5):
    fm = f.keyword_mask()
    if not fm & mask:
        return None
    return (1 - lam) * f.score + lam * jaccard(fm, mask)


def brute_combinations(sets, masks, radius, enforce_2r, lam=0.5):
    """All valid combinations (including virtual slots) with scores."""
    per_set = []
    for fs, mask in zip(sets, masks):
        scored = [
            (feature_score(f, mask, lam), f)
            for f in fs
            if feature_score(f, mask, lam) is not None
        ]
        scored.append((0.0, None))  # the virtual feature
        per_set.append(scored)
    combos = []
    for combo in itertools.product(*per_set):
        feats = [f for _, f in combo]
        if enforce_2r:
            real = [f for f in feats if f is not None]
            ok = all(
                math.hypot(a.x - b.x, a.y - b.y) <= 2 * radius
                for a, b in itertools.combinations(real, 2)
            )
            if not ok:
                continue
        combos.append(round(sum(s for s, _ in combo), 9))
    combos.sort(reverse=True)
    return combos


class TestFullEnumeration:
    @pytest.mark.parametrize("enforce_2r", [True, False])
    def test_matches_brute_force_order(self, small_world, enforce_2r):
        sets, trees = small_world
        rng = random.Random(3)
        masks = (random_mask(rng, 2), random_mask(rng, 2))
        query = PreferenceQuery(
            k=5, radius=0.15, lam=0.5, keyword_masks=masks
        )
        iterator = CombinationIterator(trees, query, enforce_2r=enforce_2r)
        got = []
        while True:
            combo = iterator.next()
            if combo is None:
                break
            got.append(round(combo.score, 9))
        expected = brute_combinations(sets, masks, 0.15, enforce_2r)
        assert got == expected

    def test_scores_non_increasing(self, small_world):
        _, trees = small_world
        query = PreferenceQuery(
            k=5, radius=0.1, lam=0.5, keyword_masks=(0b111, 0b1110)
        )
        iterator = CombinationIterator(trees, query)
        prev = math.inf
        while True:
            combo = iterator.next()
            if combo is None:
                break
            assert combo.score <= prev + 1e-9
            prev = combo.score

    def test_no_duplicate_combinations(self, small_world):
        _, trees = small_world
        query = PreferenceQuery(
            k=5, radius=0.2, lam=0.5, keyword_masks=(0b11, 0b1100)
        )
        iterator = CombinationIterator(trees, query, enforce_2r=False)
        seen = set()
        while True:
            combo = iterator.next()
            if combo is None:
                break
            key = tuple(f.fid for f in combo.features)
            assert key not in seen
            seen.add(key)


class TestValidity:
    def test_2r_filter(self, small_world):
        _, trees = small_world
        radius = 0.05
        query = PreferenceQuery(
            k=5, radius=radius, lam=0.5, keyword_masks=(0b111, 0b111)
        )
        iterator = CombinationIterator(trees, query, enforce_2r=True)
        while True:
            combo = iterator.next()
            if combo is None:
                break
            real = [f for f in combo.features if not f.is_virtual]
            for a, b in itertools.combinations(real, 2):
                assert math.hypot(a.x - b.x, a.y - b.y) <= 2 * radius + 1e-12

    def test_all_virtual_appears_last(self, small_world):
        _, trees = small_world
        query = PreferenceQuery(
            k=5, radius=0.3, lam=0.5, keyword_masks=(0b1, 0b1)
        )
        iterator = CombinationIterator(trees, query, enforce_2r=False)
        combos = []
        while True:
            c = iterator.next()
            if c is None:
                break
            combos.append(c)
        assert combos[-1].is_all_virtual
        assert combos[-1].score == 0.0


class TestPullingStrategies:
    @pytest.mark.parametrize("pulling", [PULL_PRIORITIZED, PULL_ROUND_ROBIN])
    def test_same_output_any_strategy(self, small_world, pulling):
        sets, trees = small_world
        masks = (0b1010, 0b0101)
        query = PreferenceQuery(k=5, radius=0.1, lam=0.5, keyword_masks=masks)
        iterator = CombinationIterator(trees, query, pulling=pulling)
        got = []
        while True:
            combo = iterator.next()
            if combo is None:
                break
            got.append(round(combo.score, 9))
        assert got == brute_combinations(sets, masks, 0.1, True)

    def test_prioritized_pulls_no_more_than_round_robin(self, small_world):
        """Definition 5's point: pull where the threshold lives."""
        _, trees = small_world
        query = PreferenceQuery(
            k=5, radius=0.1, lam=0.5, keyword_masks=(0b110011, 0b1100)
        )
        pulls = {}
        for strategy in (PULL_PRIORITIZED, PULL_ROUND_ROBIN):
            iterator = CombinationIterator(trees, query, pulling=strategy)
            for _ in range(5):
                if iterator.next() is None:
                    break
            pulls[strategy] = iterator.features_pulled
        assert pulls[PULL_PRIORITIZED] <= pulls[PULL_ROUND_ROBIN] + 2

    def test_unknown_strategy_rejected(self, small_world):
        _, trees = small_world
        query = PreferenceQuery(k=5, radius=0.1, lam=0.5, keyword_masks=(1, 1))
        with pytest.raises(QueryError):
            CombinationIterator(trees, query, pulling="bogus")


class TestValidation:
    def test_tree_count_mismatch(self, small_world):
        _, trees = small_world
        query = PreferenceQuery(k=5, radius=0.1, lam=0.5, keyword_masks=(1,))
        with pytest.raises(QueryError):
            CombinationIterator(trees, query)

    def test_three_sets(self, small_world):
        sets, _ = small_world
        vocab = sets[0].vocabulary
        extra = FeatureDataset(make_feature_objects(40, seed=63), vocab, "C")
        trees3 = [SRTIndex.build(fs) for fs in [*sets, extra]]
        masks = (0b11, 0b110, 0b1010)
        query = PreferenceQuery(k=3, radius=0.2, lam=0.5, keyword_masks=masks)
        iterator = CombinationIterator(trees3, query, enforce_2r=False)
        got = []
        while True:
            combo = iterator.next()
            if combo is None:
                break
            got.append(round(combo.score, 9))
        expected = brute_combinations(
            [*sets, extra], masks, 0.2, enforce_2r=False
        )
        assert got == expected
