"""Tests for the spatial grid used by batched STDS."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grid import SpatialGrid
from repro.errors import QueryError
from repro.geometry.rect import Rect

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestBasics:
    def test_insert_remove(self):
        g = SpatialGrid(0.1)
        g.insert(1, 0.5, 0.5)
        assert len(g) == 1
        g.remove(1, 0.5, 0.5)
        assert g.is_empty

    def test_duplicate_insert_rejected(self):
        g = SpatialGrid(0.1)
        g.insert(1, 0.5, 0.5)
        with pytest.raises(QueryError):
            g.insert(1, 0.5, 0.5)

    def test_remove_missing_rejected(self):
        g = SpatialGrid(0.1)
        with pytest.raises(QueryError):
            g.remove(1, 0.5, 0.5)

    def test_bad_cell_size(self):
        with pytest.raises(QueryError):
            SpatialGrid(0.0)

    def test_negative_coordinates_supported(self):
        g = SpatialGrid(0.1)
        g.insert(1, -0.05, -0.05)
        assert [oid for oid, _, _ in g.near_point(0.0, 0.0, 0.1)] == [1]


class TestQueries:
    def setup_method(self):
        rng = random.Random(8)
        self.points = [(i, rng.random(), rng.random()) for i in range(300)]
        self.grid = SpatialGrid(0.05)
        self.grid.bulk_insert(self.points)

    def test_near_point_matches_brute_force(self):
        for cx, cy, r in [(0.5, 0.5, 0.1), (0.05, 0.9, 0.2), (1.0, 1.0, 0.05)]:
            got = sorted(oid for oid, _, _ in self.grid.near_point(cx, cy, r))
            want = sorted(
                i
                for i, x, y in self.points
                if math.hypot(x - cx, y - cy) <= r
            )
            assert got == want

    def test_near_rect_matches_brute_force(self):
        rect = Rect((0.3, 0.3), (0.5, 0.6))
        r = 0.07
        got = sorted(oid for oid, _, _ in self.grid.near_rect(rect, r))
        want = sorted(
            i for i, x, y in self.points if rect.mindist((x, y)) <= r
        )
        assert got == want

    def test_any_near_rect(self):
        assert self.grid.any_near_rect(Rect((0.4, 0.4), (0.6, 0.6)), 0.01)
        empty_grid = SpatialGrid(0.05)
        assert not empty_grid.any_near_rect(Rect((0.0, 0.0), (1.0, 1.0)), 1.0)

    @given(unit, unit, st.floats(min_value=0.001, max_value=0.3))
    @settings(max_examples=30)
    def test_near_point_property(self, cx, cy, r):
        got = {oid for oid, _, _ in self.grid.near_point(cx, cy, r)}
        for i, x, y in self.points:
            inside = math.hypot(x - cx, y - cy) <= r
            assert (i in got) == inside
