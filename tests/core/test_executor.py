"""Tests for the concurrent batch-query executor (repro.core.executor)."""

from __future__ import annotations

import random

import pytest

from repro.core.executor import BatchReport, QueryExecutor
from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError
from tests.conftest import random_mask


def make_queries(n: int, seed: int, variant: Variant = Variant.RANGE):
    rng = random.Random(seed)
    return [
        PreferenceQuery(
            k=rng.randint(2, 6),
            radius=rng.uniform(0.05, 0.15),
            lam=rng.choice([0.0, 0.5, 1.0]),
            keyword_masks=(random_mask(rng), random_mask(rng)),
            variant=variant,
        )
        for _ in range(n)
    ]


def assert_same_result(a, b):
    assert a.oids == b.oids
    assert a.scores == b.scores


class TestQueryManyParity:
    @pytest.mark.parametrize("algorithm", ["stps", "stds"])
    def test_matches_serial_run(self, srt_processor, algorithm):
        queries = make_queries(6, seed=81)
        serial = [srt_processor.query(q, algorithm=algorithm) for q in queries]
        with QueryExecutor(srt_processor, max_workers=4) as executor:
            concurrent = executor.query_many(queries, algorithm=algorithm)
        assert len(concurrent) == len(serial)
        for a, b in zip(serial, concurrent):
            assert_same_result(a, b)

    def test_results_in_input_order(self, srt_processor):
        queries = make_queries(8, seed=82)
        with QueryExecutor(srt_processor, max_workers=3) as executor:
            results = executor.query_many(queries)
        for query, result in zip(queries, results):
            assert_same_result(result, srt_processor.query(query))

    @pytest.mark.parametrize(
        "variant", [Variant.INFLUENCE, Variant.NEAREST]
    )
    def test_score_variants_supported(self, srt_processor, variant):
        queries = make_queries(3, seed=83, variant=variant)
        serial = [srt_processor.query(q) for q in queries]
        with QueryExecutor(srt_processor, max_workers=2) as executor:
            concurrent = executor.query_many(queries)
        for a, b in zip(serial, concurrent):
            assert_same_result(a, b)

    def test_repeated_query_identical(self, srt_processor):
        query = make_queries(1, seed=84)[0]
        expected = srt_processor.query(query)
        with QueryExecutor(srt_processor, max_workers=4) as executor:
            results = executor.query_many([query] * 8)
        for result in results:
            assert_same_result(result, expected)


class TestBatchDedup:
    def test_duplicates_share_one_execution(self, srt_processor):
        queries = make_queries(3, seed=95)
        workload = queries * 4  # every query duplicated 4x
        with QueryExecutor(srt_processor, max_workers=2) as executor:
            results = executor.query_many(workload)
        assert len(results) == len(workload)
        # Duplicates share the very same result object...
        for i, query in enumerate(workload):
            first = workload.index(query)
            assert results[i] is results[first]
        # ...and every position matches its serial answer.
        for query, result in zip(workload, results):
            assert_same_result(result, srt_processor.query(query))

    def test_dedup_off_executes_each_entry(self, srt_processor):
        query = make_queries(1, seed=96)[0]
        with QueryExecutor(srt_processor, max_workers=2) as executor:
            shared = executor.query_many([query] * 3)
            separate = executor.query_many([query] * 3, dedup=False)
        assert shared[0] is shared[1] is shared[2]
        assert separate[0] is not separate[1]
        for a, b in zip(shared, separate):
            assert_same_result(a, b)

    def test_dedup_reduces_measured_work(self, srt_processor):
        queries = make_queries(2, seed=97)
        workload = queries * 10
        with QueryExecutor(srt_processor, max_workers=1) as executor:
            executor.query_many(queries)  # warm caches identically
            deduped = executor.run(workload, algorithm="stds")
            full = executor.run(workload, algorithm="stds", dedup=False)
        lookups_deduped = deduped.node_cache_hits + deduped.node_cache_misses
        lookups_full = full.node_cache_hits + full.node_cache_misses
        assert lookups_deduped < lookups_full
        assert deduped.queries == full.queries == len(workload)


class TestProcessorConvenience:
    def test_query_many_wrapper(self, srt_processor):
        queries = make_queries(4, seed=85)
        serial = [srt_processor.query(q) for q in queries]
        concurrent = srt_processor.query_many(queries, max_workers=3)
        for a, b in zip(serial, concurrent):
            assert_same_result(a, b)

    def test_batch_size_does_not_change_results(self, srt_processor):
        query = make_queries(1, seed=86)[0]
        base = srt_processor.query(query, algorithm="stds")
        for batch_size in (1, 3, 1000):
            got = srt_processor.query(
                query, algorithm="stds", batch_size=batch_size
            )
            assert_same_result(got, base)

    def test_parallelism_does_not_change_results(self, srt_processor):
        queries = make_queries(4, seed=87)
        for query in queries:
            serial = srt_processor.query(query, algorithm="stds")
            threaded = srt_processor.query(
                query, algorithm="stds", parallelism=4
            )
            assert_same_result(threaded, serial)

    def test_invalid_knobs_rejected(self, srt_processor):
        query = make_queries(1, seed=88)[0]
        with pytest.raises(QueryError):
            srt_processor.query(query, algorithm="stds", batch_size=0)
        with pytest.raises(QueryError):
            srt_processor.query(query, algorithm="stds", parallelism=0)


class TestLifecycle:
    def test_invalid_max_workers(self, srt_processor):
        with pytest.raises(QueryError):
            QueryExecutor(srt_processor, max_workers=0)

    def test_closed_executor_rejects_work(self, srt_processor):
        executor = QueryExecutor(srt_processor, max_workers=1)
        executor.close()
        with pytest.raises(QueryError):
            executor.query_many(make_queries(1, seed=89))

    def test_close_idempotent(self, srt_processor):
        executor = QueryExecutor(srt_processor, max_workers=1)
        executor.close()
        executor.close()  # must not raise


class TestBatchReport:
    def test_run_accounting(self, srt_processor):
        queries = make_queries(5, seed=90)
        with QueryExecutor(srt_processor, max_workers=4) as executor:
            report = executor.run(queries)
        assert isinstance(report, BatchReport)
        assert report.queries == 5
        assert len(report.results) == 5
        assert report.wall_s > 0
        assert report.throughput_qps > 0
        total = report.node_cache_hits + report.node_cache_misses
        assert total > 0
        assert 0.0 <= report.node_cache_hit_rate <= 1.0

    def test_warm_cache_dominates_repeated_workload(self, srt_processor):
        query = make_queries(1, seed=91)[0]
        with QueryExecutor(srt_processor, max_workers=4) as executor:
            executor.run([query])  # warm the decoded-node cache
            report = executor.run([query] * 10)
        assert report.node_cache_hit_rate > 0.9

    def test_empty_batch(self, srt_processor):
        with QueryExecutor(srt_processor, max_workers=2) as executor:
            report = executor.run([])
        assert report.queries == 0
        assert report.results == []
        assert report.throughput_qps == 0.0
        assert report.node_cache_hit_rate == 0.0


class TestLatencyAccounting:
    def test_run_collects_one_sample_per_executed_query(self, srt_processor):
        queries = make_queries(6, seed=94)
        with QueryExecutor(srt_processor, max_workers=3) as executor:
            report = executor.run(queries, dedup=False)
        assert len(report.latencies_s) == 6
        assert len(report.queue_waits_s) == 6
        assert all(v > 0.0 for v in report.latencies_s)
        assert all(v >= 0.0 for v in report.queue_waits_s)

    def test_dedup_collapses_samples_to_distinct_queries(self, srt_processor):
        query = make_queries(1, seed=95)[0]
        with QueryExecutor(srt_processor, max_workers=2) as executor:
            report = executor.run([query] * 8)
        assert report.queries == 8  # every answered position counts
        assert len(report.latencies_s) == 1  # one execution

    def test_percentiles_are_monotone_and_within_samples(self, srt_processor):
        queries = make_queries(8, seed=96)
        with QueryExecutor(srt_processor, max_workers=4) as executor:
            report = executor.run(queries, dedup=False)
        pct = report.latency_percentiles()
        assert pct["p50"] <= pct["p95"] <= pct["p99"]
        assert min(report.latencies_s) <= pct["p50"]
        assert pct["p99"] <= max(report.latencies_s)
        assert report.latency_p50_s == pct["p50"]
        assert report.latency_p95_s == pct["p95"]
        assert report.latency_p99_s == pct["p99"]
        qpct = report.queue_wait_percentiles()
        assert qpct["p50"] <= qpct["p95"] <= qpct["p99"]
        assert report.queue_wait_p95_s == qpct["p95"]

    def test_empty_batch_has_nan_percentiles(self, srt_processor):
        # NaN, not 0.0: "no data" must not read as "instant" in
        # dashboards or regression math (0.0 would pass any latency
        # gate).  Same contract as an all-failures batch.
        import math

        with QueryExecutor(srt_processor, max_workers=2) as executor:
            report = executor.run([])
        assert report.latencies_s == []
        assert math.isnan(report.latency_p99_s)
        assert math.isnan(report.queue_wait_p50_s)

    def test_aggregate_phase_times(self, srt_processor):
        from repro.obs import tracing

        queries = make_queries(4, seed=97)
        with QueryExecutor(srt_processor, max_workers=2) as executor:
            cold = executor.run(queries)
            assert cold.aggregate_phase_times() == {}  # tracing off
            tracing.clear()
            previous = tracing.set_enabled(True)
            try:
                report = executor.run(queries)
            finally:
                tracing.set_enabled(previous)
                tracing.clear()
        totals = report.aggregate_phase_times()
        assert "stps.feature_pull" in totals
        assert all(v >= 0.0 for v in totals.values())

    def test_query_many_records_queue_wait_metric(self, srt_processor):
        from repro.obs import metrics

        family = metrics.registry().histogram(
            "repro_executor_queue_wait_seconds",
            labelnames=("algorithm",),
        )
        before = family.labels(algorithm="stps").count
        queries = make_queries(3, seed=98)
        with QueryExecutor(srt_processor, max_workers=2) as executor:
            executor.query_many(queries, dedup=False)
        assert family.labels(algorithm="stps").count == before + 3
