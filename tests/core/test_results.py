"""Tests for result containers and stats tracking."""

import pytest

from repro.core.results import (
    QueryResult,
    QueryStats,
    ResultItem,
    StatsTracker,
    rank_items,
)
from repro.storage.page import Page
from repro.storage.pagefile import MemoryPageFile


class TestRankItems:
    def test_orders_by_score_then_oid(self):
        items = rank_items(
            [(0.5, 2, 0, 0), (0.9, 7, 0, 0), (0.5, 1, 0, 0)], k=3
        )
        assert [(i.oid, i.score) for i in items] == [
            (7, 0.9),
            (1, 0.5),
            (2, 0.5),
        ]

    def test_truncates_to_k(self):
        items = rank_items([(s / 10, s, 0, 0) for s in range(10)], k=3)
        assert len(items) == 3
        assert items[0].score == pytest.approx(0.9)

    def test_empty(self):
        assert rank_items([], k=5) == []


class TestQueryResult:
    def test_accessors(self):
        result = QueryResult(
            [ResultItem(3, 0.9, 0.1, 0.2), ResultItem(5, 0.7, 0.3, 0.4)]
        )
        assert result.scores == [0.9, 0.7]
        assert result.oids == [3, 5]
        assert len(result) == 2


class TestQueryStats:
    def test_total_time_combines_cpu_and_io(self):
        stats = QueryStats(wall_s=0.5, io_time_s=1.5)
        assert stats.total_time_s == pytest.approx(2.0)
        assert stats.cpu_time_s == pytest.approx(0.5)


class TestStatsTracker:
    def test_tracks_multiple_pagefiles(self):
        pfs = [MemoryPageFile(128) for _ in range(2)]
        for pf in pfs:
            pid = pf.allocate()
            pf.write(Page(pid, b"x"))
        tracker = StatsTracker(pfs)
        pfs[0].read(0)
        pfs[1].read(0)
        pfs[1].read(0)
        stats = tracker.finish(QueryStats())
        assert stats.io_reads == 3
        assert stats.wall_s > 0
        assert stats.io_time_s == pytest.approx(
            3 * pfs[0].stats.page_read_cost_s
        )

    def test_ignores_activity_before_construction(self):
        pf = MemoryPageFile(128)
        pid = pf.allocate()
        pf.write(Page(pid, b"x"))
        pf.read(pid)  # before tracking
        tracker = StatsTracker([pf])
        stats = tracker.finish(QueryStats())
        assert stats.io_reads == 0

    def test_sub_phase_attribution(self):
        pf = MemoryPageFile(128)
        pid = pf.allocate()
        pf.write(Page(pid, b"x"))
        tracker = StatsTracker([pf])
        pf.read(pid)
        snap = tracker.io_snapshot()
        pf.read(pid)
        pf.read(pid)
        reads, io_time = tracker.io_since(snap)
        assert reads == 2
        assert io_time == pytest.approx(2 * pf.stats.page_read_cost_s)
