"""Tests for the influence-score STPS (Algorithm 5)."""

import math
import random

import pytest

from repro.core.bruteforce import brute_force
from repro.core.influence import _combo_influence_bound, stps_influence
from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError
from tests.conftest import random_mask


def _q(masks, k=5, radius=0.08, lam=0.5):
    return PreferenceQuery(
        k=k,
        radius=radius,
        lam=lam,
        keyword_masks=masks,
        variant=Variant.INFLUENCE,
    )


class TestCorrectness:
    @pytest.mark.parametrize("index", ["srt", "ir2"])
    def test_matches_brute_force(self, request, objects, feature_sets, index):
        processor = request.getfixturevalue(f"{index}_processor")
        rng = random.Random(31)
        for _ in range(4):
            query = _q((random_mask(rng), random_mask(rng)))
            got = stps_influence(
                processor.object_tree, processor.feature_trees, query
            )
            want = brute_force(objects, feature_sets, query)
            assert got.scores == pytest.approx(want.scores, abs=1e-9)

    @pytest.mark.parametrize("radius", [0.01, 0.3])
    def test_radius_extremes(self, srt_processor, objects, feature_sets, radius):
        query = _q((0b110, 0b1010), radius=radius)
        got = stps_influence(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_k_one(self, srt_processor, objects, feature_sets):
        query = _q((0b11, 0b11), k=1)
        got = stps_influence(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_rare_keyword(self, srt_processor, objects, feature_sets):
        query = _q((1 << 31, 1 << 30))
        got = stps_influence(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_wrong_variant_rejected(self, srt_processor):
        query = PreferenceQuery(k=5, radius=0.1, lam=0.5, keyword_masks=(1, 1))
        with pytest.raises(QueryError):
            stps_influence(
                srt_processor.object_tree, srt_processor.feature_trees, query
            )


class TestInfluenceBound:
    """The distance-aware pruning bound must dominate any point's score."""

    def test_single_member(self):
        assert _combo_influence_bound([(0.5, 0.5, 0.8)], 0.1) == 0.8

    def test_colocated_members_sum(self):
        members = [(0.5, 0.5, 0.6), (0.5, 0.5, 0.7)]
        assert _combo_influence_bound(members, 0.1) == pytest.approx(1.3)

    def test_far_members_bound_near_max(self):
        members = [(0.0, 0.0, 0.9), (1.0, 1.0, 0.9)]
        bound = _combo_influence_bound(members, 0.01)
        assert bound < 0.91  # cannot collect both

    @pytest.mark.parametrize("seed", range(5))
    def test_dominates_grid_of_points(self, seed):
        rng = random.Random(seed)
        members = [
            (rng.random(), rng.random(), rng.random()) for _ in range(3)
        ]
        radius = 0.05 + rng.random() * 0.2
        bound = _combo_influence_bound(members, radius)
        for _ in range(500):
            px, py = rng.random(), rng.random()
            score = sum(
                s * 2 ** (-math.hypot(px - x, py - y) / radius)
                for x, y, s in members
            )
            assert score <= bound + 1e-9

    def test_dominated_by_sum(self):
        rng = random.Random(42)
        members = [(rng.random(), rng.random(), rng.random()) for _ in range(4)]
        assert _combo_influence_bound(members, 0.1) <= sum(
            s for _, _, s in members
        ) + 1e-12
