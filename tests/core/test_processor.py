"""Tests for the QueryProcessor facade."""

import pytest

from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError


def _q(variant=Variant.RANGE):
    return PreferenceQuery(
        k=5, radius=0.08, lam=0.5, keyword_masks=(0b11, 0b110), variant=variant
    )


class TestBuild:
    def test_build_srt_default(self, objects, feature_sets):
        processor = QueryProcessor.build(objects, feature_sets)
        from repro.index.srt import SRTIndex

        assert all(isinstance(t, SRTIndex) for t in processor.feature_trees)

    def test_build_ir2(self, objects, feature_sets):
        processor = QueryProcessor.build(objects, feature_sets, index="ir2")
        from repro.index.ir2 import IR2Tree

        assert all(isinstance(t, IR2Tree) for t in processor.feature_trees)

    def test_unknown_index_rejected(self, objects, feature_sets):
        with pytest.raises(QueryError):
            QueryProcessor.build(objects, feature_sets, index="btree")

    def test_no_feature_trees_rejected(self, srt_processor):
        with pytest.raises(QueryError):
            QueryProcessor(srt_processor.object_tree, [])

    def test_insert_method_build(self, objects, feature_sets):
        processor = QueryProcessor.build(
            objects, feature_sets, method="insert"
        )
        for tree in processor.feature_trees:
            tree.validate()


class TestDispatch:
    @pytest.mark.parametrize(
        "variant", [Variant.RANGE, Variant.INFLUENCE, Variant.NEAREST]
    )
    @pytest.mark.parametrize("algorithm", ["stps", "stds"])
    def test_all_paths_run(self, srt_processor, variant, algorithm):
        result = srt_processor.query(_q(variant), algorithm=algorithm)
        assert len(result) == 5
        assert result.scores == sorted(result.scores, reverse=True)

    def test_stds_and_stps_agree(self, srt_processor):
        q = _q()
        a = srt_processor.query(q, algorithm="stps")
        b = srt_processor.query(q, algorithm="stds")
        assert a.scores == pytest.approx(b.scores, abs=1e-9)

    def test_unknown_algorithm(self, srt_processor):
        with pytest.raises(QueryError):
            srt_processor.query(_q(), algorithm="magic")


class TestBufferControl:
    def test_clear_buffers_forces_physical_reads(self, objects, feature_sets):
        processor = QueryProcessor.build(objects, feature_sets)
        processor.query(_q())
        processor.reset_stats()
        processor.query(_q())
        warm_reads = processor.object_tree.stats.reads + sum(
            t.stats.reads for t in processor.feature_trees
        )
        processor.clear_buffers()
        processor.reset_stats()
        processor.query(_q())
        cold_reads = processor.object_tree.stats.reads + sum(
            t.stats.reads for t in processor.feature_trees
        )
        assert cold_reads > warm_reads

    def test_reset_stats(self, srt_processor):
        srt_processor.query(_q())
        srt_processor.reset_stats()
        assert srt_processor.object_tree.stats.reads == 0
        assert all(
            t.stats.reads == 0 for t in srt_processor.feature_trees
        )

    def test_reset_stats_zeroes_node_cache_counters(self, srt_processor):
        """Regression: node-cache hit/miss counters used to survive resets."""
        srt_processor.query(_q())
        trees = (srt_processor.object_tree, *srt_processor.feature_trees)
        assert any(t.node_cache.hits + t.node_cache.misses for t in trees)
        srt_processor.reset_stats()
        for tree in trees:
            assert tree.node_cache.hits == 0
            assert tree.node_cache.misses == 0
            assert tree.stats.node_cache_hits == 0
            assert tree.stats.node_cache_misses == 0

    def test_reset_stats_zeroes_metrics_registry(self, srt_processor):
        from repro.obs import metrics

        srt_processor.query(_q())
        families = metrics.registry().families()
        assert any(list(f.series()) for f in families)
        srt_processor.reset_stats()
        for family in metrics.registry().families():
            for _, metric in family.series():
                value = getattr(metric, "count", None)
                if value is None:
                    value = metric.value
                assert value == 0

    def test_reset_stats_can_leave_metrics_alone(self, srt_processor):
        from repro.obs import metrics

        srt_processor.query(_q())
        before = metrics.registry().counter(
            "repro_queries_total",
            "Queries executed.",
            ("algorithm", "variant", "pulling"),
        )
        total = sum(m.value for _, m in before.series())
        assert total > 0
        srt_processor.reset_stats(metrics=False)
        assert sum(m.value for _, m in before.series()) == total

    def test_clear_buffers_reports_dropped(self, objects, feature_sets):
        processor = QueryProcessor.build(objects, feature_sets)
        processor.query(_q())
        dropped = processor.clear_buffers()
        assert dropped["pages"] > 0
        assert dropped["nodes"] > 0
        # Everything is gone, so a second clear drops nothing.
        assert processor.clear_buffers() == {"pages": 0, "nodes": 0}

    def test_cold_run_stats_start_from_zero(self, objects, feature_sets):
        """clear_buffers + reset_stats gives a genuinely cold measurement."""
        processor = QueryProcessor.build(objects, feature_sets)
        processor.query(_q())  # warm everything
        processor.clear_buffers()
        processor.reset_stats()
        trees = (processor.object_tree, *processor.feature_trees)
        assert all(t.node_cache.hits + t.node_cache.misses == 0 for t in trees)
        processor.query(_q())
        # First touch of every node is a miss on a truly cold cache.
        assert any(t.node_cache.misses > 0 for t in trees)
