"""Degenerate-input regressions: ``k=0`` and empty datasets.

``PreferenceQuery`` historically required ``k >= 1`` and the engines
assumed a non-empty top-k heap (``collected[k - 1]``,
``_GlobalTopK.floor``), so a ``k=0`` request — a natural "give me
nothing, but validate everything" probe from the serving layer — either
raised or underflowed.  The contract pinned here: ``k=0`` returns an
empty, (vacuously) tie-complete result through every engine in every
execution mode, and empty datasets answer normally instead of crashing.
"""

from __future__ import annotations

import pytest

from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.shard.sharded_processor import ShardedQueryProcessor
from repro.text.vocabulary import Vocabulary

from tests.conftest import make_data_objects, make_feature_objects

VOCAB = Vocabulary(f"kw{i}" for i in range(16))
ALL_MASKS = (0xFFFF, 0xFFFF)

#: Shards are built with this halo radius; queries stay under it so the
#: same query runs unchanged against halo-replicated shards.
BUILD_RADIUS = 0.05
QUERY_RADIUS = 0.04


def small_world() -> tuple[ObjectDataset, list[FeatureDataset]]:
    objects = ObjectDataset(make_data_objects(60, seed=71))
    feature_sets = [
        FeatureDataset(
            make_feature_objects(40, seed=72 + j, vocab_size=len(VOCAB)),
            VOCAB,
            f"set{j}",
        )
        for j in range(2)
    ]
    return objects, feature_sets


def query(k: int, variant: Variant = Variant.RANGE) -> PreferenceQuery:
    return PreferenceQuery(k, QUERY_RADIUS, 0.5, ALL_MASKS, variant)


#: (algorithm, variant) pairs every engine test sweeps — ISS serves
#: only the influence variant (Section 7), STPS all three.
ENGINES = [
    ("stps", Variant.RANGE),
    ("stps", Variant.NEAREST),
    ("stds", Variant.RANGE),
    ("iss", Variant.INFLUENCE),
]


@pytest.fixture(scope="module")
def world():
    return small_world()


@pytest.fixture(scope="module")
def processor(world):
    return QueryProcessor.build(*world)


class TestQueryValidation:
    def test_k_zero_is_legal(self):
        assert query(0).k == 0

    def test_negative_k_still_rejected(self):
        with pytest.raises(QueryError, match="k must be >= 0"):
            PreferenceQuery(-1, QUERY_RADIUS, 0.5, ALL_MASKS)


class TestSingleNodeKZero:
    @pytest.mark.parametrize("algorithm,variant", ENGINES)
    def test_k_zero_returns_empty(self, processor, algorithm, variant):
        result = processor.query(query(0, variant), algorithm=algorithm)
        assert result.items == []

    @pytest.mark.parametrize("algorithm,variant", ENGINES)
    def test_k_zero_then_real_query_still_works(
        self, processor, algorithm, variant
    ):
        processor.query(query(0, variant), algorithm=algorithm)
        result = processor.query(query(3, variant), algorithm=algorithm)
        assert len(result.items) <= 3

    def test_unknown_algorithm_still_rejected_for_k_zero(self, processor):
        # The short-circuit must not swallow dispatch validation.
        with pytest.raises(QueryError, match="unknown algorithm"):
            processor.query(query(0), algorithm="nope")


class TestShardedKZero:
    @pytest.mark.parametrize("fanout", ["threads", "processes"])
    def test_k_zero_returns_empty(self, world, fanout):
        with ShardedQueryProcessor.build(
            *world, shards=2, radius=BUILD_RADIUS, fanout=fanout
        ) as sharded:
            result = sharded.query(query(0))
            assert result.items == []
            assert result.stats.trace_id  # still stamped for correlation
            follow_up = sharded.query(query(3))
            assert len(follow_up.items) <= 3

    @pytest.mark.parametrize("algorithm,variant", ENGINES)
    def test_k_zero_all_engines_full_replication(
        self, world, algorithm, variant
    ):
        # Full replication serves every variant, so the whole engine
        # sweep runs against the sharded fan-out too.
        with ShardedQueryProcessor.build(
            *world, shards=2, replication="full"
        ) as sharded:
            result = sharded.query(query(0, variant), algorithm=algorithm)
            assert result.items == []


class TestEmptyDatasets:
    @pytest.fixture(scope="class")
    def empty_world(self, world):
        _, feature_sets = world
        return ObjectDataset([]), feature_sets

    @pytest.mark.parametrize("algorithm,variant", ENGINES)
    def test_no_objects_single_node(self, empty_world, algorithm, variant):
        processor = QueryProcessor.build(*empty_world)
        result = processor.query(query(5, variant), algorithm=algorithm)
        assert result.items == []

    @pytest.mark.parametrize("fanout", ["threads", "processes"])
    def test_no_objects_sharded(self, empty_world, fanout):
        with ShardedQueryProcessor.build(
            *empty_world, shards=2, radius=BUILD_RADIUS, fanout=fanout
        ) as sharded:
            assert sharded.query(query(5)).items == []

    def test_empty_feature_sets_score_zero(self, world):
        objects, _ = world
        feature_sets = [
            FeatureDataset([], VOCAB, "emptyA"),
            FeatureDataset([], VOCAB, "emptyB"),
        ]
        processor = QueryProcessor.build(objects, feature_sets)
        result = processor.query(query(5))
        # No features anywhere: every object scores 0; top-k still ranks.
        assert len(result.items) == 5
        assert all(item.score == 0.0 for item in result.items)

    def test_no_objects_and_k_zero(self, empty_world):
        processor = QueryProcessor.build(*empty_world)
        assert processor.query(query(0)).items == []
