"""Tests for STDS (Algorithms 1-2) and its batched/variant forms."""

import random

import pytest

from repro.core.bruteforce import brute_force, component_score
from repro.core.query import PreferenceQuery, Variant
from repro.core.stds import (
    compute_score,
    compute_score_influence,
    compute_score_nearest,
    compute_scores_batch,
    stds,
)
from repro.errors import QueryError
from tests.conftest import random_mask


def _q(masks, variant=Variant.RANGE, k=5, radius=0.08, lam=0.5):
    return PreferenceQuery(
        k=k, radius=radius, lam=lam, keyword_masks=masks, variant=variant
    )


class TestComputeScore:
    """Algorithm 2 against the per-definition oracle, per variant."""

    @pytest.mark.parametrize(
        "variant,fn",
        [
            (Variant.RANGE, compute_score),
            (Variant.INFLUENCE, compute_score_influence),
            (Variant.NEAREST, compute_score_nearest),
        ],
    )
    def test_matches_definition(
        self, srt_processor, feature_sets, variant, fn
    ):
        rng = random.Random(17)
        tree = srt_processor.feature_trees[0]
        for _ in range(8):
            mask = random_mask(rng)
            point = (rng.random(), rng.random())
            query = _q((mask, mask), variant=variant)
            got = fn(tree, query, mask, point)
            want = component_score(
                point[0], point[1], feature_sets[0], mask, query
            )
            assert got == pytest.approx(want, abs=1e-9)

    def test_empty_tree_scores_zero(self, feature_sets):
        from repro.index.srt import SRTIndex
        from repro.model.dataset import FeatureDataset

        empty = SRTIndex.build(
            FeatureDataset([], feature_sets[0].vocabulary, "e")
        )
        query = _q((1, 1))
        assert compute_score(empty, query, 1, (0.5, 0.5)) == 0.0
        assert compute_score_influence(empty, query, 1, (0.5, 0.5)) == 0.0
        assert compute_score_nearest(empty, query, 1, (0.5, 0.5)) == 0.0


class TestBatch:
    def test_batch_matches_single(self, srt_processor, objects):
        rng = random.Random(19)
        tree = srt_processor.feature_trees[0]
        mask = random_mask(rng)
        query = _q((mask, mask))
        pending = {o.oid: (o.x, o.y) for o in list(objects)[:60]}
        batch_scores = compute_scores_batch(tree, query, mask, dict(pending))
        for oid, (x, y) in pending.items():
            single = compute_score(tree, query, mask, (x, y))
            assert batch_scores[oid] == pytest.approx(single, abs=1e-9)

    def test_empty_pending(self, srt_processor):
        tree = srt_processor.feature_trees[0]
        assert compute_scores_batch(tree, _q((1, 1)), 1, {}) == {}


class TestFullSTDS:
    @pytest.mark.parametrize(
        "variant", [Variant.RANGE, Variant.INFLUENCE, Variant.NEAREST]
    )
    def test_matches_brute_force(
        self, srt_processor, objects, feature_sets, variant
    ):
        rng = random.Random(23)
        for _ in range(3):
            masks = (random_mask(rng), random_mask(rng))
            query = _q(masks, variant=variant)
            got = stds(
                srt_processor.object_tree, srt_processor.feature_trees, query
            )
            want = brute_force(objects, feature_sets, query)
            assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_small_batch_size_still_correct(
        self, srt_processor, objects, feature_sets
    ):
        query = _q((0b110, 0b1010))
        got = stds(
            srt_processor.object_tree,
            srt_processor.feature_trees,
            query,
            batch_size=7,
        )
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_k_larger_than_dataset(self, srt_processor, objects, feature_sets):
        query = _q((0b1, 0b1), k=10_000)
        got = stds(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        assert len(got) == len(objects)

    def test_stats_populated(self, srt_processor):
        query = _q((0b11, 0b11))
        result = stds(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        assert result.stats.objects_scored > 0
        assert result.stats.wall_s > 0

    def test_feature_set_mismatch(self, srt_processor):
        query = _q((1,))
        with pytest.raises(QueryError):
            stds(srt_processor.object_tree, srt_processor.feature_trees, query)
