"""White-box tests for STDS's early-termination thresholding."""

import pytest

from repro.core.query import PreferenceQuery
from repro.core.stds import _stds_range_batched, compute_scores_batch
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.model.objects import FeatureObject
from repro.text.vocabulary import Vocabulary

VOCAB = Vocabulary(["a"])


def tree_with(features):
    return SRTIndex.build(FeatureDataset(features, VOCAB, "t"))


class TestBatchedExpansion:
    def test_no_pending_objects_in_range_stops_expansion(self):
        """An entry with no pending object nearby must not be expanded:
        the traversal reads only the root when all objects are far."""
        features = [
            FeatureObject(i, 0.9, 0.9, 0.5, frozenset({0})) for i in range(50)
        ]
        tree = tree_with(features)
        tree.clear_cache()
        tree.stats.reset()
        query = PreferenceQuery(k=3, radius=0.01, lam=0.5, keyword_masks=(1,))
        scores = compute_scores_batch(
            tree, query, 1, {0: (0.1, 0.1), 1: (0.2, 0.2)}
        )
        assert scores == {0: 0.0, 1: 0.0}
        assert tree.stats.logical_reads <= 2  # root only (+meta none)

    def test_resolution_removes_objects_early(self):
        """Once an object's score is resolved by a high-score feature,
        later (lower-score) features never touch it."""
        features = [
            FeatureObject(0, 0.5, 0.5, 1.0, frozenset({0})),
            FeatureObject(1, 0.5, 0.51, 0.1, frozenset({0})),
        ]
        tree = tree_with(features)
        query = PreferenceQuery(k=1, radius=0.2, lam=0.0, keyword_masks=(1,))
        scores = compute_scores_batch(tree, query, 1, {7: (0.5, 0.5)})
        assert scores[7] == pytest.approx(1.0)  # the better feature won


class TestChunkThreshold:
    def test_later_chunks_skip_feature_sets(self):
        """With c = 2 and a decisive first chunk, objects in later chunks
        whose partial score cannot reach the threshold skip the second
        feature set entirely (upper bound τ̂ pruning of Algorithm 1)."""
        # Set 1: one great feature near the first-chunk objects.
        set1 = tree_with([FeatureObject(0, 0.1, 0.1, 1.0, frozenset({0}))])
        set2 = tree_with([FeatureObject(0, 0.1, 0.1, 1.0, frozenset({0}))])
        query = PreferenceQuery(k=1, radius=0.05, lam=0.0, keyword_masks=(1, 1))
        # First chunk: object right next to both features (score 2.0).
        # Second chunk: objects far away (score 0) — with threshold 2.0
        # and a perfect partial of 0 + 1 remaining set, they are pruned.
        objects = [(0, 0.1, 0.1)] + [(i, 0.9, 0.9) for i in range(1, 5)]
        set2.clear_cache()
        set2.stats.reset()
        candidates = _stds_range_batched(
            [set1, set2], query, objects, batch_size=1
        )
        best = max(candidates, key=lambda t: t[0])
        assert best[0] == pytest.approx(2.0)
        assert best[1] == 0

    def test_all_objects_scored_without_threshold(self):
        set1 = tree_with([FeatureObject(0, 0.5, 0.5, 0.6, frozenset({0}))])
        query = PreferenceQuery(k=100, radius=2.0, lam=0.0, keyword_masks=(1,))
        objects = [(i, 0.5, 0.5) for i in range(10)]
        candidates = _stds_range_batched([set1], query, objects, batch_size=3)
        assert len(candidates) == 10
        assert all(s == pytest.approx(0.6) for s, *_ in candidates)
