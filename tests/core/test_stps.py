"""Tests for STPS, range variant (Algorithm 3)."""

import random

import pytest

from repro.core.bruteforce import brute_force
from repro.core.combinations import PULL_ROUND_ROBIN
from repro.core.query import PreferenceQuery, Variant
from repro.core.stps import stps
from repro.errors import QueryError
from tests.conftest import random_mask


def _q(masks, k=5, radius=0.08, lam=0.5):
    return PreferenceQuery(k=k, radius=radius, lam=lam, keyword_masks=masks)


class TestCorrectness:
    @pytest.mark.parametrize("index", ["srt", "ir2"])
    def test_matches_brute_force(
        self, request, objects, feature_sets, index
    ):
        processor = request.getfixturevalue(f"{index}_processor")
        rng = random.Random(29)
        for _ in range(5):
            query = _q((random_mask(rng), random_mask(rng)))
            got = stps(processor.object_tree, processor.feature_trees, query)
            want = brute_force(objects, feature_sets, query)
            assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_round_robin_same_answers(self, srt_processor, objects, feature_sets):
        query = _q((0b1100, 0b0011))
        got = stps(
            srt_processor.object_tree,
            srt_processor.feature_trees,
            query,
            pulling=PULL_ROUND_ROBIN,
        )
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_tiny_radius_zero_scores(self, srt_processor, objects, feature_sets):
        """Radius so small that every score is 0: the virtual path."""
        query = _q((0b1, 0b1), radius=1e-7, k=4)
        got = stps(srt_processor.object_tree, srt_processor.feature_trees, query)
        assert len(got) == 4
        assert got.scores == [0.0] * 4

    def test_huge_radius(self, srt_processor, objects, feature_sets):
        query = _q((0b110, 0b11), radius=2.0)
        got = stps(srt_processor.object_tree, srt_processor.feature_trees, query)
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_k_exceeds_objects(self, srt_processor, objects):
        query = _q((0b1, 0b1), k=100_000)
        got = stps(srt_processor.object_tree, srt_processor.feature_trees, query)
        assert len(got) == len(objects)

    @pytest.mark.parametrize("lam", [0.0, 1.0])
    def test_extreme_lambda(self, srt_processor, objects, feature_sets, lam):
        query = PreferenceQuery(
            k=5, radius=0.08, lam=lam, keyword_masks=(0b101, 0b110)
        )
        got = stps(srt_processor.object_tree, srt_processor.feature_trees, query)
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)


class TestBehaviour:
    def test_results_sorted(self, srt_processor):
        query = _q((0b111, 0b111), k=20)
        result = stps(srt_processor.object_tree, srt_processor.feature_trees, query)
        assert result.scores == sorted(result.scores, reverse=True)

    def test_no_duplicate_objects(self, srt_processor):
        query = _q((0b111, 0b111), k=50)
        result = stps(srt_processor.object_tree, srt_processor.feature_trees, query)
        assert len(set(result.oids)) == len(result.oids)

    def test_stats_counters(self, srt_processor):
        query = _q((0b11, 0b11))
        result = stps(srt_processor.object_tree, srt_processor.feature_trees, query)
        assert result.stats.combinations >= 1
        assert result.stats.features_pulled >= 1

    def test_wrong_variant_rejected(self, srt_processor):
        query = _q((1, 1)).with_variant(Variant.INFLUENCE)
        with pytest.raises(QueryError):
            stps(srt_processor.object_tree, srt_processor.feature_trees, query)

    def test_early_termination_touches_few_objects(self, srt_processor, objects):
        """STPS must not score the whole dataset for small k."""
        query = _q((0b111111, 0b111111), k=1, radius=0.2)
        result = stps(srt_processor.object_tree, srt_processor.feature_trees, query)
        assert result.stats.objects_scored < len(objects) / 2
