"""Tests for incremental result streaming."""

import itertools

import pytest

from repro.core.bruteforce import brute_force
from repro.core.query import PreferenceQuery, Variant
from repro.core.streaming import stps_stream
from repro.errors import QueryError


def _q(variant=Variant.RANGE, k=5, radius=0.08):
    return PreferenceQuery(
        k=k,
        radius=radius,
        lam=0.5,
        keyword_masks=(0b1110, 0b0111),
        variant=variant,
    )


class TestStreaming:
    @pytest.mark.parametrize("variant", [Variant.RANGE, Variant.NEAREST])
    def test_prefix_matches_query(self, srt_processor, variant):
        query = _q(variant)
        streamed = list(
            itertools.islice(srt_processor.stream(query), query.k)
        )
        batch = srt_processor.query(query)
        assert [round(i.score, 9) for i in streamed] == [
            round(i.score, 9) for i in batch.items
        ]

    @pytest.mark.parametrize("variant", [Variant.RANGE, Variant.NEAREST])
    def test_full_stream_matches_brute_force(
        self, srt_processor, objects, feature_sets, variant
    ):
        query = _q(variant)
        streamed = list(stps_stream(
            srt_processor.object_tree, srt_processor.feature_trees, query
        ))
        full = brute_force(
            objects, feature_sets, query.with_variant(variant)
        )
        # brute_force truncates at k; re-run with k = |O| for the full list
        query_all = PreferenceQuery(
            k=len(objects),
            radius=query.radius,
            lam=query.lam,
            keyword_masks=query.keyword_masks,
            variant=variant,
        )
        want = brute_force(objects, feature_sets, query_all)
        assert len(streamed) == len(objects)
        assert [i.score for i in streamed] == pytest.approx(
            want.scores, abs=1e-9
        )

    def test_scores_non_increasing(self, srt_processor):
        scores = [
            item.score
            for item in itertools.islice(srt_processor.stream(_q()), 40)
        ]
        assert scores == sorted(scores, reverse=True)

    def test_no_duplicates_across_whole_stream(self, srt_processor, objects):
        oids = [item.oid for item in srt_processor.stream(_q())]
        assert len(oids) == len(set(oids)) == len(objects)

    def test_influence_rejected(self, srt_processor):
        with pytest.raises(QueryError):
            next(iter(srt_processor.stream(_q(Variant.INFLUENCE))))

    def test_lazy_io(self, srt_processor, objects):
        """Consuming one result must not scan the whole object tree."""
        srt_processor.clear_buffers()
        srt_processor.reset_stats()
        stream = srt_processor.stream(_q(radius=0.2))
        next(stream)
        logical = (
            srt_processor.object_tree.stats.logical_reads
            + sum(t.stats.logical_reads for t in srt_processor.feature_trees)
        )
        # A full scan alone would need every leaf; demand far fewer.
        total_pages = srt_processor.object_tree.pagefile.page_count + sum(
            t.pagefile.page_count for t in srt_processor.feature_trees
        )
        assert logical < total_pages
