"""White-box tests for the combination iterator's internals."""

import pytest

from repro.core.combinations import CombinationIterator
from repro.core.query import PreferenceQuery
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.model.objects import FeatureObject
from repro.text.vocabulary import Vocabulary

VOCAB = Vocabulary(["a", "b"])


def make_tree(scores, x0=0.1):
    """One feature per score, all relevant to keyword 'a', spread on x."""
    features = [
        FeatureObject(i, x0 + 0.01 * i, 0.5, s, frozenset({0}))
        for i, s in enumerate(scores)
    ]
    return SRTIndex.build(FeatureDataset(features, VOCAB, "wb"))


def query(radius=1.0):
    return PreferenceQuery(k=3, radius=radius, lam=0.0, keyword_masks=(1, 1))


class TestLatticeEnumeration:
    def test_blocked_successors_flush_on_pull(self):
        """A successor index beyond the pulled prefix must wait, then
        appear once the stream delivers the missing element."""
        trees = [make_tree([0.9, 0.8, 0.7]), make_tree([0.9, 0.5])]
        iterator = CombinationIterator(trees, query(), enforce_2r=False)
        scores = []
        while True:
            combo = iterator.next()
            if combo is None:
                break
            scores.append(round(combo.score, 6))
        # Full product (incl. one virtual per set): (3+1) x (2+1) = 12.
        assert len(scores) == 12
        assert scores == sorted(scores, reverse=True)
        assert scores[0] == pytest.approx(1.8)
        assert scores[-1] == pytest.approx(0.0)

    def test_no_successor_beyond_virtual(self):
        """The virtual feature terminates each axis of the lattice."""
        trees = [make_tree([0.9]), make_tree([0.8])]
        iterator = CombinationIterator(trees, query(), enforce_2r=False)
        combos = []
        while True:
            combo = iterator.next()
            if combo is None:
                break
            combos.append(combo)
        assert len(combos) == 4  # (1+virtual) x (1+virtual)
        assert combos[-1].is_all_virtual

    def test_set_max_tightened_on_first_pull(self):
        trees = [make_tree([0.6, 0.5]), make_tree([0.4])]
        iterator = CombinationIterator(trees, query(), enforce_2r=False)
        # After construction each stream was pulled once: set_max exact.
        assert iterator.set_max[0] == pytest.approx(0.6)
        assert iterator.set_max[1] == pytest.approx(0.4)

    def test_threshold_drops_as_streams_drain(self):
        trees = [make_tree([0.9, 0.1]), make_tree([0.8, 0.2])]
        iterator = CombinationIterator(trees, query(), enforce_2r=False)
        first = iterator._threshold()
        while iterator.next() is not None:
            pass
        assert iterator._threshold() == float("-inf")
        assert first > 0.0

    def test_features_pulled_counter(self):
        trees = [make_tree([0.9, 0.8]), make_tree([0.7])]
        iterator = CombinationIterator(trees, query(), enforce_2r=False)
        while iterator.next() is not None:
            pass
        assert iterator.features_pulled == 3  # virtuals not counted


class TestValidityFilter:
    def test_far_pair_filtered_near_pair_kept(self):
        left = make_tree([0.9], x0=0.1)
        right = make_tree([0.8], x0=0.9)
        iterator = CombinationIterator(
            [left, right], query(radius=0.05), enforce_2r=True
        )
        combos = []
        while True:
            combo = iterator.next()
            if combo is None:
                break
            combos.append(combo)
        # (t1, t2) is invalid (0.8 apart > 2r = 0.1); the singles with a
        # virtual partner and the all-virtual combination survive.
        keys = [
            tuple(f.is_virtual for f in combo.features) for combo in combos
        ]
        assert (False, False) not in keys
        assert (False, True) in keys
        assert (True, False) in keys
        assert (True, True) in keys
