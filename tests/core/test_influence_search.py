"""Tests for the ISS extension algorithm (combination-free influence)."""

import random

import pytest

from repro.core.bruteforce import brute_force
from repro.core.influence_search import influence_search
from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError
from tests.conftest import random_mask


def _q(masks, k=5, radius=0.08, lam=0.5):
    return PreferenceQuery(
        k=k,
        radius=radius,
        lam=lam,
        keyword_masks=masks,
        variant=Variant.INFLUENCE,
    )


class TestCorrectness:
    @pytest.mark.parametrize("index", ["srt", "ir2"])
    def test_matches_brute_force(self, request, objects, feature_sets, index):
        processor = request.getfixturevalue(f"{index}_processor")
        rng = random.Random(41)
        for _ in range(4):
            query = _q((random_mask(rng), random_mask(rng)))
            got = influence_search(
                processor.object_tree, processor.feature_trees, query
            )
            want = brute_force(objects, feature_sets, query)
            assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_matches_stps_influence(self, srt_processor):
        """The two exact influence algorithms must agree."""
        rng = random.Random(43)
        for _ in range(3):
            query = _q((random_mask(rng), random_mask(rng)), k=7)
            a = srt_processor.query(query, algorithm="stps").scores
            b = srt_processor.query(query, algorithm="iss").scores
            assert a == pytest.approx(b, abs=1e-9)

    def test_k_exceeds_objects(self, srt_processor, objects):
        query = _q((0b11, 0b11), k=10_000)
        got = influence_search(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        assert len(got) == len(objects)

    def test_no_relevant_features(self, srt_processor):
        query = _q((1 << 31, 1 << 31), k=3)
        got = influence_search(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        assert len(got) == 3  # zero-score objects still returned

    def test_wrong_variant_rejected(self, srt_processor):
        query = PreferenceQuery(k=3, radius=0.1, lam=0.5, keyword_masks=(1, 1))
        with pytest.raises(QueryError):
            influence_search(
                srt_processor.object_tree, srt_processor.feature_trees, query
            )

    def test_set_count_mismatch(self, srt_processor):
        query = _q((1,))
        with pytest.raises(QueryError):
            influence_search(
                srt_processor.object_tree, srt_processor.feature_trees, query
            )


class TestBehaviour:
    def test_results_sorted_and_unique(self, srt_processor):
        query = _q((0b111, 0b111), k=20)
        result = influence_search(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        assert result.scores == sorted(result.scores, reverse=True)
        assert len(set(result.oids)) == len(result.oids)

    def test_exact_evaluations_bounded_by_objects(self, srt_processor, objects):
        """ISS evaluates each object at most once — its worst case is a
        batched scan, never the combination product of Algorithm 5."""
        query = _q((0b1111, 0b1111), k=3)
        result = influence_search(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        assert result.stats.objects_scored <= len(objects)

    def test_pruning_with_fine_grained_leaves(self):
        """With small pages (tight leaf MBRs) the lazy bounds do prune:
        far fewer exact evaluations than objects."""
        from repro.core.processor import QueryProcessor
        from repro.data.synthetic import (
            synthetic_feature_sets,
            synthetic_objects,
        )

        objects = synthetic_objects(2000, seed=3)
        feature_sets = synthetic_feature_sets(2, 2000, vocabulary=32, seed=4)
        processor = QueryProcessor.build(objects, feature_sets, page_size=512)
        query = _q((0b1111, 0b1111), k=3, radius=0.05)
        result = influence_search(
            processor.object_tree, processor.feature_trees, query
        )
        assert result.stats.objects_scored < len(objects) / 2
