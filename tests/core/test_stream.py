"""Tests for the sorted feature stream (Algorithm 4, lines 3-7)."""

import random

import pytest

from repro.core.stream import VIRTUAL_FID, FeatureStream, virtual_feature
from repro.index.ir2 import IR2Tree
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.text.similarity import jaccard
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_feature_objects, random_mask


@pytest.fixture(scope="module")
def dataset():
    vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
    return FeatureDataset(make_feature_objects(300, seed=55), vocab, "s")


@pytest.fixture(scope="module", params=[SRTIndex, IR2Tree])
def tree(request, dataset):
    return request.param.build(dataset)


def brute_force_scores(dataset, mask, lam):
    out = []
    for f in dataset:
        fm = f.keyword_mask()
        if fm & mask:
            out.append((round((1 - lam) * f.score + lam * jaccard(fm, mask), 12), f.fid))
    out.sort(key=lambda t: (-t[0], t[1]))
    return out


class TestOrdering:
    def test_descending_scores_and_completeness(self, tree, dataset):
        rng = random.Random(1)
        for _ in range(4):
            mask = random_mask(rng)
            stream = FeatureStream(tree, mask, 0.5)
            got = []
            while True:
                f = stream.next()
                if f is None:
                    break
                if not f.is_virtual:
                    got.append((round(f.score, 12), f.fid))
            expected = brute_force_scores(dataset, mask, 0.5)
            # Same multiset, non-increasing order.
            assert sorted(got) == sorted(expected)
            scores = [s for s, _ in got]
            assert scores == sorted(scores, reverse=True)

    def test_only_relevant_features_streamed(self, tree, dataset):
        mask = 1 << 3
        stream = FeatureStream(tree, mask, 0.5)
        while True:
            f = stream.next()
            if f is None:
                break
            if f.is_virtual:
                continue
            assert dataset.get(f.fid).keyword_mask() & mask


class TestVirtual:
    def test_virtual_is_last(self, tree):
        stream = FeatureStream(tree, 1 << 5, 0.5)
        items = []
        while True:
            f = stream.next()
            if f is None:
                break
            items.append(f)
        assert items[-1].is_virtual
        assert items[-1].score == 0.0
        assert items[-1].fid == VIRTUAL_FID
        assert sum(1 for f in items if f.is_virtual) == 1

    def test_virtual_suppressed(self, tree):
        stream = FeatureStream(tree, 1 << 5, 0.5, emit_virtual=False)
        while True:
            f = stream.next()
            if f is None:
                break
            assert not f.is_virtual

    def test_virtual_feature_helper(self):
        v = virtual_feature()
        assert v.is_virtual and v.score == 0.0


class TestNextBound:
    def test_bound_dominates_next(self, tree):
        rng = random.Random(2)
        mask = random_mask(rng)
        stream = FeatureStream(tree, mask, 0.5)
        while True:
            bound = stream.next_bound
            f = stream.next()
            if f is None:
                assert bound is None
                break
            assert bound is not None
            assert f.score <= bound + 1e-9

    def test_exhausted_flag(self, tree):
        stream = FeatureStream(tree, 1 << 2, 0.5)
        assert not stream.exhausted
        while stream.next() is not None:
            pass
        assert stream.exhausted
        assert stream.next() is None  # stays exhausted

    def test_empty_tree_stream(self, dataset):
        empty = SRTIndex.build(
            FeatureDataset([], dataset.vocabulary, "empty")
        )
        stream = FeatureStream(empty, 0b1, 0.5)
        f = stream.next()
        assert f is not None and f.is_virtual
        assert stream.next() is None

    def test_pull_counter(self, tree):
        stream = FeatureStream(tree, (1 << 1) | (1 << 9), 0.5)
        n = 0
        while True:
            f = stream.next()
            if f is None:
                break
            if not f.is_virtual:
                n += 1
        assert stream.pulled == n
