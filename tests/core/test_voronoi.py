"""Tests for incremental Voronoi cells over relevant features."""

import math
import random

import pytest

from repro.core.voronoi import (
    DATA_SPACE,
    clip_voronoi_cell,
    nearest_relevant,
    voronoi_cell,
)
from repro.geometry.polygon import ConvexPolygon
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.model.objects import FeatureObject
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_feature_objects, random_mask


@pytest.fixture(scope="module")
def world():
    vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
    dataset = FeatureDataset(make_feature_objects(120, seed=91), vocab, "V")
    tree = SRTIndex.build(dataset)
    return dataset, tree


class TestNearestRelevant:
    def test_increasing_distance_order(self, world):
        dataset, tree = world
        scorer = tree.make_scorer(0b111, 0.5)
        site = (0.5, 0.5)
        dists = [d for d, _ in nearest_relevant(tree, scorer, site)]
        assert dists == sorted(dists)

    def test_only_relevant_yielded(self, world):
        dataset, tree = world
        mask = 1 << 7
        scorer = tree.make_scorer(mask, 0.5)
        for _, entry in nearest_relevant(tree, scorer, (0.3, 0.3)):
            assert entry.mask & mask

    def test_completeness(self, world):
        dataset, tree = world
        mask = 0b11
        scorer = tree.make_scorer(mask, 0.5)
        got = sorted(e.fid for _, e in nearest_relevant(tree, scorer, (0, 0)))
        want = sorted(
            f.fid for f in dataset if f.keyword_mask() & mask
        )
        assert got == want

    def test_empty_tree(self, world):
        dataset, _ = world
        empty = SRTIndex.build(FeatureDataset([], dataset.vocabulary, "e"))
        scorer = empty.make_scorer(1, 0.5)
        assert list(nearest_relevant(empty, scorer, (0.5, 0.5))) == []


class TestVoronoiCell:
    """Cell membership must exactly match the nearest-relevant relation."""

    @pytest.mark.parametrize("seed", range(4))
    def test_cell_membership_is_nn(self, world, seed):
        dataset, tree = world
        rng = random.Random(seed)
        mask = random_mask(rng, 4)
        scorer = tree.make_scorer(mask, 0.5)
        relevant = [f for f in dataset if f.keyword_mask() & mask]
        if not relevant:
            pytest.skip("no relevant features for this mask")
        site = rng.choice(relevant)
        cell = voronoi_cell(tree, scorer, site.location, site.fid)
        for _ in range(300):
            p = (rng.random(), rng.random())
            nearest = min(
                relevant,
                key=lambda f: (math.hypot(f.x - p[0], f.y - p[1]), f.fid),
            )
            if cell.contains(p):
                # p's nearest relevant feature is (within ties) the site.
                d_site = math.hypot(site.x - p[0], site.y - p[1])
                d_best = math.hypot(nearest.x - p[0], nearest.y - p[1])
                assert d_site <= d_best + 1e-6
            elif nearest.fid == site.fid:
                # Missing a true member is only excusable on the boundary.
                second = min(
                    (f for f in relevant if f.fid != site.fid),
                    key=lambda f: math.hypot(f.x - p[0], f.y - p[1]),
                    default=None,
                )
                if second is not None:
                    d_site = math.hypot(site.x - p[0], site.y - p[1])
                    d2 = math.hypot(second.x - p[0], second.y - p[1])
                    assert abs(d_site - d2) < 1e-6

    def test_cells_partition_space(self, world):
        """Cells of all relevant features tile the data space."""
        dataset, tree = world
        mask = 0b1111
        scorer = tree.make_scorer(mask, 0.5)
        relevant = [f for f in dataset if f.keyword_mask() & mask]
        cells = [
            voronoi_cell(tree, scorer, f.location, f.fid) for f in relevant
        ]
        total_area = sum(c.area() for c in cells)
        assert total_area == pytest.approx(1.0, abs=1e-6)

    def test_single_relevant_feature_owns_everything(self, world):
        dataset, tree = world
        # Build a one-relevant-feature world within the same tree by using
        # a mask only one feature matches, if it exists; otherwise skip.
        from collections import Counter

        counts = Counter()
        for f in dataset:
            for kw in f.keywords:
                counts[kw] += 1
        singletons = [kw for kw, n in counts.items() if n == 1]
        if not singletons:
            pytest.skip("no singleton keyword in dataset")
        kw = singletons[0]
        mask = 1 << kw
        scorer = tree.make_scorer(mask, 0.5)
        owner = next(f for f in dataset if kw in f.keywords)
        cell = voronoi_cell(tree, scorer, owner.location, owner.fid)
        assert cell.area() == pytest.approx(1.0, abs=1e-9)

    def test_clip_from_empty_region(self, world):
        dataset, tree = world
        scorer = tree.make_scorer(0b1, 0.5)
        f = next(f for f in dataset if f.keyword_mask() & 0b1)
        out = clip_voronoi_cell(
            tree, scorer, f.location, f.fid, ConvexPolygon()
        )
        assert out.is_empty

    def test_data_space_constant(self):
        assert DATA_SPACE.low == (0.0, 0.0)
        assert DATA_SPACE.high == (1.0, 1.0)
