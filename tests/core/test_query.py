"""Tests for query construction and validation."""

import pytest

from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError
from repro.model.dataset import FeatureDataset
from repro.model.objects import FeatureObject
from repro.text.vocabulary import Vocabulary


def valid_query(**overrides):
    base = dict(k=10, radius=0.05, lam=0.5, keyword_masks=(0b11, 0b100))
    base.update(overrides)
    return PreferenceQuery(**base)


class TestValidation:
    def test_valid(self):
        q = valid_query()
        assert q.c == 2
        assert q.variant is Variant.RANGE

    @pytest.mark.parametrize("k", [-1, -3])
    def test_bad_k(self, k):
        with pytest.raises(QueryError):
            valid_query(k=k)

    def test_k_zero_is_legal(self):
        # k=0 is a valid degenerate request (empty top-k); the serving
        # layer must answer it, not 500 on it.
        assert valid_query(k=0).k == 0

    @pytest.mark.parametrize("radius", [0.0, -0.1])
    def test_bad_radius(self, radius):
        with pytest.raises(QueryError):
            valid_query(radius=radius)

    @pytest.mark.parametrize("lam", [-0.1, 1.1])
    def test_bad_lambda(self, lam):
        with pytest.raises(QueryError):
            valid_query(lam=lam)

    def test_boundary_lambda_ok(self):
        valid_query(lam=0.0)
        valid_query(lam=1.0)

    def test_no_feature_sets(self):
        with pytest.raises(QueryError):
            valid_query(keyword_masks=())

    def test_empty_keyword_set_rejected(self):
        with pytest.raises(QueryError):
            valid_query(keyword_masks=(0b11, 0))

    def test_negative_mask_rejected(self):
        with pytest.raises(QueryError):
            valid_query(keyword_masks=(-1,))


class TestFromTerms:
    @pytest.fixture
    def restaurants(self):
        vocab = Vocabulary(["pizza", "italian", "sushi"])
        return FeatureDataset(
            [FeatureObject(0, 0.1, 0.1, 0.5, frozenset({0}))], vocab, "r"
        )

    def test_resolution(self, restaurants):
        q = PreferenceQuery.from_terms(
            5, 0.01, 0.5, [["pizza", "italian"]], [restaurants]
        )
        assert q.keyword_masks == (0b11,)

    def test_unknown_terms_dropped(self, restaurants):
        q = PreferenceQuery.from_terms(
            5, 0.01, 0.5, [["pizza", "burgers"]], [restaurants]
        )
        assert q.keyword_masks == (0b1,)

    def test_all_unknown_rejected(self, restaurants):
        with pytest.raises(QueryError):
            PreferenceQuery.from_terms(
                5, 0.01, 0.5, [["burgers", "tacos"]], [restaurants]
            )

    def test_count_mismatch(self, restaurants):
        with pytest.raises(QueryError):
            PreferenceQuery.from_terms(
                5, 0.01, 0.5, [["pizza"], ["pizza"]], [restaurants]
            )

    def test_variant_passthrough(self, restaurants):
        q = PreferenceQuery.from_terms(
            5, 0.01, 0.5, [["pizza"]], [restaurants], Variant.NEAREST
        )
        assert q.variant is Variant.NEAREST


class TestWithVariant:
    def test_copy_changes_only_variant(self):
        q = valid_query()
        q2 = q.with_variant(Variant.INFLUENCE)
        assert q2.variant is Variant.INFLUENCE
        assert (q2.k, q2.radius, q2.lam, q2.keyword_masks) == (
            q.k,
            q.radius,
            q.lam,
            q.keyword_masks,
        )
