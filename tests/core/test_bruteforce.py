"""Tests for the brute-force oracle itself (hand-computed examples).

The oracle validates the optimized algorithms, so it gets its own checks
against the paper's worked example (Figures 2-4, Section 3)."""

import math

import pytest

from repro.core.bruteforce import brute_force, component_score, object_score
from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary

# The paper's restaurants (Figure 2), with locations scaled by 1/10 to fit
# the unit square.  Keywords as in the figure.
VOCAB = Vocabulary(
    [
        "chinese", "asian", "greek", "mediterranean", "italian", "spanish",
        "european", "buffet", "pizza", "sandwiches", "subs", "seafood",
        "american", "coffee", "tea", "bistro",
        "cake", "bread", "pastries", "cappuccino", "toast", "decaf",
        "donuts", "iced-coffee", "muffins", "croissants", "espresso",
        "macchiato",
    ]
)


def _r(fid, name_kw, rating, x, y):
    return FeatureObject(
        fid, x / 10, y / 10, rating, VOCAB.encode(name_kw)
    )


RESTAURANTS = FeatureDataset(
    [
        _r(1, ["chinese", "asian"], 0.6, 1, 2),
        _r(2, ["greek", "mediterranean"], 0.5, 4, 1),
        _r(3, ["italian", "spanish", "european"], 0.8, 5, 8),
        _r(4, ["chinese", "buffet"], 0.8, 2, 3),
        _r(5, ["pizza", "sandwiches", "subs"], 0.9, 8, 4),
        _r(6, ["pizza", "italian"], 0.8, 7, 6),
        _r(7, ["seafood", "mediterranean"], 0.8, 6, 10),
        _r(8, ["american", "coffee", "tea", "bistro"], 1.0, 3, 7),
    ],
    VOCAB,
    "restaurants",
)

COFFEEHOUSES = FeatureDataset(
    [
        _r(1, ["cake", "bread", "pastries"], 0.6, 4, 1),
        _r(2, ["cappuccino", "toast", "decaf"], 0.5, 4, 7),
        _r(3, ["cake", "toast", "donuts"], 0.8, 3, 10),
        _r(4, ["cappuccino", "iced-coffee", "tea"], 0.6, 6, 2),
        _r(5, ["muffins", "croissants", "espresso"], 0.9, 5, 5),
        _r(6, ["macchiato", "espresso", "decaf"], 1.0, 10, 3),
        _r(7, ["muffins", "pastries", "espresso"], 0.7, 6, 9),
        _r(8, ["croissants", "decaf", "tea"], 0.4, 7, 6),
    ],
    VOCAB,
    "coffeehouses",
)


def mask_of(*terms):
    m = 0
    for t in terms:
        m |= 1 << VOCAB.require_id(t)
    return m


class TestPaperExample:
    """Reproduces the running example of Sections 3 and 6.4."""

    def test_ontarios_pizza_is_best_restaurant(self):
        # p at (6, 5)/10 as in Figure 4, r = 3.5/10.
        q = PreferenceQuery(
            k=1,
            radius=0.35,
            lam=0.5,
            keyword_masks=(mask_of("italian", "pizza"),),
        )
        score = component_score(0.6, 0.5, RESTAURANTS, q.keyword_masks[0], q)
        assert score == pytest.approx(0.9)  # s(r6) per the paper

    def test_beijing_restaurant_score(self):
        q = PreferenceQuery(
            k=1,
            radius=2.0,
            lam=0.5,
            keyword_masks=(mask_of("chinese",),),
        )
        # The best Chinese restaurant in range is r4 "Golden Wok"
        # (rating 0.8, J = 1/2): s = 0.4 + 0.25 = 0.65 > s(r1) = 0.55.
        score = component_score(0.1, 0.2, RESTAURANTS, q.keyword_masks[0], q)
        assert score == pytest.approx(0.5 * 0.8 + 0.5 * 0.5)

    def test_combined_score_section_3(self):
        """τ(p) = s(r6) + s(c5) = 0.9 + 0.78333 ≈ 1.6833 (the paper
        rounds 0.78233; (0.9 + 2/3 * ... ) -- check the exact Jaccard)."""
        q = PreferenceQuery(
            k=1,
            radius=0.35,
            lam=0.5,
            keyword_masks=(
                mask_of("italian", "pizza"),
                mask_of("espresso", "muffins"),
            ),
        )
        total = object_score(0.6, 0.5, [RESTAURANTS, COFFEEHOUSES], q)
        # s(c5): rating 0.9, keywords {muffins, croissants, espresso},
        # query {espresso, muffins}: J = 2/3 -> 0.45 + 1/3 = 0.78333.
        assert total == pytest.approx(0.9 + 0.45 + 1.0 / 3.0, abs=1e-6)

    def test_top3_data_objects_section_6_4(self):
        """p6, p9, p10 of Figure 6 are the top-3 with equal scores."""
        objects = ObjectDataset(
            [
                DataObject(6, 0.55, 0.55),
                DataObject(9, 0.62, 0.48),
                DataObject(10, 0.60, 0.52),
                DataObject(1, 0.10, 0.90),
                DataObject(2, 0.95, 0.10),
            ]
        )
        q = PreferenceQuery(
            k=3,
            radius=0.35,
            lam=0.5,
            keyword_masks=(
                mask_of("italian", "pizza"),
                mask_of("espresso", "muffins"),
            ),
        )
        result = brute_force(objects, [RESTAURANTS, COFFEEHOUSES], q)
        assert sorted(result.oids) == [6, 9, 10]
        for s in result.scores:
            assert s == pytest.approx(0.9 + 0.78333, abs=1e-4)


class TestVariantDefinitions:
    def test_influence_decays_with_distance(self):
        q = PreferenceQuery(
            k=1,
            radius=0.1,
            lam=0.0,
            keyword_masks=(mask_of("pizza"),),
            variant=Variant.INFLUENCE,
        )
        near = component_score(0.7, 0.6, RESTAURANTS, q.keyword_masks[0], q)
        far = component_score(0.1, 0.1, RESTAURANTS, q.keyword_masks[0], q)
        assert near > far > 0.0

    def test_influence_at_zero_distance_equals_s(self):
        q = PreferenceQuery(
            k=1,
            radius=0.1,
            lam=0.0,
            keyword_masks=(mask_of("pizza"),),
            variant=Variant.INFLUENCE,
        )
        # r6 is at (0.7, 0.6) with rating 0.8.
        score = component_score(0.7, 0.6, RESTAURANTS, q.keyword_masks[0], q)
        assert score == pytest.approx(0.8)

    def test_nearest_picks_closest_relevant(self):
        q = PreferenceQuery(
            k=1,
            radius=0.1,
            lam=0.0,
            keyword_masks=(mask_of("pizza"),),
            variant=Variant.NEAREST,
        )
        # From (0.8, 0.45): r5 (pizza, at (0.8, 0.4)) is nearest relevant.
        score = component_score(0.8, 0.45, RESTAURANTS, q.keyword_masks[0], q)
        assert score == pytest.approx(0.9)  # r5's rating with lam=0

    def test_range_empty_neighborhood_scores_zero(self):
        q = PreferenceQuery(
            k=1,
            radius=0.01,
            lam=0.5,
            keyword_masks=(mask_of("pizza"),),
        )
        assert component_score(0.0, 0.99, RESTAURANTS, q.keyword_masks[0], q) == 0.0


class TestValidation:
    def test_feature_set_count_mismatch(self):
        q = PreferenceQuery(k=1, radius=0.1, lam=0.5, keyword_masks=(1, 1))
        with pytest.raises(QueryError):
            brute_force(ObjectDataset([]), [RESTAURANTS], q)
