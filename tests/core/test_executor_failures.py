"""Regression tests: a worker exception must never wedge a batch.

Before ``on_error`` existed, ``query_many`` resolved futures in order and
re-raised the first exception immediately, abandoning every later future
(the pool kept running them, their outcomes lost).  These tests pin the
repaired contract: all futures settle first, failures come back as
structured :class:`~repro.core.executor.QueryFailure` records (or one
deferred re-raise), and the executor stays usable afterwards.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.executor import (
    EXECUTOR_FAILURES,
    BatchReport,
    QueryExecutor,
    QueryFailure,
)
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery
from repro.errors import QueryError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.text.vocabulary import Vocabulary
from tests.conftest import make_data_objects, make_feature_objects

VOCAB = Vocabulary(f"kw{i}" for i in range(16))
POISON_RADIUS = 0.031337  # the radius the flaky processor faults on


def _query(seed=0, radius=0.05):
    rng = random.Random(seed)
    masks = tuple(
        sum(1 << t for t in rng.sample(range(len(VOCAB)), 3))
        for _ in range(2)
    )
    return PreferenceQuery(5, radius, 0.5, masks)


@pytest.fixture(scope="module")
def processor():
    objects = ObjectDataset(make_data_objects(120, seed=31))
    feature_sets = [
        FeatureDataset(
            make_feature_objects(80, seed=32 + j, vocab_size=len(VOCAB)),
            VOCAB,
            f"set{j}",
        )
        for j in range(2)
    ]
    return QueryProcessor.build(objects, feature_sets)


class _FlakyProcessor:
    """Delegates to a real processor, faulting on the poison radius."""

    def __init__(self, inner):
        self._inner = inner

    def trees(self):
        return self._inner.trees()

    def query(self, query, **kwargs):
        if query.radius == POISON_RADIUS:
            raise RuntimeError("simulated worker crash")
        return self._inner.query(query, **kwargs)


class TestOnErrorReturn:
    def test_failures_are_structured_and_batch_completes(self, processor):
        flaky = _FlakyProcessor(processor)
        queries = [
            _query(seed=1),
            _query(seed=2, radius=POISON_RADIUS),
            _query(seed=3),
            _query(seed=4, radius=POISON_RADIUS),
            _query(seed=5),
        ]
        with QueryExecutor(flaky, max_workers=3) as executor:
            report = executor.run(queries, on_error="return")
        assert isinstance(report, BatchReport)
        assert [r is None for r in report.results] == [
            False, True, False, True, False,
        ]
        assert len(report.failures) == 2
        for failure, expected_index in zip(report.failures, (1, 3)):
            assert isinstance(failure, QueryFailure)
            assert failure.index == expected_index
            assert failure.query is queries[expected_index]
            assert isinstance(failure.error, RuntimeError)
            assert "simulated worker crash" in failure.message
            assert failure.describe()["error"] == "RuntimeError"
        # Successful positions match a serial run exactly.
        for i in (0, 2, 4):
            expected = processor.query(queries[i])
            assert [
                (item.oid, item.score) for item in report.results[i].items
            ] == [(item.oid, item.score) for item in expected.items]

    def test_dedup_maps_failure_to_first_occurrence(self, processor):
        flaky = _FlakyProcessor(processor)
        bad = _query(seed=7, radius=POISON_RADIUS)
        queries = [_query(seed=6), bad, bad, _query(seed=6)]
        with QueryExecutor(flaky, max_workers=2) as executor:
            report = executor.run(queries, on_error="return", dedup=True)
        assert report.results[1] is None and report.results[2] is None
        assert report.results[0] is not None
        assert report.results[3] is report.results[0]  # shared via dedup
        assert len(report.failures) == 1  # one failed *execution*
        assert report.failures[0].index == 1

    def test_aggregate_phase_times_skips_failed_positions(self, processor):
        flaky = _FlakyProcessor(processor)
        queries = [_query(seed=8), _query(seed=9, radius=POISON_RADIUS)]
        with QueryExecutor(flaky, max_workers=2) as executor:
            report = executor.run(queries, on_error="return")
        assert report.aggregate_phase_times() == {}  # tracing off, no crash

    def test_failures_counted_in_metrics(self, processor):
        flaky = _FlakyProcessor(processor)
        series = EXECUTOR_FAILURES.labels(
            algorithm="stps", error="RuntimeError"
        )
        before = series.value
        with QueryExecutor(flaky, max_workers=2) as executor:
            executor.query_many(
                [_query(seed=10, radius=POISON_RADIUS)], on_error="return"
            )
        assert series.value == before + 1


class TestOnErrorRaise:
    def test_raise_waits_for_whole_batch(self, processor):
        """The default mode re-raises, but only after every future ran."""
        ran: list[int] = []

        class Recording(_FlakyProcessor):
            def query(self, query, **kwargs):
                result = super().query(query, **kwargs)
                ran.append(query.k)
                return result

        flaky = Recording(processor)
        queries = [
            _query(seed=11, radius=POISON_RADIUS),
            _query(seed=12),
            _query(seed=13),
        ]
        with QueryExecutor(flaky, max_workers=1) as executor:
            with pytest.raises(RuntimeError, match="simulated"):
                executor.query_many(queries)
        # Single worker, poison first: later queries still executed.
        assert len(ran) == 2

    def test_executor_usable_after_failure(self, processor):
        flaky = _FlakyProcessor(processor)
        with QueryExecutor(flaky, max_workers=2) as executor:
            with pytest.raises(RuntimeError):
                executor.query_many([_query(seed=14, radius=POISON_RADIUS)])
            ok = executor.query_many([_query(seed=15)])
            assert len(ok) == 1 and ok[0] is not None

    def test_unknown_mode_rejected(self, processor):
        with QueryExecutor(processor, max_workers=1) as executor:
            with pytest.raises(QueryError, match="on_error"):
                executor.query_many([_query(seed=16)], on_error="ignore")


class TestAllFailuresPercentiles:
    """An all-failures batch has no latency samples — percentiles must
    come back NaN (not raise, not a made-up 0.0)."""

    def test_percentiles_are_nan_not_an_exception(self, processor):
        flaky = _FlakyProcessor(processor)
        queries = [
            _query(seed=20 + i, radius=POISON_RADIUS) for i in range(3)
        ]
        with QueryExecutor(flaky, max_workers=2) as executor:
            report = executor.run(queries, on_error="return")
        assert all(r is None for r in report.results)
        assert len(report.failures) == 3
        latency = report.latency_percentiles()
        queue_wait = report.queue_wait_percentiles()
        assert set(latency) == set(queue_wait) == {"p50", "p95", "p99"}
        assert all(math.isnan(v) for v in latency.values())
        assert all(math.isnan(v) for v in queue_wait.values())
        for prop in (
            report.latency_p50_s, report.latency_p95_s,
            report.latency_p99_s, report.queue_wait_p50_s,
            report.queue_wait_p95_s, report.queue_wait_p99_s,
        ):
            assert math.isnan(prop)
        # Derived aggregates stay well-defined numbers.
        assert report.throughput_qps >= 0.0

    def test_empty_report_percentiles_are_nan(self):
        report = BatchReport()
        assert math.isnan(report.latency_percentiles()["p50"])
        assert math.isnan(report.queue_wait_percentiles()["p99"])
