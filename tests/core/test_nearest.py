"""Tests for the nearest-neighbor STPS variant (Section 7.2)."""

import random

import pytest

from repro.core.bruteforce import brute_force
from repro.core.nearest import stps_nearest
from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError
from tests.conftest import random_mask


def _q(masks, k=5, radius=0.08, lam=0.5):
    return PreferenceQuery(
        k=k,
        radius=radius,
        lam=lam,
        keyword_masks=masks,
        variant=Variant.NEAREST,
    )


class TestCorrectness:
    @pytest.mark.parametrize("index", ["srt", "ir2"])
    def test_matches_brute_force(self, request, objects, feature_sets, index):
        processor = request.getfixturevalue(f"{index}_processor")
        rng = random.Random(37)
        for _ in range(4):
            query = _q((random_mask(rng), random_mask(rng)))
            got = stps_nearest(
                processor.object_tree, processor.feature_trees, query
            )
            want = brute_force(objects, feature_sets, query)
            assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_lambda_zero(self, srt_processor, objects, feature_sets):
        query = _q((0b1100, 0b0011), lam=0.0)
        got = stps_nearest(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_rare_keywords(self, srt_processor, objects, feature_sets):
        query = _q((1 << 31, 1 << 30))
        got = stps_nearest(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)

    def test_larger_k(self, srt_processor, objects, feature_sets):
        query = _q((0b111, 0b111), k=40)
        got = stps_nearest(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        want = brute_force(objects, feature_sets, query)
        assert got.scores == pytest.approx(want.scores, abs=1e-9)


class TestBehaviour:
    def test_no_duplicates(self, srt_processor):
        query = _q((0b111, 0b111), k=30)
        result = stps_nearest(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        assert len(set(result.oids)) == len(result.oids)

    def test_voronoi_cost_tracked(self, srt_processor):
        query = _q((0b111, 0b111))
        result = stps_nearest(
            srt_processor.object_tree, srt_processor.feature_trees, query
        )
        assert result.stats.voronoi_cpu_s > 0.0
        logical = result.stats.io_reads + result.stats.buffer_hits
        assert logical > 0

    def test_wrong_variant_rejected(self, srt_processor):
        query = PreferenceQuery(k=5, radius=0.1, lam=0.5, keyword_masks=(1, 1))
        with pytest.raises(QueryError):
            stps_nearest(
                srt_processor.object_tree, srt_processor.feature_trees, query
            )
