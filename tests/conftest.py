"""Shared fixtures: small deterministic datasets and built processors."""

from __future__ import annotations

import random

import pytest

from repro.core.processor import QueryProcessor
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary

VOCAB_SIZE = 32


def make_feature_objects(
    n: int, seed: int, vocab_size: int = VOCAB_SIZE, max_kw: int = 3
) -> list[FeatureObject]:
    """Deterministic random feature objects in the unit square."""
    rng = random.Random(seed)
    return [
        FeatureObject(
            i,
            rng.random(),
            rng.random(),
            round(rng.random(), 3),
            frozenset(rng.sample(range(vocab_size), rng.randint(1, max_kw))),
        )
        for i in range(n)
    ]


def make_data_objects(n: int, seed: int) -> list[DataObject]:
    """Deterministic random data objects in the unit square."""
    rng = random.Random(seed)
    return [DataObject(i, rng.random(), rng.random()) for i in range(n)]


def random_mask(rng: random.Random, terms: int = 3) -> int:
    """A random query-keyword mask of ``terms`` distinct terms."""
    mask = 0
    for t in rng.sample(range(VOCAB_SIZE), terms):
        mask |= 1 << t
    return mask


@pytest.fixture(scope="session")
def vocab() -> Vocabulary:
    return Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))


@pytest.fixture(scope="session")
def objects() -> ObjectDataset:
    return ObjectDataset(make_data_objects(250, seed=10))


@pytest.fixture(scope="session")
def feature_sets(vocab) -> list[FeatureDataset]:
    return [
        FeatureDataset(make_feature_objects(150, seed=11), vocab, "A"),
        FeatureDataset(make_feature_objects(150, seed=12), vocab, "B"),
    ]


@pytest.fixture(scope="session")
def srt_processor(objects, feature_sets) -> QueryProcessor:
    return QueryProcessor.build(objects, feature_sets, index="srt")


@pytest.fixture(scope="session")
def ir2_processor(objects, feature_sets) -> QueryProcessor:
    return QueryProcessor.build(objects, feature_sets, index="ir2")
