"""Shared fixtures: small deterministic datasets and built processors.

Also home of the hypothesis reproducibility plumbing: the ``repro-live``
settings profile is *derandomized* by default (examples derive from the
test function, not a per-run RNG), so stateful suites behave identically
in CI; hypothesis' own ``--hypothesis-seed N`` option switches the
profile to seeded random exploration for local bug hunting (the plugin
applies the seed, this conftest just stops derandomizing, which would
override it).  Suites opt in by loading the profile in their own
conftest; the active seed is printed alongside any hypothesis failure.
"""

from __future__ import annotations

import os
import random
import sys

import pytest

from repro.core.processor import QueryProcessor
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary

VOCAB_SIZE = 32

#: Environment fallback for the seed (CLI wins); lets wrapper scripts
#: seed hypothesis suites without threading pytest options through.
HYPOTHESIS_SEED_ENV = "REPRO_HYPOTHESIS_SEED"


def hypothesis_seed() -> str | None:
    """The requested hypothesis seed, or None (derandomized profile).

    Read from ``--hypothesis-seed`` on the command line (the option is
    hypothesis' own — its plugin applies the seed; this repo only stops
    derandomizing so the seed can take effect) or from
    ``REPRO_HYPOTHESIS_SEED``.  Parsed from ``sys.argv`` because the
    profile must be registered at conftest *import* time — directory
    conftests load before ``pytest_configure`` sees parsed options.
    """
    for i, arg in enumerate(sys.argv):
        if arg == "--hypothesis-seed" and i + 1 < len(sys.argv):
            return sys.argv[i + 1]
        if arg.startswith("--hypothesis-seed="):
            return arg.split("=", 1)[1]
    return os.environ.get(HYPOTHESIS_SEED_ENV) or None


def _register_live_profile() -> None:
    try:
        from hypothesis import HealthCheck, settings
    except ImportError:  # pragma: no cover - hypothesis is a test dep
        return
    settings.register_profile(
        "repro-live",
        derandomize=hypothesis_seed() is None,
        deadline=None,
        max_examples=25,
        print_blob=True,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.data_too_large,
            HealthCheck.filter_too_much,
        ],
    )


_register_live_profile()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item: pytest.Item, call: pytest.CallInfo):
    """Attach the reproduction recipe to failing hypothesis tests."""
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    function = getattr(item, "function", None)
    if function is None or not hasattr(function, "hypothesis"):
        return
    seed = hypothesis_seed()
    if seed is not None:
        note = (
            f"this run used --hypothesis-seed={seed}; pass the same value "
            "to reproduce the exploration order"
        )
    else:
        note = (
            "derandomized profile (no per-run seed): re-running reproduces "
            "this failure as-is; use --hypothesis-seed=N to explore further"
        )
    report.sections.append(("hypothesis seed", note))


def make_feature_objects(
    n: int, seed: int, vocab_size: int = VOCAB_SIZE, max_kw: int = 3
) -> list[FeatureObject]:
    """Deterministic random feature objects in the unit square."""
    rng = random.Random(seed)
    return [
        FeatureObject(
            i,
            rng.random(),
            rng.random(),
            round(rng.random(), 3),
            frozenset(rng.sample(range(vocab_size), rng.randint(1, max_kw))),
        )
        for i in range(n)
    ]


def make_data_objects(n: int, seed: int) -> list[DataObject]:
    """Deterministic random data objects in the unit square."""
    rng = random.Random(seed)
    return [DataObject(i, rng.random(), rng.random()) for i in range(n)]


def random_mask(rng: random.Random, terms: int = 3) -> int:
    """A random query-keyword mask of ``terms`` distinct terms."""
    mask = 0
    for t in rng.sample(range(VOCAB_SIZE), terms):
        mask |= 1 << t
    return mask


@pytest.fixture(scope="session")
def vocab() -> Vocabulary:
    return Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))


@pytest.fixture(scope="session")
def objects() -> ObjectDataset:
    return ObjectDataset(make_data_objects(250, seed=10))


@pytest.fixture(scope="session")
def feature_sets(vocab) -> list[FeatureDataset]:
    return [
        FeatureDataset(make_feature_objects(150, seed=11), vocab, "A"),
        FeatureDataset(make_feature_objects(150, seed=12), vocab, "B"),
    ]


@pytest.fixture(scope="session")
def srt_processor(objects, feature_sets) -> QueryProcessor:
    return QueryProcessor.build(objects, feature_sets, index="srt")


@pytest.fixture(scope="session")
def ir2_processor(objects, feature_sets) -> QueryProcessor:
    return QueryProcessor.build(objects, feature_sets, index="ir2")
