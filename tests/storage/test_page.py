"""Tests for fixed-size page encoding/decoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PageCorruptedError, PageOverflowError
from repro.storage.page import HEADER_SIZE, Page


class TestEncodeDecode:
    def test_roundtrip(self):
        page = Page(3, b"hello world")
        raw = page.encode(256)
        assert len(raw) == 256
        decoded = Page.decode(3, raw, 256)
        assert decoded.payload == b"hello world"
        assert decoded.page_id == 3

    def test_empty_payload(self):
        raw = Page(0, b"").encode(64)
        assert Page.decode(0, raw, 64).payload == b""

    def test_exact_fit(self):
        payload = b"x" * Page.capacity(128)
        raw = Page(1, payload).encode(128)
        assert Page.decode(1, raw, 128).payload == payload

    def test_overflow(self):
        payload = b"x" * (Page.capacity(128) + 1)
        with pytest.raises(PageOverflowError) as exc:
            Page(1, payload).encode(128)
        assert exc.value.capacity == 128

    def test_capacity(self):
        assert Page.capacity(4096) == 4096 - HEADER_SIZE

    @given(st.binary(max_size=200))
    def test_roundtrip_arbitrary_bytes(self, payload):
        raw = Page(7, payload).encode(256)
        assert Page.decode(7, raw, 256).payload == payload


class TestCorruption:
    def test_wrong_length(self):
        with pytest.raises(PageCorruptedError):
            Page.decode(0, b"\x00" * 100, 256)

    def test_flipped_payload_byte(self):
        raw = bytearray(Page(0, b"payload-bytes").encode(256))
        raw[HEADER_SIZE + 2] ^= 0xFF
        with pytest.raises(PageCorruptedError) as exc:
            Page.decode(0, bytes(raw), 256)
        assert "checksum" in str(exc.value)

    def test_absurd_length_field(self):
        raw = bytearray(Page(0, b"abc").encode(256))
        raw[0:4] = (10_000).to_bytes(4, "little")
        with pytest.raises(PageCorruptedError):
            Page.decode(0, bytes(raw), 256)
