"""Tests for memory- and disk-backed page files."""

import os

import pytest

from repro.errors import PageNotFoundError, StorageError
from repro.storage.page import Page
from repro.storage.pagefile import DiskPageFile, MemoryPageFile


class TestMemoryPageFile:
    def test_allocate_sequential_ids(self):
        pf = MemoryPageFile(page_size=128)
        assert [pf.allocate() for _ in range(3)] == [0, 1, 2]
        assert pf.page_count == 3

    def test_write_read_roundtrip(self):
        pf = MemoryPageFile(page_size=128)
        pid = pf.allocate()
        pf.write(Page(pid, b"abc"))
        assert pf.read(pid).payload == b"abc"

    def test_read_unallocated(self):
        pf = MemoryPageFile(page_size=128)
        with pytest.raises(PageNotFoundError):
            pf.read(0)

    def test_write_unallocated(self):
        pf = MemoryPageFile(page_size=128)
        with pytest.raises(PageNotFoundError):
            pf.write(Page(5, b"x"))

    def test_stats_counting(self):
        pf = MemoryPageFile(page_size=128)
        pid = pf.allocate()
        pf.write(Page(pid, b"x"))
        pf.read(pid)
        pf.read(pid)
        assert pf.stats.writes == 1
        assert pf.stats.reads == 2

    def test_tiny_page_size_rejected(self):
        with pytest.raises(StorageError):
            MemoryPageFile(page_size=16)

    def test_corrupt_helper_breaks_read(self):
        from repro.errors import PageCorruptedError

        pf = MemoryPageFile(page_size=128)
        pid = pf.allocate()
        pf.write(Page(pid, b"some payload here"))
        pf.corrupt(pid)
        with pytest.raises(PageCorruptedError):
            pf.read(pid)


class TestDiskPageFile:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128) as pf:
            pid = pf.allocate()
            pf.write(Page(pid, b"persisted"))
            assert pf.read(pid).payload == b"persisted"

    def test_reopen_preserves_pages(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128) as pf:
            pid0 = pf.allocate()
            pid1 = pf.allocate()
            pf.write(Page(pid0, b"zero"))
            pf.write(Page(pid1, b"one"))
            pf.flush()
        with DiskPageFile(path, page_size=128) as pf:
            assert pf.page_count == 2
            assert pf.read(pid0).payload == b"zero"
            assert pf.read(pid1).payload == b"one"

    def test_fresh_allocation_readable(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128) as pf:
            pid = pf.allocate()
            assert pf.read(pid).payload == b""

    def test_out_of_range_read(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128) as pf:
            with pytest.raises(PageNotFoundError):
                pf.read(0)

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128) as pf:
            pf.allocate()
            pf.flush()
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 17)  # not a page multiple
        with pytest.raises(StorageError):
            DiskPageFile(path, page_size=128)

    def test_file_size_matches_pages(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128) as pf:
            for _ in range(4):
                pf.allocate()
            pf.flush()
            assert os.path.getsize(path) == 4 * 128

    @pytest.mark.parametrize("mmap_reads", [False, True])
    def test_one_physical_read_per_page_read(self, tmp_path, mmap_reads):
        # Regression: the old implementation re-opened the file on every
        # read; now one descriptor serves the lifetime and each read()
        # costs exactly one positioned read against it.
        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128, mmap_reads=mmap_reads) as pf:
            pids = [pf.allocate() for _ in range(3)]
            for pid in pids:
                pf.write(Page(pid, b"payload %d" % pid))
            fd = pf._fd
            for i, pid in enumerate(pids * 2, start=1):
                assert pf.read(pid).payload == b"payload %d" % pid
                assert pf.stats.reads == i
                assert pf._fd == fd  # never re-opened

    def test_mmap_view_tracks_growth(self, tmp_path):
        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128, mmap_reads=True) as pf:
            pid0 = pf.allocate()
            pf.write(Page(pid0, b"first"))
            assert pf.read(pid0).payload == b"first"
            # Growing the file past the existing map must remap, and a
            # write through pwrite must be visible through the map.
            pid1 = pf.allocate()
            pf.write(Page(pid1, b"second"))
            assert pf.read(pid1).payload == b"second"
            pf.write(Page(pid0, b"updated"))
            assert pf.read(pid0).payload == b"updated"

    @pytest.mark.parametrize("mmap_reads", [False, True])
    def test_reopen_existing_with_read_mode(self, tmp_path, mmap_reads):
        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128) as pf:
            pid = pf.allocate()
            pf.write(Page(pid, b"persisted"))
            pf.flush()
        with DiskPageFile(path, page_size=128, mmap_reads=mmap_reads) as pf:
            assert pf.read(pid).payload == b"persisted"

    def test_concurrent_reads_no_seek_races(self, tmp_path):
        from concurrent.futures import ThreadPoolExecutor

        path = str(tmp_path / "pages.bin")
        with DiskPageFile(path, page_size=128) as pf:
            pids = [pf.allocate() for _ in range(8)]
            for pid in pids:
                pf.write(Page(pid, b"p%d" % pid))

            def hammer(pid):
                for _ in range(50):
                    assert pf.read(pid).payload == b"p%d" % pid
                return pid

            with ThreadPoolExecutor(max_workers=4) as pool:
                assert sorted(pool.map(hammer, pids)) == pids
