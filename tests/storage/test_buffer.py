"""Tests for the LRU buffer pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.page import Page
from repro.storage.pagefile import MemoryPageFile


def make_pool(capacity=2, pages=4, page_size=128):
    pf = MemoryPageFile(page_size=page_size)
    pool = BufferPool(pf, capacity)
    for i in range(pages):
        pid = pf.allocate()
        pf.write(Page(pid, f"page-{i}".encode()))
    pf.stats.reset()
    return pf, pool


class TestBufferPool:
    def test_hit_avoids_physical_read(self):
        pf, pool = make_pool()
        pool.read(0)
        pool.read(0)
        assert pf.stats.reads == 1
        assert pf.stats.buffer_hits == 1

    def test_lru_eviction(self):
        pf, pool = make_pool(capacity=2)
        pool.read(0)
        pool.read(1)
        pool.read(2)  # evicts 0
        assert 0 not in pool
        assert 1 in pool and 2 in pool
        pool.read(0)  # physical again
        assert pf.stats.reads == 4

    def test_read_refreshes_recency(self):
        pf, pool = make_pool(capacity=2)
        pool.read(0)
        pool.read(1)
        pool.read(0)  # 0 becomes most recent
        pool.read(2)  # evicts 1, not 0
        assert 0 in pool and 1 not in pool

    def test_write_through_and_cache(self):
        pf, pool = make_pool()
        pool.write(Page(0, b"updated"))
        assert pf.stats.writes == 1
        assert pool.read(0).payload == b"updated"
        assert pf.stats.reads == 0  # served from cache

    def test_invalidate(self):
        pf, pool = make_pool()
        pool.read(0)
        pool.invalidate(0)
        pool.read(0)
        assert pf.stats.reads == 2

    def test_clear(self):
        pf, pool = make_pool()
        pool.read(0)
        pool.read(1)
        pool.clear()
        assert len(pool) == 0

    def test_capacity_validation(self):
        pf = MemoryPageFile(page_size=128)
        with pytest.raises(StorageError):
            BufferPool(pf, 0)

    def test_capacity_never_exceeded(self):
        pf, pool = make_pool(capacity=3, pages=10)
        for i in range(10):
            pool.read(i)
        assert len(pool) == 3

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=60))
    @settings(max_examples=40)
    def test_reads_always_correct_under_any_access_pattern(self, accesses):
        pf, pool = make_pool(capacity=3, pages=8)
        for pid in accesses:
            assert pool.read(pid).payload == f"page-{pid}".encode()
        assert pf.stats.reads + pf.stats.buffer_hits == len(accesses)
