"""Tests for the shared-memory page file (freeze / attach / lifecycle)."""

import os
import pickle

import pytest

from repro.errors import PageCorruptedError, PageNotFoundError, StorageError
from repro.storage.page import Page
from repro.storage.pagefile import MemoryPageFile
from repro.storage.shm import HEADER_BYTES, MAGIC, SharedMemoryPageFile


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _source(pages):
    pf = MemoryPageFile(page_size=128)
    for payload in pages:
        pid = pf.allocate()
        if payload is not None:
            pf.write(Page(pid, payload))
    return pf


class TestFreeze:
    def test_roundtrip_all_pages(self):
        src = _source([b"alpha", b"beta", b"gamma"])
        with SharedMemoryPageFile.freeze(src) as shm:
            assert shm.page_count == 3
            assert [shm.read(i).payload for i in range(3)] == [
                b"alpha", b"beta", b"gamma"
            ]

    def test_never_written_page_freezes_empty(self):
        src = _source([b"data", None])
        with SharedMemoryPageFile.freeze(src) as shm:
            assert shm.read(1).payload == b""

    def test_source_read_stats_untouched(self):
        src = _source([b"a", b"b"])
        SharedMemoryPageFile.freeze(src).close()
        assert src.stats.reads == 0

    def test_header_layout(self):
        src = _source([b"x"])
        with SharedMemoryPageFile.freeze(src) as shm:
            raw = bytes(shm._shm.buf[:HEADER_BYTES])
            assert raw.startswith(MAGIC)
            # Slot 0 begins right after the fixed header.
            assert (
                bytes(shm._shm.buf[HEADER_BYTES : HEADER_BYTES + 128])
                == src._pages[0]
            )

    def test_owner_unlinks_on_close(self):
        before = _shm_entries()
        shm = SharedMemoryPageFile.freeze(_source([b"x"]))
        assert _shm_entries() - before  # segment exists while open
        shm.close()
        assert _shm_entries() == before

    def test_close_idempotent(self):
        shm = SharedMemoryPageFile.freeze(_source([b"x"]))
        shm.close()
        shm.close()


class TestAttach:
    def test_attach_reads_same_pages(self):
        with SharedMemoryPageFile.freeze(_source([b"one", b"two"])) as owner:
            with SharedMemoryPageFile.attach(owner.name) as reader:
                assert not reader.is_owner
                assert reader.page_count == 2
                assert reader.read(0).payload == b"one"
                assert reader.read(1).payload == b"two"

    def test_attach_close_does_not_unlink(self):
        with SharedMemoryPageFile.freeze(_source([b"keep"])) as owner:
            reader = SharedMemoryPageFile.attach(owner.name)
            reader.close()
            # Owner can still read after the reader detached.
            assert owner.read(0).payload == b"keep"

    def test_attach_unknown_name(self):
        with pytest.raises(FileNotFoundError):
            SharedMemoryPageFile.attach("repro-no-such-segment")

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=256)
        try:
            with pytest.raises(StorageError, match="magic"):
                SharedMemoryPageFile.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_crc_verified_on_read(self):
        with SharedMemoryPageFile.freeze(
            _source([b"payload under test"])
        ) as owner:
            off = HEADER_BYTES + 16
            owner._shm.buf[off] ^= 0xFF
            with SharedMemoryPageFile.attach(owner.name) as reader:
                with pytest.raises(PageCorruptedError):
                    reader.read(0)


class TestReadOnlyProtocol:
    def test_allocate_raises(self):
        with SharedMemoryPageFile.freeze(_source([b"x"])) as shm:
            with pytest.raises(StorageError, match="read-only"):
                shm.allocate()

    def test_write_raises(self):
        with SharedMemoryPageFile.freeze(_source([b"x"])) as shm:
            with pytest.raises(StorageError, match="read-only"):
                shm.write(Page(0, b"nope"))

    def test_read_after_close(self):
        shm = SharedMemoryPageFile.freeze(_source([b"x"]))
        shm.close()
        with pytest.raises(StorageError, match="closed"):
            shm.read(0)

    def test_out_of_range_read(self):
        with SharedMemoryPageFile.freeze(_source([b"x"])) as shm:
            with pytest.raises(PageNotFoundError):
                shm.read(1)

    def test_reads_counted(self):
        with SharedMemoryPageFile.freeze(_source([b"x"])) as shm:
            shm.read(0)
            shm.read(0)
            assert shm.stats.reads == 2

    def test_does_not_pickle(self):
        with SharedMemoryPageFile.freeze(_source([b"x"])) as shm:
            with pytest.raises(StorageError, match="attach"):
                pickle.dumps(shm)
