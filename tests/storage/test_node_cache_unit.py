"""Unit tests for the decoded-node LRU cache (repro.storage.node_cache)."""

import pytest

from repro.errors import StorageError
from repro.index.nodes import Node, ObjectLeafEntry
from repro.storage.node_cache import NodeCache
from repro.storage.stats import IOStats


def make_node(page_id: int) -> Node:
    return Node(page_id, 0, [ObjectLeafEntry(page_id, 0.1, 0.2)])


class TestBasics:
    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            NodeCache(-1)

    def test_get_miss_then_hit(self):
        cache = NodeCache(4)
        assert cache.get(1) is None
        node = make_node(1)
        cache.put(node)
        assert cache.get(1) is node
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_invalidate_drops_entry(self):
        cache = NodeCache(4)
        cache.put(make_node(1))
        cache.invalidate(1)
        assert 1 not in cache
        assert cache.get(1) is None

    def test_invalidate_missing_is_noop(self):
        cache = NodeCache(4)
        cache.invalidate(42)  # must not raise

    def test_clear_empties_but_keeps_counters(self):
        cache = NodeCache(4)
        cache.put(make_node(1))
        cache.get(1)
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_reset_counters(self):
        cache = NodeCache(4)
        cache.get(1)
        cache.put(make_node(1))
        cache.get(1)
        cache.reset_counters()
        assert cache.hits == 0
        assert cache.misses == 0
        assert len(cache) == 1  # contents preserved


class TestLRUEviction:
    def test_evicts_least_recently_used(self):
        cache = NodeCache(2)
        cache.put(make_node(1))
        cache.put(make_node(2))
        cache.get(1)  # 2 is now LRU
        cache.put(make_node(3))
        assert 1 in cache
        assert 2 not in cache
        assert 3 in cache

    def test_capacity_never_exceeded(self):
        cache = NodeCache(3)
        for i in range(20):
            cache.put(make_node(i))
        assert len(cache) == 3

    def test_put_refreshes_recency(self):
        cache = NodeCache(2)
        cache.put(make_node(1))
        cache.put(make_node(2))
        cache.put(make_node(1))  # refresh 1; 2 becomes LRU
        cache.put(make_node(3))
        assert 1 in cache
        assert 2 not in cache


class TestDisabledCache:
    def test_capacity_zero_disables(self):
        cache = NodeCache(0)
        cache.put(make_node(1))  # no-op
        assert len(cache) == 0
        assert cache.get(1) is None
        assert cache.misses == 1
        assert cache.hits == 0


class TestStatsIntegration:
    def test_records_into_iostats(self):
        stats = IOStats()
        cache = NodeCache(4, stats)
        cache.get(1)
        cache.put(make_node(1))
        cache.get(1)
        assert stats.node_cache_misses == 1
        assert stats.node_cache_hits == 1

    def test_iostats_reset_and_delta(self):
        stats = IOStats()
        cache = NodeCache(4, stats)
        cache.get(1)
        snap = stats.snapshot()
        cache.put(make_node(1))
        cache.get(1)
        delta = stats.delta_since(snap)
        assert delta.node_cache_hits == 1
        assert delta.node_cache_misses == 0
        stats.reset()
        assert stats.node_cache_hits == 0
        assert stats.node_cache_misses == 0
