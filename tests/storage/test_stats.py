"""Tests for I/O statistics accounting."""

import pytest

from repro.storage.stats import IOStats


class TestIOStats:
    def test_counters(self):
        s = IOStats()
        s.record_read()
        s.record_read()
        s.record_write()
        s.record_hit()
        assert s.reads == 2
        assert s.writes == 1
        assert s.buffer_hits == 1
        assert s.logical_reads == 3

    def test_io_time(self):
        s = IOStats(page_read_cost_s=0.01)
        for _ in range(5):
            s.record_read()
        assert s.io_time_s == pytest.approx(0.05)

    def test_reset_preserves_cost(self):
        s = IOStats(page_read_cost_s=0.002)
        s.record_read()
        s.reset()
        assert s.reads == 0
        assert s.page_read_cost_s == 0.002

    def test_snapshot_is_independent(self):
        s = IOStats()
        s.record_read()
        snap = s.snapshot()
        s.record_read()
        assert snap.reads == 1
        assert s.reads == 2

    def test_delta_since(self):
        s = IOStats()
        s.record_read()
        snap = s.snapshot()
        s.record_read()
        s.record_write()
        s.record_hit()
        delta = s.delta_since(snap)
        assert delta.reads == 1
        assert delta.writes == 1
        assert delta.buffer_hits == 1
