"""Public API surface tests."""

import repro


class TestPublicApi:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_error_hierarchy(self):
        from repro import errors

        for name in (
            "GeometryError",
            "StorageError",
            "PageNotFoundError",
            "PageCorruptedError",
            "PageOverflowError",
            "IndexError_",
            "VocabularyError",
            "QueryError",
            "DatasetError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_subpackage_alls_resolve(self):
        import repro.bench as bench
        import repro.core as core
        import repro.data as data
        import repro.geometry as geometry
        import repro.hilbert as hilbert
        import repro.index as index
        import repro.model as model
        import repro.storage as storage
        import repro.text as text

        for module in (
            bench, core, data, geometry, hilbert, index, model, storage, text
        ):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    module.__name__,
                    name,
                )
