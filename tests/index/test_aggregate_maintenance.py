"""Leaf-up exactness of the paper's per-node aggregates under mutation.

``validate()`` checks each internal entry against its *immediate* child;
this suite recomputes every internal entry from the **leaves** of its
subtree — MBR as the union of leaf rects, ``max_score`` as the leaf
maximum, ``summary`` as the union of leaf summaries — and demands exact
(``==``, not approximate) equality after long random delete and
insert/delete sequences.  A stale-tight aggregate at *any* level breaks
Lemma 1's pruning bound silently (queries stay "correct" until a prune
uses the stale bound), which is why this check exists as its own test
and not only inside the live-update suites.
"""

from __future__ import annotations

import dataclasses
import random

from repro.index.nodes import FeatureLeafEntry, ObjectLeafEntry
from repro.index.object_rtree import ObjectRTree
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.storage.pagefile import MemoryPageFile
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_data_objects, make_feature_objects


def _leaf_aggregates(tree, node):
    """(rect, max_score, summary) over a subtree's *leaf* entries."""
    if node.is_leaf:
        rect = node.entries[0].rect
        max_score = node.entries[0].score
        summary = 0
        for e in node.entries:
            rect = rect.union(e.rect)
            max_score = max(max_score, e.score)
            summary |= tree.leaf_summary(e.mask)
        return rect, max_score, summary
    child = tree.read_node(node.entries[0].child)
    rect, max_score, summary = _leaf_aggregates(tree, child)
    for entry in node.entries[1:]:
        child = tree.read_node(entry.child)
        r, s, m = _leaf_aggregates(tree, child)
        rect = rect.union(r)
        max_score = max(max_score, s)
        summary |= m
    return rect, max_score, summary


def assert_feature_aggregates_exact(tree) -> None:
    """Every internal entry == leaf-up recomputation, bit for bit."""
    stack = [tree.root_node()]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            continue
        for entry in node.entries:
            child = tree.read_node(entry.child)
            rect, max_score, summary = _leaf_aggregates(tree, child)
            assert entry.rect == rect, (
                f"page {node.page_id}: stale MBR for child {entry.child}"
            )
            assert entry.max_score == max_score, (
                f"page {node.page_id}: max_score {entry.max_score} != "
                f"leaf maximum {max_score} for child {entry.child}"
            )
            assert entry.summary == summary, (
                f"page {node.page_id}: summary mask diverges for child "
                f"{entry.child}"
            )
            stack.append(child)


def assert_object_mbrs_exact(tree) -> None:
    stack = [tree.root_node()]
    while stack:
        node = stack.pop()
        if node.is_leaf:
            continue
        for entry in node.entries:
            child = tree.read_node(entry.child)
            rect = child.entries[0].rect
            for e in child.entries[1:]:
                rect = rect.union(e.rect)
            # One level is enough here: the recursion visits every node.
            assert entry.rect == rect, (
                f"page {node.page_id}: stale MBR for child {entry.child}"
            )
            stack.append(child)


def _feature_entry(f) -> FeatureLeafEntry:
    return FeatureLeafEntry(f.fid, f.x, f.y, f.score, f.keyword_mask())


class TestSRTAggregates:
    def test_exact_after_random_deletes(self):
        vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
        features = make_feature_objects(220, seed=90)
        dataset = FeatureDataset(features, vocab, "agg")
        tree = SRTIndex.build(
            dataset, pagefile=MemoryPageFile(page_size=256)
        )
        assert tree.height >= 3  # multi-level, aggregates at every level
        order = list(features)
        random.Random(3).shuffle(order)
        for i, f in enumerate(order[:180]):
            assert tree.delete(_feature_entry(f))
            if i % 20 == 0:
                assert_feature_aggregates_exact(tree)
        assert_feature_aggregates_exact(tree)
        tree.validate()

    def test_exact_under_interleaved_churn(self):
        """Insert/delete/rescore churn: the max can both rise and fall."""
        vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
        rng = random.Random(4)
        tree = SRTIndex.build(
            FeatureDataset(make_feature_objects(80, seed=91), vocab, "churn"),
            pagefile=MemoryPageFile(page_size=256),
        )
        alive = {f.fid: f for f in make_feature_objects(80, seed=91)}
        next_fid = 10_000
        for step in range(160):
            roll = rng.random()
            if roll < 0.4 and len(alive) > 10:
                f = alive.pop(rng.choice(sorted(alive)))
                assert tree.delete(_feature_entry(f))
            elif roll < 0.7:
                # Rescore = delete + reinsert with a new score; dropping
                # the subtree maximum is the stale-aggregate hot path.
                fid = rng.choice(sorted(alive))
                f = alive[fid]
                assert tree.delete(_feature_entry(f))
                f = dataclasses.replace(f, score=round(rng.random(), 6))
                alive[fid] = f
                tree.insert(_feature_entry(f))
            else:
                fs = make_feature_objects(1, seed=1000 + step)[0]
                f = dataclasses.replace(fs, fid=next_fid)
                next_fid += 1
                alive[f.fid] = f
                tree.insert(_feature_entry(f))
            if step % 20 == 0:
                assert_feature_aggregates_exact(tree)
        assert_feature_aggregates_exact(tree)
        assert tree.count == len(alive)


class TestObjectMBRs:
    def test_exact_after_random_deletes(self):
        objects = make_data_objects(220, seed=92)
        tree = ObjectRTree(MemoryPageFile(page_size=256))
        for o in objects:
            tree.insert(ObjectLeafEntry(o.oid, o.x, o.y))
        order = list(objects)
        random.Random(5).shuffle(order)
        for i, o in enumerate(order[:180]):
            assert tree.delete(ObjectLeafEntry(o.oid, o.x, o.y))
            if i % 20 == 0:
                assert_object_mbrs_exact(tree)
        assert_object_mbrs_exact(tree)
        tree.validate()
