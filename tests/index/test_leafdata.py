"""Tests for the columnar leaf views and the scalar fallback path.

The vectorized (numpy) and scalar code paths must produce identical
results; :func:`repro.index.leafdata.set_vectorized` lets us force the
fallback even when numpy is importable, so the fallback is exercised by
this suite regardless of the environment.
"""

from __future__ import annotations

import random

import pytest

from repro.core.query import PreferenceQuery, Variant
from repro.index import leafdata
from repro.index.leafdata import (
    feature_leaf_arrays,
    object_leaf_arrays,
    pack_mask,
    set_vectorized,
    vectorized_enabled,
    words_for_bytes,
)
from repro.index.object_rtree import ObjectRTree
from tests.conftest import make_data_objects, random_mask


@pytest.fixture
def scalar_mode():
    """Force the pure-Python fallback for the duration of a test."""
    previous = set_vectorized(False)
    assert not vectorized_enabled()
    yield
    set_vectorized(previous)


class TestPacking:
    def test_words_for_bytes(self):
        assert words_for_bytes(1) == 1
        assert words_for_bytes(8) == 1
        assert words_for_bytes(9) == 2
        assert words_for_bytes(16) == 2
        assert words_for_bytes(0) == 1  # at least one word

    def test_pack_mask_roundtrip(self):
        np = pytest.importorskip("numpy")
        mask = 0b1011_0001
        words = pack_mask(mask, 1)
        assert words.dtype == np.dtype("<u8")
        assert int(words[0]) == mask

    def test_pack_mask_multiword(self):
        pytest.importorskip("numpy")
        mask = (1 << 100) | 0b101
        words = pack_mask(mask, 2)
        assert int(words[0]) == 0b101
        assert int(words[1]) == 1 << (100 - 64)

    def test_pack_mask_truncates_overflow(self):
        pytest.importorskip("numpy")
        mask = (1 << 200) | 0b11
        words = pack_mask(mask, 1)
        assert int(words[0]) == 0b11


class TestToggle:
    def test_set_vectorized_returns_previous(self):
        first = set_vectorized(False)
        try:
            assert set_vectorized(False) is False
            assert not vectorized_enabled()
        finally:
            set_vectorized(first)

    def test_disabled_mode_returns_none(self, scalar_mode):
        tree = ObjectRTree.build(make_data_objects(50, seed=61))
        node = tree.read_node(tree.root_id)
        while not node.is_leaf:
            node = tree.read_node(node.entries[0].child)
        assert object_leaf_arrays(node) is None
        assert feature_leaf_arrays(node, 1) is None


@pytest.mark.skipif(
    not leafdata.NUMPY_AVAILABLE, reason="numpy not installed"
)
class TestArrayCaching:
    def _leaf(self, tree):
        node = tree.read_node(tree.root_id)
        while not node.is_leaf:
            node = tree.read_node(node.entries[0].child)
        return node

    def test_object_arrays_cached_on_node(self):
        tree = ObjectRTree.build(make_data_objects(80, seed=62))
        node = self._leaf(tree)
        first = object_leaf_arrays(node)
        assert first is not None
        assert len(first) == len(node.entries)
        assert object_leaf_arrays(node) is first

    def test_invalidate_arrays_drops_view(self):
        tree = ObjectRTree.build(make_data_objects(80, seed=63))
        node = self._leaf(tree)
        first = object_leaf_arrays(node)
        node.invalidate_arrays()
        second = object_leaf_arrays(node)
        assert second is not None
        assert second is not first

    def test_arrays_match_entries(self):
        tree = ObjectRTree.build(make_data_objects(80, seed=64))
        node = self._leaf(tree)
        arrays = object_leaf_arrays(node)
        for i, e in enumerate(node.entries):
            assert int(arrays.oids[i]) == e.oid
            assert float(arrays.xs[i]) == e.x
            assert float(arrays.ys[i]) == e.y


class TestFallbackParity:
    """Scalar fallback must reproduce the vectorized results exactly."""

    def _queries(self, n, seed):
        rng = random.Random(seed)
        return [
            PreferenceQuery(
                k=rng.randint(2, 6),
                radius=rng.uniform(0.05, 0.15),
                lam=rng.choice([0.0, 0.3, 1.0]),
                keyword_masks=(random_mask(rng), random_mask(rng)),
            )
            for _ in range(n)
        ]

    @pytest.mark.parametrize("algorithm", ["stps", "stds"])
    def test_query_parity(self, srt_processor, algorithm):
        queries = self._queries(5, seed=65)
        fast = [
            srt_processor.query(q, algorithm=algorithm) for q in queries
        ]
        previous = set_vectorized(False)
        try:
            slow = [
                srt_processor.query(q, algorithm=algorithm) for q in queries
            ]
        finally:
            set_vectorized(previous)
        for a, b in zip(fast, slow):
            assert a.oids == b.oids
            assert a.scores == b.scores

    def test_variant_parity(self, srt_processor):
        base = self._queries(2, seed=66)
        for variant in (Variant.INFLUENCE, Variant.NEAREST):
            for q in base:
                query = q.with_variant(variant)
                fast = srt_processor.query(query)
                previous = set_vectorized(False)
                try:
                    slow = srt_processor.query(query)
                finally:
                    set_vectorized(previous)
                assert fast.oids == slow.oids
                assert fast.scores == slow.scores

    def test_range_search_parity(self, scalar_mode):
        objects = make_data_objects(300, seed=67)
        tree = ObjectRTree.build(objects)
        got = sorted(e.oid for e in tree.range_search((0.5, 0.5), 0.2))
        set_vectorized(True)
        if leafdata.NUMPY_AVAILABLE:
            tree2 = ObjectRTree.build(objects)
            fast = sorted(
                e.oid for e in tree2.range_search((0.5, 0.5), 0.2)
            )
            assert fast == got
        # Brute-force ground truth.
        expected = sorted(
            o.oid
            for o in objects
            if (o.x - 0.5) ** 2 + (o.y - 0.5) ** 2 <= 0.2 * 0.2
        )
        assert got == expected
