"""Tests for the data-object R-tree."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.object_rtree import ObjectRTree
from repro.model.objects import DataObject
from tests.conftest import make_data_objects


@pytest.fixture(scope="module", params=["hilbert", "str", "insert"])
def built_tree(request):
    objects = make_data_objects(500, seed=21)
    tree = ObjectRTree.build(objects, method=request.param)
    return tree, objects


class TestBuild:
    def test_all_methods_store_everything(self, built_tree):
        tree, objects = built_tree
        assert tree.count == len(objects)
        assert sorted(e.oid for e in tree.all_entries()) == list(range(500))

    def test_structural_invariants(self, built_tree):
        tree, _ = built_tree
        tree.validate()

    def test_empty_tree(self):
        tree = ObjectRTree.build([])
        assert tree.count == 0
        assert list(tree.range_search((0.5, 0.5), 0.5)) == []

    def test_single_object(self):
        tree = ObjectRTree.build([DataObject(0, 0.5, 0.5)])
        assert [e.oid for e in tree.range_search((0.5, 0.5), 0.01)] == [0]

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            ObjectRTree.build([], method="bogus")


class TestRangeSearch:
    def test_matches_brute_force(self, built_tree):
        tree, objects = built_tree
        rng = random.Random(5)
        for _ in range(20):
            cx, cy, r = rng.random(), rng.random(), rng.random() * 0.2
            got = sorted(e.oid for e in tree.range_search((cx, cy), r))
            want = sorted(
                o.oid
                for o in objects
                if math.hypot(o.x - cx, o.y - cy) <= r
            )
            assert got == want

    def test_zero_radius(self, built_tree):
        tree, objects = built_tree
        target = objects[17]
        got = [e.oid for e in tree.range_search(target.location, 0.0)]
        assert target.oid in got


class TestWithinAll:
    def test_intersection_of_disks(self, built_tree):
        tree, objects = built_tree
        anchors = [(0.3, 0.3), (0.4, 0.3)]
        r = 0.15
        got = sorted(e.oid for e in tree.within_all(anchors, r))
        want = sorted(
            o.oid
            for o in objects
            if all(math.hypot(o.x - ax, o.y - ay) <= r for ax, ay in anchors)
        )
        assert got == want

    def test_empty_anchor_list_returns_all(self, built_tree):
        tree, objects = built_tree
        got = sorted(e.oid for e in tree.within_all([], 0.1))
        assert got == list(range(len(objects)))

    def test_disjoint_anchors_return_nothing(self, built_tree):
        tree, _ = built_tree
        got = list(tree.within_all([(0.0, 0.0), (1.0, 1.0)], 0.05))
        assert got == []


class TestPolygonSearch:
    def test_matches_brute_force(self, built_tree):
        tree, objects = built_tree
        poly = ConvexPolygon(((0.2, 0.2), (0.8, 0.25), (0.6, 0.8)))
        got = sorted(e.oid for e in tree.in_polygon(poly))
        want = sorted(
            o.oid for o in objects if poly.contains((o.x, o.y))
        )
        assert got == want

    def test_empty_polygon(self, built_tree):
        tree, _ = built_tree
        assert list(tree.in_polygon(ConvexPolygon())) == []

    def test_full_space_polygon(self, built_tree):
        tree, objects = built_tree
        poly = ConvexPolygon.from_rect(Rect((0.0, 0.0), (1.0, 1.0)))
        assert len(list(tree.in_polygon(poly))) == len(objects)


class TestBestFirst:
    def test_nearest_neighbors(self, built_tree):
        tree, objects = built_tree
        q = (0.5, 0.5)

        def node_bound(rect):
            return -rect.mindist(q)

        def point_score(x, y):
            return -math.hypot(x - q[0], y - q[1])

        got = tree.best_first(node_bound, point_score, limit=5)
        got_ids = [e.oid for _, e in got]
        want_ids = [
            o.oid
            for o in sorted(
                objects, key=lambda o: math.hypot(o.x - q[0], o.y - q[1])
            )[:5]
        ]
        assert got_ids == want_ids

    def test_scores_non_increasing(self, built_tree):
        tree, _ = built_tree
        q = (0.2, 0.8)
        got = tree.best_first(
            lambda rect: -rect.mindist(q),
            lambda x, y: -math.hypot(x - q[0], y - q[1]),
            limit=20,
        )
        scores = [s for s, _ in got]
        assert scores == sorted(scores, reverse=True)

    def test_floor_cuts_results(self, built_tree):
        tree, _ = built_tree
        q = (0.5, 0.5)
        got = tree.best_first(
            lambda rect: -rect.mindist(q),
            lambda x, y: -math.hypot(x - q[0], y - q[1]),
            limit=100,
            floor=-0.05,  # only objects within 0.05
        )
        assert all(s > -0.05 for s, _ in got)

    def test_skip_filter(self, built_tree):
        tree, _ = built_tree
        q = (0.5, 0.5)
        first = tree.best_first(
            lambda rect: -rect.mindist(q),
            lambda x, y: -math.hypot(x - q[0], y - q[1]),
            limit=3,
        )
        skip_ids = {e.oid for _, e in first}
        second = tree.best_first(
            lambda rect: -rect.mindist(q),
            lambda x, y: -math.hypot(x - q[0], y - q[1]),
            limit=3,
            skip=lambda oid: oid in skip_ids,
        )
        assert skip_ids.isdisjoint({e.oid for _, e in second})

    def test_limit_zero(self, built_tree):
        tree, _ = built_tree
        assert tree.best_first(lambda r: 1.0, lambda x, y: 1.0, limit=0) == []


class TestInsertMode:
    def test_incremental_inserts_preserve_queries(self):
        objects = make_data_objects(120, seed=33)
        tree = ObjectRTree()
        from repro.index.nodes import ObjectLeafEntry

        for o in objects:
            tree.insert(ObjectLeafEntry(o.oid, o.x, o.y))
            tree.validate()
        got = sorted(e.oid for e in tree.range_search((0.5, 0.5), 0.3))
        want = sorted(
            o.oid for o in objects if math.hypot(o.x - 0.5, o.y - 0.5) <= 0.3
        )
        assert got == want

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_insert_random_seeds(self, seed):
        objects = make_data_objects(60, seed=seed)
        tree = ObjectRTree.build(objects, method="insert")
        tree.validate()
        assert tree.count == 60
