"""Tests for generic R-tree machinery: splits, bulk loading, metadata."""

import pytest

from repro.errors import IndexError_
from repro.index.nodes import ObjectLeafEntry
from repro.index.object_rtree import ObjectRTree
from repro.index.rtree_base import RTreeBase
from repro.storage.pagefile import MemoryPageFile
from tests.conftest import make_data_objects


class TestBulkLoad:
    def test_double_build_rejected(self):
        tree = ObjectRTree.build(make_data_objects(10, 1))
        with pytest.raises(IndexError_):
            tree.bulk_load([])

    def test_bad_fill_factor(self):
        tree = ObjectRTree()
        with pytest.raises(IndexError_):
            tree.bulk_load([], fill=0.05)
        tree2 = ObjectRTree()
        with pytest.raises(IndexError_):
            tree2.bulk_load([], fill=1.5)

    def test_height_grows_with_size(self):
        small = ObjectRTree.build(make_data_objects(50, 1))
        big = ObjectRTree.build(make_data_objects(40_000, 1))
        assert big.height > small.height

    def test_fill_factor_changes_page_count(self):
        objects = make_data_objects(3000, 2)
        full = ObjectRTree()
        full.bulk_load(
            [ObjectLeafEntry(o.oid, o.x, o.y) for o in objects], fill=1.0
        )
        half = ObjectRTree()
        half.bulk_load(
            [ObjectLeafEntry(o.oid, o.x, o.y) for o in objects], fill=0.5
        )
        assert half.pagefile.page_count > full.pagefile.page_count

    def test_empty_bulk_load(self):
        tree = ObjectRTree()
        tree.bulk_load([])
        assert tree.height == 1
        assert tree.count == 0
        tree.validate()


class TestInsertSplits:
    def test_root_split_grows_height(self):
        tree = ObjectRTree(MemoryPageFile(page_size=256))  # tiny fan-out
        objects = make_data_objects(200, 3)
        for o in objects:
            tree.insert(ObjectLeafEntry(o.oid, o.x, o.y))
        assert tree.height >= 3
        tree.validate()
        assert tree.count == 200

    def test_min_fill_respected_after_splits(self):
        tree = ObjectRTree(MemoryPageFile(page_size=256))
        for o in make_data_objects(300, 4):
            tree.insert(ObjectLeafEntry(o.oid, o.x, o.y))
        # Every non-root node must hold at least ~40% of fan-out - 1.
        stack = [(tree.root_id, True)]
        while stack:
            page_id, is_root = stack.pop()
            node = tree.read_node(page_id)
            fanout = tree.leaf_fanout if node.is_leaf else tree.internal_fanout
            if not is_root:
                assert len(node.entries) >= max(1, int(0.4 * fanout)) - 1
            if not node.is_leaf:
                stack.extend((e.child, False) for e in node.entries)


class TestMetadataPage:
    def test_meta_written_and_readable(self):
        tree = ObjectRTree.build(make_data_objects(100, 5))
        meta = RTreeBase.read_meta(tree.pagefile)
        assert meta["kind"] == "object"
        assert meta["count"] == 100
        assert meta["root"] == tree.root_id
        assert meta["height"] == tree.height

    def test_meta_tracks_inserts(self):
        tree = ObjectRTree()
        tree.insert(ObjectLeafEntry(0, 0.5, 0.5))
        tree.insert(ObjectLeafEntry(1, 0.6, 0.6))
        meta = RTreeBase.read_meta(tree.pagefile)
        assert meta["count"] == 2


class TestValidate:
    def test_detects_stale_parent_entry(self):
        tree = ObjectRTree.build(make_data_objects(500, 6))
        root = tree.read_node(tree.root_id)
        assert not root.is_leaf
        # Corrupt a child's contents behind the parent's back.
        child = tree.read_node(root.entries[0].child)
        child.entries.append(ObjectLeafEntry(999_999, 0.0, 0.0))
        tree.write_node(child)
        with pytest.raises(IndexError_):
            tree.validate()

    def test_empty_tree_validates(self):
        ObjectRTree().validate()


class TestRootAccess:
    def test_empty_tree_root_rejected(self):
        with pytest.raises(IndexError_):
            ObjectRTree().root_node()
