"""Property-based tests over whole R-trees (hypothesis-driven)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.object_rtree import ObjectRTree
from repro.model.objects import DataObject

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)

point_lists = st.lists(
    st.tuples(unit, unit), min_size=0, max_size=120
)


@st.composite
def tree_and_query(draw):
    points = draw(point_lists)
    objects = [DataObject(i, x, y) for i, (x, y) in enumerate(points)]
    method = draw(st.sampled_from(["hilbert", "str", "insert"]))
    cx, cy = draw(unit), draw(unit)
    radius = draw(st.floats(min_value=0.0, max_value=0.6, allow_nan=False))
    return objects, method, (cx, cy), radius


class TestRangeQueryProperty:
    @given(tree_and_query())
    @settings(max_examples=60, deadline=None)
    def test_range_search_equals_brute_force(self, setup):
        objects, method, center, radius = setup
        tree = ObjectRTree.build(objects, method=method)
        got = sorted(e.oid for e in tree.range_search(center, radius))
        want = sorted(
            o.oid
            for o in objects
            if math.hypot(o.x - center[0], o.y - center[1]) <= radius
        )
        assert got == want

    @given(point_lists, st.sampled_from(["hilbert", "str", "insert"]))
    @settings(max_examples=40, deadline=None)
    def test_structure_invariants_hold(self, points, method):
        objects = [DataObject(i, x, y) for i, (x, y) in enumerate(points)]
        tree = ObjectRTree.build(objects, method=method)
        tree.validate()
        assert tree.count == len(objects)

    @given(point_lists)
    @settings(max_examples=30, deadline=None)
    def test_build_methods_agree(self, points):
        objects = [DataObject(i, x, y) for i, (x, y) in enumerate(points)]
        results = []
        for method in ("hilbert", "str", "insert"):
            tree = ObjectRTree.build(objects, method=method)
            results.append(
                sorted(e.oid for e in tree.range_search((0.5, 0.5), 0.25))
            )
        assert results[0] == results[1] == results[2]
