"""Tests shared by the SRT-index and the IR²-tree, plus their contrasts."""

import random

import pytest

from repro.index.ir2 import IR2Tree
from repro.index.nodes import FeatureLeafEntry
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.text.similarity import jaccard
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_feature_objects, random_mask


@pytest.fixture(scope="module")
def dataset():
    vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
    return FeatureDataset(make_feature_objects(400, seed=77), vocab, "test")


@pytest.fixture(scope="module", params=[SRTIndex, IR2Tree])
def tree(request, dataset):
    return request.param.build(dataset)


class TestConstruction:
    def test_all_features_stored(self, tree, dataset):
        assert tree.count == len(dataset)
        assert sorted(e.fid for e in tree.iter_features()) == [
            f.fid for f in sorted(dataset, key=lambda f: f.fid)
        ]

    def test_structural_invariants(self, tree):
        tree.validate()

    def test_leaf_entries_carry_exact_data(self, tree, dataset):
        for entry in tree.iter_features():
            f = dataset.get(entry.fid)
            assert entry.x == f.x and entry.y == f.y
            assert entry.score == pytest.approx(f.score)
            assert entry.mask == f.keyword_mask()

    def test_insert_mode(self, dataset):
        for cls in (SRTIndex, IR2Tree):
            tree = cls.build(dataset, method="insert")
            tree.validate()
            assert tree.count == len(dataset)

    def test_unknown_method(self, dataset):
        with pytest.raises(ValueError):
            SRTIndex.build(dataset, method="bogus")

    def test_empty_dataset(self):
        empty = FeatureDataset([], Vocabulary(["a"]), "empty")
        tree = SRTIndex.build(empty)
        assert tree.count == 0
        assert list(tree.iter_features()) == []


class TestAggregates:
    def test_max_score_aggregate(self, tree):
        """Internal entries carry the max score of their subtree."""
        stack = [(tree.root_id, None)]
        while stack:
            page_id, expected_max = stack.pop()
            node = tree.read_node(page_id)
            if node.is_leaf:
                actual = max(e.score for e in node.entries)
            else:
                actual = max(e.max_score for e in node.entries)
                for e in node.entries:
                    stack.append((e.child, e.max_score))
            if expected_max is not None:
                assert actual == pytest.approx(expected_max)


class TestBoundProperty:
    """The correctness keystone: ŝ(e) >= s(t) for every descendant t."""

    @pytest.mark.parametrize("lam", [0.0, 0.3, 0.5, 1.0])
    def test_node_bound_dominates_descendants(self, tree, lam):
        rng = random.Random(4)
        for _ in range(5):
            scorer = tree.make_scorer(random_mask(rng), lam)
            stack = [(tree.root_id, float("inf"))]
            while stack:
                page_id, parent_bound = stack.pop()
                node = tree.read_node(page_id)
                for e in node.entries:
                    if node.is_leaf:
                        assert scorer.leaf_score(e) <= parent_bound + 1e-12
                    else:
                        stack.append((e.child, scorer.node_bound(e)))
                        assert scorer.node_bound(e) <= parent_bound + 1e-9 or isinstance(
                            tree, IR2Tree
                        )

    def test_relevance_never_false_negative(self, tree, dataset):
        """If a relevant feature exists below a node, the node must be
        flagged relevant (the sim > 0 pruning must be safe)."""
        rng = random.Random(9)
        for _ in range(5):
            mask = random_mask(rng)
            scorer = tree.make_scorer(mask, 0.5)
            stack = [tree.root_id]
            while stack:
                node = tree.read_node(stack.pop())
                for e in node.entries:
                    if node.is_leaf:
                        continue
                    child = tree.read_node(e.child)
                    child_has_relevant = any(
                        (le.mask & mask) != 0
                        for le in _leaves_under(tree, child)
                    )
                    if child_has_relevant:
                        assert scorer.node_relevant(e)
                    stack.append(e.child)

    def test_leaf_score_is_definition_1(self, tree, dataset):
        rng = random.Random(11)
        mask = random_mask(rng)
        lam = 0.7
        scorer = tree.make_scorer(mask, lam)
        for entry in tree.iter_features():
            expected = (1 - lam) * entry.score + lam * jaccard(entry.mask, mask)
            assert scorer.leaf_score(entry) == pytest.approx(expected)


class TestIndexContrast:
    def test_srt_summary_is_exact_union(self, dataset):
        tree = SRTIndex.build(dataset)
        root = tree.read_node(tree.root_id)
        if root.is_leaf:
            pytest.skip("tree too small")
        for e in root.entries:
            union = 0
            child = tree.read_node(e.child)
            for leaf in _leaves_under(tree, child):
                union |= leaf.mask
            assert e.summary == union

    def test_srt_hilbert_value_roundtrips_summary(self, dataset):
        tree = SRTIndex.build(dataset)
        root = tree.read_node(tree.root_id)
        if root.is_leaf:
            pytest.skip("tree too small")
        from repro.hilbert.keywords import KeywordHilbert

        kh = KeywordHilbert(tree.vocab_size)
        for e in root.entries:
            assert kh.decode(tree.node_hilbert_value(e)) == e.summary

    def test_srt_bounds_tighter_on_average(self, dataset):
        """The design claim of Section 4: clustering by (space, score,
        text) yields tighter ŝ(e) than spatial-only clustering.

        Small pages keep per-leaf keyword unions selective; with large
        leaves both summaries saturate and the contrast vanishes.
        """
        from repro.storage.pagefile import MemoryPageFile

        srt = SRTIndex.build(dataset, pagefile=MemoryPageFile(512))
        ir2 = IR2Tree.build(dataset, pagefile=MemoryPageFile(512))
        rng = random.Random(13)
        srt_total = ir2_total = 0.0
        for _ in range(10):
            mask = random_mask(rng)
            srt_total += _mean_leaf_parent_bound(srt, mask)
            ir2_total += _mean_leaf_parent_bound(ir2, mask)
        assert srt_total < ir2_total

    def test_metadata_kinds(self, dataset):
        assert SRTIndex.build(dataset).metadata()["kind"] == "srt"
        meta = IR2Tree.build(dataset).metadata()
        assert meta["kind"] == "ir2"
        assert meta["signature_bits"] >= 32


def _leaves_under(tree, node):
    if node.is_leaf:
        yield from node.entries
        return
    for e in node.entries:
        yield from _leaves_under(tree, tree.read_node(e.child))


def _mean_leaf_parent_bound(tree, mask) -> float:
    """Average ŝ(e) over entries pointing at leaves (bound looseness)."""
    scorer = tree.make_scorer(mask, 0.5)
    total, count = 0.0, 0
    stack = [tree.root_id]
    while stack:
        node = tree.read_node(stack.pop())
        if node.is_leaf:
            continue
        for e in node.entries:
            child = tree.read_node(e.child)
            if child.is_leaf:
                total += scorer.node_bound(e)
                count += 1
            else:
                stack.append(e.child)
    return total / max(count, 1)
