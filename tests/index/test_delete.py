"""Tests for R-tree deletion (CondenseTree)."""

import math
import random

import pytest

from repro.index.nodes import FeatureLeafEntry, ObjectLeafEntry
from repro.index.object_rtree import ObjectRTree
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.storage.pagefile import MemoryPageFile
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_data_objects, make_feature_objects


def entry_of(o):
    return ObjectLeafEntry(o.oid, o.x, o.y)


class TestObjectTreeDelete:
    def test_delete_then_query(self):
        objects = make_data_objects(300, seed=81)
        tree = ObjectRTree.build(objects, method="hilbert")
        victims = objects[::10]
        for o in victims:
            assert tree.delete(entry_of(o))
        tree.validate()
        remaining = {o.oid for o in objects} - {o.oid for o in victims}
        got = {e.oid for e in tree.range_search((0.5, 0.5), 2.0)}
        assert got == remaining

    def test_delete_missing_returns_false(self):
        objects = make_data_objects(50, seed=82)
        tree = ObjectRTree.build(objects)
        assert not tree.delete(ObjectLeafEntry(999, 0.123, 0.456))
        assert tree.count == 50

    def test_delete_everything(self):
        objects = make_data_objects(150, seed=83)
        tree = ObjectRTree.build(objects)
        order = list(objects)
        random.Random(1).shuffle(order)
        for o in order:
            assert tree.delete(entry_of(o))
            tree.validate()
        assert tree.count == 0
        assert list(tree.range_search((0.5, 0.5), 2.0)) == []

    def test_delete_from_empty(self):
        tree = ObjectRTree.build([])
        assert not tree.delete(ObjectLeafEntry(0, 0.5, 0.5))

    def test_underflow_triggers_reinsertion(self):
        """Tiny pages force multi-level trees; heavy deletion must shrink
        the tree while preserving the remaining entries."""
        objects = make_data_objects(250, seed=84)
        tree = ObjectRTree(MemoryPageFile(page_size=256))
        for o in objects:
            tree.insert(entry_of(o))
        start_height = tree.height
        assert start_height >= 3
        for o in objects[:230]:
            assert tree.delete(entry_of(o))
        tree.validate()
        assert tree.count == 20
        assert tree.height <= start_height
        got = sorted(e.oid for e in tree.range_search((0.5, 0.5), 2.0))
        assert got == [o.oid for o in objects[230:]]

    def test_interleaved_insert_delete(self):
        rng = random.Random(85)
        tree = ObjectRTree(MemoryPageFile(page_size=512))
        alive = {}
        next_id = 0
        for step in range(600):
            if alive and rng.random() < 0.45:
                oid = rng.choice(list(alive))
                x, y = alive.pop(oid)
                assert tree.delete(ObjectLeafEntry(oid, x, y))
            else:
                x, y = rng.random(), rng.random()
                alive[next_id] = (x, y)
                tree.insert(ObjectLeafEntry(next_id, x, y))
                next_id += 1
        tree.validate()
        got = sorted(e.oid for e in tree.range_search((0.5, 0.5), 2.0))
        assert got == sorted(alive)


class TestReopenAfterDelete:
    def test_meta_count_stays_exact_through_orphan_reinsertion(
        self, tmp_path
    ):
        """Regression: the orphan path must not persist a stale count.

        ``delete`` used to write the metadata page before reinserting
        the orphans of dissolved nodes, persisting a count that still
        included them — correct in memory, wrong on reopen.  Heavy
        deletion over tiny pages exercises the orphan path constantly;
        after every delete the *persisted* meta must agree with the
        in-memory tree.
        """
        from repro.index.reopen import open_tree
        from repro.index.rtree_base import RTreeBase
        from repro.storage.pagefile import DiskPageFile

        path = str(tmp_path / "orphans.tree")
        objects = make_data_objects(250, seed=88)
        tree = ObjectRTree(DiskPageFile(path, page_size=256))
        for o in objects:
            tree.insert(entry_of(o))
        start_height = tree.height

        order = list(objects)
        random.Random(2).shuffle(order)
        alive = {o.oid for o in objects}
        for o in order[:220]:
            assert tree.delete(entry_of(o))
            alive.remove(o.oid)
            meta = RTreeBase.read_meta(tree.pagefile)
            assert meta["count"] == tree.count == len(alive)
            assert meta["root"] == tree.root_id
            assert meta["height"] == tree.height
        assert tree.height < start_height  # condense actually ran
        tree.pagefile.flush()
        tree.pagefile.close()

        reopened = open_tree(DiskPageFile(path, page_size=256))
        assert reopened.count == len(alive)
        reopened.validate()
        got = {e.oid for e in reopened.range_search((0.5, 0.5), 2.0)}
        assert got == alive


class TestFeatureTreeDelete:
    def test_aggregates_stay_consistent(self):
        vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
        dataset = FeatureDataset(
            make_feature_objects(200, seed=86), vocab, "del"
        )
        tree = SRTIndex.build(dataset, pagefile=MemoryPageFile(page_size=512))
        for f in list(dataset)[:120]:
            entry = FeatureLeafEntry(f.fid, f.x, f.y, f.score, f.keyword_mask())
            assert tree.delete(entry)
        # validate() recomputes aggregates; stale max-score/summary fails.
        tree.validate()
        assert tree.count == 80

    def test_query_correct_after_delete(self):
        vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
        features = make_feature_objects(150, seed=87)
        dataset = FeatureDataset(features, vocab, "del2")
        tree = SRTIndex.build(dataset)
        kept = features[50:]
        for f in features[:50]:
            tree.delete(
                FeatureLeafEntry(f.fid, f.x, f.y, f.score, f.keyword_mask())
            )

        from repro.core.query import PreferenceQuery
        from repro.core.stds import compute_score
        from repro.core.bruteforce import component_score

        query = PreferenceQuery(
            k=3, radius=0.2, lam=0.5, keyword_masks=(0b111,)
        )
        kept_ds = FeatureDataset(kept, vocab, "kept")
        for point in [(0.3, 0.3), (0.8, 0.2)]:
            got = compute_score(tree, query, 0b111, point)
            want = component_score(point[0], point[1], kept_ds, 0b111, query)
            assert got == pytest.approx(want, abs=1e-9)
