"""Tests for node formats and binary codecs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_, StorageError
from repro.geometry.rect import Rect
from repro.index.nodes import (
    FeatureInternalEntry,
    FeatureLeafEntry,
    FeatureNodeCodec,
    Node,
    ObjectInternalEntry,
    ObjectLeafEntry,
    ObjectNodeCodec,
)

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestObjectCodec:
    def test_leaf_roundtrip(self):
        codec = ObjectNodeCodec()
        node = Node(7, 0, [ObjectLeafEntry(1, 0.2, 0.3), ObjectLeafEntry(2, 0.4, 0.5)])
        decoded = codec.decode(7, codec.encode(node))
        assert decoded.is_leaf
        assert decoded.entries == node.entries

    def test_internal_roundtrip(self):
        codec = ObjectNodeCodec()
        node = Node(
            3,
            2,
            [ObjectInternalEntry(11, Rect((0.0, 0.0), (0.5, 0.5)))],
        )
        decoded = codec.decode(3, codec.encode(node))
        assert decoded.level == 2
        assert decoded.entries == node.entries

    def test_fanout_from_page_size(self):
        codec = ObjectNodeCodec()
        assert codec.leaf_fanout(4088) == (4088 - 3) // 24
        assert codec.internal_fanout(4088) == (4088 - 3) // 40

    def test_fanout_too_small(self):
        with pytest.raises(IndexError_):
            ObjectNodeCodec().leaf_fanout(40)

    def test_truncated_payload(self):
        with pytest.raises(StorageError):
            ObjectNodeCodec().decode(0, b"\x00")

    @given(
        st.lists(
            st.tuples(st.integers(min_value=0, max_value=10**6), unit, unit),
            max_size=20,
        )
    )
    @settings(max_examples=50)
    def test_leaf_roundtrip_property(self, raw_entries):
        codec = ObjectNodeCodec()
        entries = [ObjectLeafEntry(i, x, y) for i, x, y in raw_entries]
        node = Node(0, 0, entries)
        assert codec.decode(0, codec.encode(node)).entries == entries


class TestFeatureCodec:
    def test_leaf_roundtrip_with_mask(self):
        codec = FeatureNodeCodec(mask_bytes=16, summary_bytes=16)
        entries = [
            FeatureLeafEntry(1, 0.1, 0.2, 0.9, (1 << 100) | 0b11),
            FeatureLeafEntry(2, 0.3, 0.4, 0.1, 0),
        ]
        node = Node(5, 0, entries)
        assert codec.decode(5, codec.encode(node)).entries == entries

    def test_internal_roundtrip_with_aggregates(self):
        codec = FeatureNodeCodec(mask_bytes=8, summary_bytes=8)
        entries = [
            FeatureInternalEntry(
                9, Rect((0.0, 0.0), (1.0, 1.0)), 0.875, 0xDEADBEEF
            )
        ]
        node = Node(2, 1, entries)
        decoded = codec.decode(2, codec.encode(node))
        assert decoded.entries == entries

    def test_mask_overflow_detected(self):
        codec = FeatureNodeCodec(mask_bytes=1, summary_bytes=1)
        node = Node(0, 0, [FeatureLeafEntry(1, 0.0, 0.0, 0.5, 1 << 20)])
        with pytest.raises(IndexError_):
            codec.encode(node)

    def test_vocabulary_width_shrinks_fanout(self):
        """The effect behind Figure 7(d): bigger vocab -> smaller nodes."""
        small = FeatureNodeCodec(mask_bytes=8, summary_bytes=8)
        large = FeatureNodeCodec(mask_bytes=32, summary_bytes=32)
        assert large.leaf_fanout(4088) < small.leaf_fanout(4088)
        assert large.internal_fanout(4088) < small.internal_fanout(4088)

    def test_invalid_widths(self):
        with pytest.raises(IndexError_):
            FeatureNodeCodec(mask_bytes=0, summary_bytes=8)


class TestNodeMbr:
    def test_mbr_of_leaf(self):
        node = Node(0, 0, [ObjectLeafEntry(0, 0.1, 0.9), ObjectLeafEntry(1, 0.5, 0.2)])
        assert node.mbr() == Rect((0.1, 0.2), (0.5, 0.9))

    def test_empty_node_mbr_rejected(self):
        with pytest.raises(IndexError_):
            Node(0, 0, []).mbr()
