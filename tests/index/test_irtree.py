"""Tests for the IR-tree extension baseline."""

import random

import pytest

from repro.core.bruteforce import brute_force
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.index.ir2 import IR2Tree
from repro.index.irtree import IRTree
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_feature_objects, random_mask


@pytest.fixture(scope="module")
def dataset():
    vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
    return FeatureDataset(make_feature_objects(300, seed=99), vocab, "irt")


class TestStructure:
    def test_build_and_validate(self, dataset):
        tree = IRTree.build(dataset)
        tree.validate()
        assert tree.count == len(dataset)
        assert tree.metadata()["kind"] == "irtree"

    def test_summaries_are_exact_unions(self, dataset):
        tree = IRTree.build(dataset)
        root = tree.read_node(tree.root_id)
        if root.is_leaf:
            pytest.skip("tree too small")
        for e in root.entries:
            union = 0
            stack = [tree.read_node(e.child)]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    for le in node.entries:
                        union |= le.mask
                else:
                    stack.extend(
                        tree.read_node(c.child) for c in node.entries
                    )
            assert e.summary == union

    def test_spatial_build_order_matches_ir2(self, dataset):
        """IR-tree and IR²-tree cluster identically (spatial Hilbert)."""
        irt = IRTree.build(dataset)
        ir2 = IR2Tree.build(dataset)
        irt_leaves = [e.fid for e in irt.iter_features()]
        ir2_leaves = [e.fid for e in ir2.iter_features()]
        assert irt_leaves == ir2_leaves

    def test_bounds_at_least_as_tight_as_ir2(self, dataset):
        """Same clustering, exact summaries: IR-tree bounds <= IR² bounds."""
        from repro.storage.pagefile import MemoryPageFile

        irt = IRTree.build(dataset, pagefile=MemoryPageFile(512))
        ir2 = IR2Tree.build(dataset, pagefile=MemoryPageFile(512))
        rng = random.Random(5)
        for _ in range(5):
            mask = random_mask(rng)
            s_irt = irt.make_scorer(mask, 0.5)
            s_ir2 = ir2.make_scorer(mask, 0.5)
            root_irt = irt.read_node(irt.root_id)
            root_ir2 = ir2.read_node(ir2.root_id)
            for a, b in zip(root_irt.entries, root_ir2.entries):
                assert s_irt.node_bound(a) <= s_ir2.node_bound(b) + 1e-9


class TestQueries:
    def test_end_to_end_correct(self, objects, feature_sets):
        processor = QueryProcessor.build(objects, feature_sets, index="irtree")
        rng = random.Random(7)
        for variant in (Variant.RANGE, Variant.INFLUENCE, Variant.NEAREST):
            query = PreferenceQuery(
                k=5,
                radius=0.08,
                lam=0.5,
                keyword_masks=(random_mask(rng), random_mask(rng)),
                variant=variant,
            )
            got = processor.query(query).scores
            want = brute_force(objects, feature_sets, query).scores
            assert got == pytest.approx(want, abs=1e-9)
