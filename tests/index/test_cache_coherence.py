"""Node-cache coherence under mutation, on every storage flavour.

Two caches sit between a query and a page: the decoded-node cache and
the page buffer pool.  A mutation must leave neither serving a
pre-mutation image.  These tests warm both caches with traversals, then
mutate, then check two ways:

* **structurally** — every page still held by the decoded-node cache
  must equal a fresh decode of its page read straight from the page
  file (below both caches);
* **behaviourally** — a warm-cache traversal returns exactly what a
  cold reopen of the same storage returns.

Parametrized over buffered ``DiskPageFile`` and its ``mmap_reads=True``
mode, where a stale shared mapping would be an extra way to serve old
bytes.
"""

from __future__ import annotations

import random

import pytest

from repro.index.nodes import FeatureLeafEntry, ObjectLeafEntry
from repro.index.object_rtree import ObjectRTree
from repro.index.reopen import open_tree
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset
from repro.storage.pagefile import DiskPageFile, MemoryPageFile
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_data_objects, make_feature_objects

STORAGES = ("memory", "disk", "disk-mmap")


def _pagefile(kind: str, tmp_path, name: str, page_size: int = 256):
    if kind == "memory":
        return MemoryPageFile(page_size=page_size)
    return DiskPageFile(
        str(tmp_path / name),
        page_size=page_size,
        mmap_reads=(kind == "disk-mmap"),
    )


def assert_node_cache_coherent(tree) -> None:
    """Cached decoded nodes == fresh decodes of their persisted pages."""
    for page_id in tree.node_cache.page_ids():
        cached = tree.node_cache.peek(page_id)
        if cached is None:
            continue
        fresh = tree.codec.decode(page_id, tree.pagefile.read(page_id).payload)
        assert cached.level == fresh.level, f"page {page_id}: stale level"
        assert cached.entries == fresh.entries, (
            f"page {page_id}: decoded-node cache serves a pre-mutation image"
        )


def _warm(tree) -> None:
    list(tree.range_search((0.5, 0.5), 2.0))


@pytest.mark.parametrize("storage", STORAGES)
class TestObjectTreeCoherence:
    def test_mutations_never_serve_stale_nodes(self, storage, tmp_path):
        objects = make_data_objects(200, seed=95)
        pagefile = _pagefile(storage, tmp_path, "objects.tree")
        tree = ObjectRTree(pagefile, buffer_pages=64)
        for o in objects:
            tree.insert(ObjectLeafEntry(o.oid, o.x, o.y))
        rng = random.Random(6)
        alive = {o.oid: o for o in objects}
        next_id = 10_000
        for step in range(120):
            _warm(tree)  # traversal caches the pages the mutation rewrites
            if alive and rng.random() < 0.5:
                o = alive.pop(rng.choice(sorted(alive)))
                assert tree.delete(ObjectLeafEntry(o.oid, o.x, o.y))
            else:
                x, y = rng.random(), rng.random()
                tree.insert(ObjectLeafEntry(next_id, x, y))
                alive[next_id] = type(objects[0])(next_id, x, y)
                next_id += 1
            if step % 15 == 0:
                assert_node_cache_coherent(tree)
        assert_node_cache_coherent(tree)
        got = sorted(e.oid for e in tree.range_search((0.5, 0.5), 2.0))
        assert got == sorted(alive)

    def test_warm_traversal_equals_cold_reopen(self, storage, tmp_path):
        if storage == "memory":
            pytest.skip("reopen-from-path needs a disk file")
        path = str(tmp_path / "reopen.tree")
        objects = make_data_objects(150, seed=96)
        tree = ObjectRTree(
            DiskPageFile(path, page_size=256,
                         mmap_reads=(storage == "disk-mmap")),
            buffer_pages=64,
        )
        for o in objects:
            tree.insert(ObjectLeafEntry(o.oid, o.x, o.y))
        _warm(tree)
        for o in objects[::3]:
            assert tree.delete(ObjectLeafEntry(o.oid, o.x, o.y))
        warm = sorted(e.oid for e in tree.range_search((0.5, 0.5), 2.0))
        tree.pagefile.flush()

        cold = open_tree(
            DiskPageFile(path, page_size=256,
                         mmap_reads=(storage == "disk-mmap"))
        )
        assert warm == sorted(
            e.oid for e in cold.range_search((0.5, 0.5), 2.0)
        )


@pytest.mark.parametrize("storage", STORAGES)
class TestFeatureTreeCoherence:
    def test_mutations_never_serve_stale_nodes(self, storage, tmp_path):
        vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
        features = make_feature_objects(150, seed=97)
        tree = SRTIndex.build(
            FeatureDataset(features, vocab, "coh"),
            pagefile=_pagefile(storage, tmp_path, "features.tree"),
            buffer_pages=64,
        )
        rng = random.Random(7)
        survivors = list(features)
        for step in range(60):
            list(tree.iter_features())  # full traversal warms the caches
            f = survivors.pop(rng.randrange(len(survivors)))
            assert tree.delete(
                FeatureLeafEntry(f.fid, f.x, f.y, f.score, f.keyword_mask())
            )
            if step % 10 == 0:
                assert_node_cache_coherent(tree)
        assert_node_cache_coherent(tree)
        tree.validate()
