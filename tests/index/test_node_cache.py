"""Tests for the decoded-node cache layered on the page buffer."""

import pytest

from repro.index.nodes import ObjectLeafEntry
from repro.index.object_rtree import ObjectRTree
from repro.storage.pagefile import MemoryPageFile
from tests.conftest import make_data_objects


class TestNodeCacheCoherence:
    def test_read_after_insert_sees_update(self):
        tree = ObjectRTree.build(make_data_objects(100, seed=51))
        tree.insert(ObjectLeafEntry(999, 0.5, 0.5))
        # Cached nodes must reflect the mutation immediately.
        got = [e.oid for e in tree.range_search((0.5, 0.5), 1e-9)]
        assert 999 in got

    def test_read_after_delete_sees_update(self):
        objects = make_data_objects(100, seed=52)
        tree = ObjectRTree.build(objects)
        victim = objects[0]
        tree.delete(ObjectLeafEntry(victim.oid, victim.x, victim.y))
        got = [e.oid for e in tree.range_search((victim.x, victim.y), 1e-12)]
        assert victim.oid not in got

    def test_cache_hit_counts_as_buffer_hit(self):
        tree = ObjectRTree.build(make_data_objects(100, seed=53))
        tree.clear_cache()
        tree.stats.reset()
        root_id = tree.root_id
        tree.read_node(root_id)
        assert tree.stats.reads >= 1
        before_hits = tree.stats.buffer_hits
        tree.read_node(root_id)
        assert tree.stats.buffer_hits == before_hits + 1
        assert tree.stats.reads >= 1  # no extra physical read

    def test_clear_cache_forces_decode_and_read(self):
        tree = ObjectRTree.build(make_data_objects(100, seed=54))
        tree.read_node(tree.root_id)
        tree.clear_cache()
        tree.stats.reset()
        tree.read_node(tree.root_id)
        assert tree.stats.reads == 1

    def test_capacity_bounded(self):
        tree = ObjectRTree(MemoryPageFile(page_size=256), buffer_pages=4)
        for o in make_data_objects(300, seed=55):
            tree.insert(ObjectLeafEntry(o.oid, o.x, o.y))
        assert len(tree._node_cache) <= 4

    def test_queries_identical_with_and_without_cache(self):
        objects = make_data_objects(400, seed=56)
        warm = ObjectRTree.build(objects)
        warm_result = sorted(
            e.oid for e in warm.range_search((0.4, 0.6), 0.2)
        )
        cold = ObjectRTree.build(objects)
        cold.clear_cache()
        cold_result = sorted(
            e.oid for e in cold.range_search((0.4, 0.6), 0.2)
        )
        assert warm_result == cold_result


class TestExplicitInvalidation:
    def test_write_node_invalidates_stale_decode(self):
        """A cached decode must never survive a page rewrite."""
        tree = ObjectRTree.build(make_data_objects(120, seed=57))
        # Find a leaf and warm the cache with it.
        node = tree.read_node(tree.root_id)
        while not node.is_leaf:
            node = tree.read_node(node.entries[0].child)
        assert node.page_id in tree.node_cache
        stale = tree.read_node(node.page_id)
        n_before = len(stale.entries)
        # Rewrite the page with one entry removed.
        node.entries = node.entries[:-1]
        tree.write_node(node)
        fresh = tree.read_node(node.page_id)
        assert len(fresh.entries) == n_before - 1
        # And a cold read (cache cleared) agrees with the cached view.
        tree.clear_cache()
        cold = tree.read_node(node.page_id)
        assert [e.oid for e in cold.entries] == [e.oid for e in fresh.entries]

    def test_insert_updates_visible_through_cache(self):
        tree = ObjectRTree.build(make_data_objects(150, seed=58))
        # Warm every node into the cache.
        list(tree.iter_leaf_entries())
        tree.insert(ObjectLeafEntry(7777, 0.25, 0.75))
        assert 7777 in [e.oid for e in tree.range_search((0.25, 0.75), 1e-9)]
        tree.validate()


class TestCapacityZeroParity:
    def test_disabled_cache_same_results(self):
        objects = make_data_objects(400, seed=59)
        cached = ObjectRTree.build(objects)
        uncached = ObjectRTree.build(objects, node_cache_pages=0)
        assert len(uncached._node_cache) == 0
        got_cached = sorted(e.oid for e in cached.range_search((0.3, 0.7), 0.15))
        got_uncached = sorted(
            e.oid for e in uncached.range_search((0.3, 0.7), 0.15)
        )
        assert got_cached == got_uncached
        # Every lookup missed; nothing was ever retained.
        assert uncached.node_cache.hits == 0
        assert len(uncached.node_cache) == 0

    def test_query_parity_with_cache_disabled(self, objects, feature_sets):
        from repro.core.processor import QueryProcessor
        from repro.core.query import PreferenceQuery

        query = PreferenceQuery(
            k=5, radius=0.1, lam=0.5, keyword_masks=(0b111, 0b101)
        )
        warm = QueryProcessor.build(objects, feature_sets)
        cold = QueryProcessor.build(objects, feature_sets)
        cold.object_tree.node_cache.capacity = 0
        for tree in cold.feature_trees:
            tree.node_cache.capacity = 0
        cold.clear_buffers()
        for algorithm in ("stps", "stds"):
            a = warm.query(query, algorithm=algorithm)
            b = cold.query(query, algorithm=algorithm)
            assert a.oids == b.oids
            assert a.scores == b.scores


class TestClearBuffers:
    def test_clear_buffers_clears_both_layers(self, srt_processor):
        from repro.core.query import PreferenceQuery

        query = PreferenceQuery(
            k=5, radius=0.1, lam=0.5, keyword_masks=(0b11, 0b11)
        )
        srt_processor.query(query)
        trees = [srt_processor.object_tree] + srt_processor.feature_trees
        assert any(len(t._node_cache) > 0 for t in trees)
        assert any(len(t.buffer) > 0 for t in trees)
        srt_processor.clear_buffers()
        assert all(len(t._node_cache) == 0 for t in trees)
        assert all(len(t.buffer) == 0 for t in trees)


class TestAccountingInvariant:
    def test_logical_reads_consistent(self, srt_processor):
        from repro.core.query import PreferenceQuery

        srt_processor.clear_buffers()
        srt_processor.reset_stats()
        query = PreferenceQuery(
            k=5, radius=0.1, lam=0.5, keyword_masks=(0b11, 0b11)
        )
        result = srt_processor.query(query)
        stats_sum = srt_processor.object_tree.stats.logical_reads + sum(
            t.stats.logical_reads for t in srt_processor.feature_trees
        )
        assert result.stats.io_reads + result.stats.buffer_hits == stats_sum
        assert result.stats.io_time_s == pytest.approx(
            result.stats.io_reads
            * srt_processor.object_tree.stats.page_read_cost_s
        )

    def test_node_cache_counters_in_query_stats(self, srt_processor):
        from repro.core.query import PreferenceQuery

        srt_processor.clear_buffers()
        srt_processor.reset_stats()
        query = PreferenceQuery(
            k=5, radius=0.1, lam=0.5, keyword_masks=(0b11, 0b11)
        )
        cold = srt_processor.query(query)
        # The cold run decodes every node it touches at least once.
        assert cold.stats.node_cache_misses > 0
        warm = srt_processor.query(query)
        # The warm run serves the hot upper levels from the node cache.
        assert warm.stats.node_cache_hits > 0
        assert warm.stats.node_cache_hit_rate > 0.5
        assert (
            warm.stats.node_cache_misses < cold.stats.node_cache_misses
            or warm.stats.node_cache_misses == 0
        )
