"""Tests for the decoded-node cache layered on the page buffer."""

import pytest

from repro.index.nodes import ObjectLeafEntry
from repro.index.object_rtree import ObjectRTree
from repro.storage.pagefile import MemoryPageFile
from tests.conftest import make_data_objects


class TestNodeCacheCoherence:
    def test_read_after_insert_sees_update(self):
        tree = ObjectRTree.build(make_data_objects(100, seed=51))
        tree.insert(ObjectLeafEntry(999, 0.5, 0.5))
        # Cached nodes must reflect the mutation immediately.
        got = [e.oid for e in tree.range_search((0.5, 0.5), 1e-9)]
        assert 999 in got

    def test_read_after_delete_sees_update(self):
        objects = make_data_objects(100, seed=52)
        tree = ObjectRTree.build(objects)
        victim = objects[0]
        tree.delete(ObjectLeafEntry(victim.oid, victim.x, victim.y))
        got = [e.oid for e in tree.range_search((victim.x, victim.y), 1e-12)]
        assert victim.oid not in got

    def test_cache_hit_counts_as_buffer_hit(self):
        tree = ObjectRTree.build(make_data_objects(100, seed=53))
        tree.clear_cache()
        tree.stats.reset()
        root_id = tree.root_id
        tree.read_node(root_id)
        assert tree.stats.reads >= 1
        before_hits = tree.stats.buffer_hits
        tree.read_node(root_id)
        assert tree.stats.buffer_hits == before_hits + 1
        assert tree.stats.reads >= 1  # no extra physical read

    def test_clear_cache_forces_decode_and_read(self):
        tree = ObjectRTree.build(make_data_objects(100, seed=54))
        tree.read_node(tree.root_id)
        tree.clear_cache()
        tree.stats.reset()
        tree.read_node(tree.root_id)
        assert tree.stats.reads == 1

    def test_capacity_bounded(self):
        tree = ObjectRTree(MemoryPageFile(page_size=256), buffer_pages=4)
        for o in make_data_objects(300, seed=55):
            tree.insert(ObjectLeafEntry(o.oid, o.x, o.y))
        assert len(tree._node_cache) <= 4

    def test_queries_identical_with_and_without_cache(self):
        objects = make_data_objects(400, seed=56)
        warm = ObjectRTree.build(objects)
        warm_result = sorted(
            e.oid for e in warm.range_search((0.4, 0.6), 0.2)
        )
        cold = ObjectRTree.build(objects)
        cold.clear_cache()
        cold_result = sorted(
            e.oid for e in cold.range_search((0.4, 0.6), 0.2)
        )
        assert warm_result == cold_result


class TestAccountingInvariant:
    def test_logical_reads_consistent(self, srt_processor):
        from repro.core.query import PreferenceQuery

        srt_processor.clear_buffers()
        srt_processor.reset_stats()
        query = PreferenceQuery(
            k=5, radius=0.1, lam=0.5, keyword_masks=(0b11, 0b11)
        )
        result = srt_processor.query(query)
        stats_sum = srt_processor.object_tree.stats.logical_reads + sum(
            t.stats.logical_reads for t in srt_processor.feature_trees
        )
        assert result.stats.io_reads + result.stats.buffer_hits == stats_sum
        assert result.stats.io_time_s == pytest.approx(
            result.stats.io_reads
            * srt_processor.object_tree.stats.page_read_cost_s
        )
