"""Tests for the experiment registry and one end-to-end panel."""

import pytest

from repro.bench.config import BenchConfig
from repro.bench.context import BenchContext
from repro.bench.experiments import GROUPS, REGISTRY, resolve

EXPECTED_PANELS = {
    "table3a", "table3b", "table3c", "table3d",
    "fig7a", "fig7b", "fig7c", "fig7d",
    "fig8a", "fig8b", "fig8c", "fig8d",
    "fig9a", "fig9b", "fig9c", "fig9d",
    "fig10a", "fig10b", "fig10c", "fig10d",
    "fig11a", "fig11b",
    "fig12a", "fig12b", "fig12c", "fig12d",
    "fig13a", "fig13b",
    "fig14a", "fig14b",
    "ablation_pulling", "ablation_buffer", "ablation_build",
}


class TestRegistry:
    def test_every_paper_panel_registered(self):
        assert EXPECTED_PANELS <= set(REGISTRY)

    def test_groups_cover_all(self):
        assert set(GROUPS["all"]) == set(REGISTRY)

    def test_resolve_group(self):
        experiments = resolve(["fig7"])
        assert [e.experiment_id for e in experiments] == [
            "fig7a", "fig7b", "fig7c", "fig7d",
        ]

    def test_resolve_dedupes(self):
        experiments = resolve(["fig7a", "fig7"])
        ids = [e.experiment_id for e in experiments]
        assert ids.count("fig7a") == 1

    def test_resolve_unknown(self):
        with pytest.raises(KeyError):
            resolve(["fig99"])

    def test_paper_refs_present(self):
        for experiment in REGISTRY.values():
            assert experiment.paper_ref
            assert experiment.title


@pytest.fixture(scope="module")
def tiny_ctx():
    cfg = BenchConfig(
        object_cardinality=400,
        feature_cardinality=400,
        cardinality_sweep=(200, 400),
        c_sweep=(2,),
        vocab_size=32,
        vocab_sweep=(32,),
        real_scale=0.005,
        radius=0.1,
        radius_sweep=(0.1,),
        k_sweep=(3,),
        lam_sweep=(0.5,),
        keywords_sweep=(2,),
        queries_per_point=2,
        stds_queries_per_point=1,
        nn_queries_per_point=1,
    )
    return BenchContext(cfg)


class TestEndToEnd:
    def test_scalability_panel_runs(self, tiny_ctx):
        result = REGISTRY["fig7a"].run(tiny_ctx)
        assert result.x_values == [200, 400]
        assert set(result.series) == {"STPS/SRT", "STPS/IR2"}
        for measurements in result.series.values():
            assert len(measurements) == 2
            assert all(m.total_ms >= 0 for m in measurements)

    def test_query_param_panel_runs(self, tiny_ctx):
        result = REGISTRY["fig8b"].run(tiny_ctx)
        assert result.x_values == [3]
        assert set(result.series) == {"STPS/SRT", "STPS/IR2"}

    def test_stds_panel_runs(self, tiny_ctx):
        result = REGISTRY["table3a"].run(tiny_ctx)
        assert set(result.series) == {"STDS/SRT", "STDS/IR2"}

    def test_nn_panel_tracks_voronoi(self, tiny_ctx):
        result = REGISTRY["fig14b"].run(tiny_ctx)
        any_voronoi = any(
            m.voronoi_ms > 0
            for ms in result.series.values()
            for m in ms
        )
        assert any_voronoi

    def test_context_caches_processors(self, tiny_ctx):
        a = tiny_ctx.synthetic_processor("srt")
        b = tiny_ctx.synthetic_processor("srt")
        assert a is b

    def test_ablation_build_runs(self, tiny_ctx):
        result = REGISTRY["ablation_build"].run(tiny_ctx)
        assert result.x_values == ["bulk", "insert"]
