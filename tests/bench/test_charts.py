"""Tests for the ASCII chart renderer."""

from repro.bench.charts import BAR_WIDTH, CPU_CHAR, IO_CHAR, VORONOI_CHAR, render_chart
from repro.bench.experiments import ExperimentResult
from repro.bench.timing import Measurement


def make_result(io_ms, cpu_ms, voronoi_ms=0.0):
    result = ExperimentResult("figX", "Sample", "Figure X", "k", [5])
    result.add(
        "STPS/SRT",
        Measurement(
            1, io_ms + cpu_ms, cpu_ms, io_ms, 10.0, 0.0, 1.0, voronoi_ms, 0.0
        ),
    )
    return result


class TestRenderChart:
    def test_io_and_cpu_segments(self):
        chart = render_chart(make_result(io_ms=30.0, cpu_ms=10.0))
        bar_line = next(
            line for line in chart.splitlines() if line.rstrip().endswith("ms")
        )
        io_cells = bar_line.count(IO_CHAR)
        cpu_cells = bar_line.count(CPU_CHAR)
        assert io_cells + cpu_cells == BAR_WIDTH  # peak bar fills width
        assert abs(io_cells / (io_cells + cpu_cells) - 0.75) < 0.05

    def test_voronoi_overlay(self):
        chart = render_chart(make_result(io_ms=10.0, cpu_ms=30.0, voronoi_ms=20.0))
        assert VORONOI_CHAR in chart

    def test_zero_times(self):
        chart = render_chart(make_result(io_ms=0.0, cpu_ms=0.0))
        assert "figX" in chart  # renders without dividing by zero

    def test_scales_relative_to_peak(self):
        result = ExperimentResult("figY", "Two", "Figure Y", "k", [1, 2])
        result.add(
            "S", Measurement(1, 40.0, 20.0, 20.0, 0, 0, 0, 0.0, 0)
        )
        result.add(
            "S", Measurement(1, 10.0, 5.0, 5.0, 0, 0, 0, 0.0, 0)
        )
        chart = render_chart(result)
        bars = [
            line
            for line in chart.splitlines()
            if line.rstrip().endswith("ms")
        ]
        long_bar = bars[0].count(IO_CHAR) + bars[0].count(CPU_CHAR)
        short_bar = bars[1].count(IO_CHAR) + bars[1].count(CPU_CHAR)
        assert long_bar == BAR_WIDTH
        assert abs(short_bar - BAR_WIDTH / 4) <= 1
