"""Tests for benchmark configuration."""

import pytest

from repro.bench.config import BenchConfig


class TestScales:
    def test_default(self):
        cfg = BenchConfig.default()
        assert cfg.object_cardinality == 10_000
        assert cfg.c == 2

    def test_quick_smaller_than_default(self):
        quick, default = BenchConfig.quick(), BenchConfig.default()
        assert quick.object_cardinality < default.object_cardinality
        assert quick.queries_per_point < default.queries_per_point

    def test_paper_matches_table2(self):
        cfg = BenchConfig.paper()
        assert cfg.object_cardinality == 100_000
        assert cfg.cardinality_sweep == (50_000, 100_000, 500_000, 1_000_000)
        assert cfg.radius == 0.01
        assert cfg.radius_sweep == (0.005, 0.01, 0.02, 0.04, 0.08)
        assert cfg.k_sweep == (5, 10, 20, 40, 80)
        assert cfg.lam_sweep == (0.1, 0.3, 0.5, 0.7, 0.9)
        assert cfg.keywords_sweep == (1, 3, 5, 7, 9)
        assert cfg.c_sweep == (2, 3, 4, 5)
        assert cfg.vocab_sweep == (64, 128, 192, 256)
        assert cfg.queries_per_point == 1000

    def test_radius_density_correction(self):
        """Scaled grids keep pi*r^2*|O| roughly constant vs the paper."""
        paper = BenchConfig.paper()
        default = BenchConfig.default()
        paper_density = paper.radius**2 * paper.object_cardinality
        default_density = default.radius**2 * default.object_cardinality
        assert default_density == pytest.approx(paper_density, rel=0.25)


class TestEnvAndOverrides:
    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        assert BenchConfig.from_env() == BenchConfig.quick()

    def test_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert BenchConfig.from_env() == BenchConfig.default()

    def test_from_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "enormous")
        with pytest.raises(ValueError):
            BenchConfig.from_env()

    def test_with_overrides(self):
        cfg = BenchConfig.default().with_overrides(k=99)
        assert cfg.k == 99
        assert cfg.radius == BenchConfig.default().radius
