"""Tests for workload measurement."""

import pytest

from repro.bench.timing import Measurement, measure
from repro.core.query import PreferenceQuery


def _queries(n=4):
    return [
        PreferenceQuery(k=3, radius=0.1, lam=0.5, keyword_masks=(0b11, 0b110))
        for _ in range(n)
    ]


class TestMeasure:
    def test_basic_fields(self, srt_processor):
        m = measure(srt_processor, _queries(), warmup=1)
        assert m.queries == 4
        assert m.total_ms >= m.io_ms
        assert m.total_ms == pytest.approx(m.cpu_ms + m.io_ms, rel=1e-6)

    def test_cold_cache_more_io(self, srt_processor):
        warm = measure(srt_processor, _queries(), cold_cache=False)
        cold = measure(srt_processor, _queries(), cold_cache=True)
        assert cold.io_reads >= warm.io_reads

    def test_empty_workload_rejected(self, srt_processor):
        with pytest.raises(ValueError):
            measure(srt_processor, [])

    def test_stds_algorithm(self, srt_processor):
        m = measure(srt_processor, _queries(2), algorithm="stds")
        assert m.queries == 2


class TestMeasurementScaled:
    def test_scaled(self):
        m = Measurement(5, 10.0, 6.0, 4.0, 100.0, 50.0, 7.0, 2.0, 1.0)
        s = m.scaled(2.0)
        assert s.total_ms == 20.0
        assert s.io_reads == 200.0
        assert s.queries == 5
