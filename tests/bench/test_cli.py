"""Tests for the repro-bench CLI."""

import os

from repro.bench.cli import build_parser, main


class TestParser:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        args = build_parser().parse_args([])
        assert args.scale == "default"
        assert args.experiments == []

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        args = build_parser().parse_args([])
        assert args.scale == "quick"

    def test_chart_and_shape_flags(self):
        args = build_parser().parse_args(["fig7a", "--chart", "--check-shapes"])
        assert args.chart and args.check_shapes
        assert args.experiments == ["fig7a"]


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out
        assert "table3" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_tiny_experiment(self, capsys, tmp_path, monkeypatch):
        # quick scale is still too big for a unit test; shrink via env of
        # the context is not supported, so run the smallest real panel at
        # quick scale but cap work by choosing the ablation_build panel
        # on a reduced config through REPRO_BENCH_SCALE=quick.
        monkeypatch.setenv("REPRO_BENCH_SCALE", "quick")
        csv_dir = str(tmp_path / "csv")
        assert main(["fig8b", "--scale", "quick", "--csv-dir", csv_dir]) == 0
        out = capsys.readouterr().out
        assert "fig8b" in out
        assert os.path.exists(os.path.join(csv_dir, "fig8b.csv"))
