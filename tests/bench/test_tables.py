"""Tests for result rendering (text tables and CSV)."""

import csv
import io

from repro.bench.experiments import ExperimentResult
from repro.bench.tables import format_result, result_from_csv, result_to_csv
from repro.bench.timing import Measurement


def sample_result(voronoi=0.0):
    result = ExperimentResult(
        "figX", "Sample", "Figure X", "k", [5, 10]
    )
    for label in ("STPS/SRT", "STPS/IR2"):
        for _ in result.x_values:
            result.add(
                label,
                Measurement(3, 12.5, 4.5, 8.0, 42.0, 10.0, 2.0, voronoi, 1.0),
            )
    return result


class TestFormat:
    def test_contains_series_and_rows(self):
        text = format_result(sample_result())
        assert "figX" in text
        assert "Figure X" in text
        assert "STPS/SRT" in text and "STPS/IR2" in text
        assert "12.5ms" in text
        assert text.count("io") >= 4

    def test_voronoi_shown_when_present(self):
        assert "voronoi" in format_result(sample_result(voronoi=3.0))
        assert "voronoi" not in format_result(sample_result(voronoi=0.0))


class TestCsv:
    def test_csv_parses_and_has_all_rows(self):
        text = result_to_csv(sample_result())
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 4  # 2 series x 2 x-values
        assert rows[0]["experiment"] == "figX"
        assert float(rows[0]["total_ms"]) == 12.5
        assert float(rows[0]["io_reads"]) == 42.0


class TestCsvRoundtrip:
    def test_roundtrip_preserves_measurements(self):
        original = sample_result(voronoi=3.0)
        rebuilt = result_from_csv(result_to_csv(original))
        assert rebuilt.experiment_id == original.experiment_id
        assert rebuilt.x_values == original.x_values
        assert set(rebuilt.series) == set(original.series)
        for label in original.series:
            for a, b in zip(original.series[label], rebuilt.series[label]):
                assert a.total_ms == b.total_ms
                assert a.voronoi_ms == b.voronoi_ms

    def test_empty_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            result_from_csv("experiment,paper_ref\n")
