"""Tests for the benchmark context's caching behaviour."""

import pytest

from repro.bench.config import BenchConfig
from repro.bench.context import BenchContext
from repro.core.query import Variant


@pytest.fixture(scope="module")
def ctx():
    return BenchContext(
        BenchConfig(
            object_cardinality=200,
            feature_cardinality=200,
            cardinality_sweep=(100, 200),
            vocab_size=16,
            real_scale=0.002,
            queries_per_point=2,
        )
    )


class TestCaching:
    def test_objects_cached_by_cardinality(self, ctx):
        assert ctx.objects() is ctx.objects()
        assert ctx.objects(100) is not ctx.objects(200)

    def test_feature_sets_cached_by_key(self, ctx):
        assert ctx.feature_sets() is ctx.feature_sets()
        assert ctx.feature_sets(c=3) is not ctx.feature_sets(c=2)

    def test_processor_cached_per_index(self, ctx):
        assert ctx.synthetic_processor("srt") is ctx.synthetic_processor("srt")
        assert ctx.synthetic_processor("srt") is not ctx.synthetic_processor(
            "ir2"
        )

    def test_real_bundle_cached(self, ctx):
        assert ctx.real() is ctx.real()
        assert ctx.real_processor("srt") is ctx.real_processor("srt")


class TestWorkloads:
    def test_workload_defaults_from_config(self, ctx):
        queries = ctx.workload(ctx.feature_sets())
        assert len(queries) == 2
        assert queries[0].k == ctx.cfg.k
        assert queries[0].radius == ctx.cfg.radius

    def test_workload_overrides(self, ctx):
        queries = ctx.workload(
            ctx.feature_sets(),
            variant=Variant.NEAREST,
            n_queries=3,
            k=7,
            radius=0.2,
            lam=0.9,
            keywords_per_set=1,
        )
        assert len(queries) == 3
        q = queries[0]
        assert (q.k, q.radius, q.lam, q.variant) == (
            7,
            0.2,
            0.9,
            Variant.NEAREST,
        )
        assert all(m.bit_count() == 1 for m in q.keyword_masks)
