"""Tests for the shape-claim validator."""

from repro.bench.experiments import ExperimentResult
from repro.bench.shapes import format_checks, validate
from repro.bench.timing import Measurement


def m(total, voronoi=0.0):
    return Measurement(1, total, total / 2, total / 2, 0, 0, 0, voronoi, 0)


def result_with(eid, x_values, srt_totals, ir2_totals, voronoi=0.0):
    result = ExperimentResult(eid, "t", "ref", "x", list(x_values))
    for total in srt_totals:
        result.add("STPS/SRT", m(total, voronoi))
    for total in ir2_totals:
        result.add("STPS/IR2", m(total, voronoi))
    return result


class TestSrtWins:
    def test_pass_when_srt_faster(self):
        result = result_with("fig7a", [1, 2], [10, 20], [20, 40])
        checks = validate(result)
        srt_check = next(c for c in checks if "SRT" in c.claim)
        assert srt_check.passed

    def test_fail_when_srt_slower(self):
        result = result_with("fig7a", [1, 2], [50, 60], [10, 20])
        checks = validate(result)
        srt_check = next(c for c in checks if "SRT" in c.claim)
        assert not srt_check.passed


class TestMonotone:
    def test_radius_decreasing_claim(self):
        good = result_with("fig8a", [1, 2, 3], [30, 20, 10], [35, 25, 15])
        assert all(c.passed for c in validate(good))
        bad = result_with("fig8a", [1, 2, 3], [10, 20, 30], [12, 25, 33])
        radius_check = next(
            c for c in validate(bad) if "decreases" in c.claim
        )
        assert not radius_check.passed

    def test_k_increasing_claim(self):
        good = result_with("fig9b", [5, 10], [10, 20], [12, 24])
        k_check = next(c for c in validate(good) if "grows with k" in c.claim)
        assert k_check.passed


class TestFlatAndVoronoi:
    def test_lambda_flat(self):
        flat = result_with("fig8c", [0.1, 0.9], [10, 12], [11, 13])
        lam_check = next(c for c in validate(flat) if "flat" in c.claim)
        assert lam_check.passed
        spiky = result_with("fig8c", [0.1, 0.9], [10, 100], [11, 90])
        lam_check = next(c for c in validate(spiky) if "flat" in c.claim)
        assert not lam_check.passed

    def test_voronoi_material(self):
        nn = result_with("fig13a", [1], [100], [110], voronoi=50.0)
        v_check = next(c for c in validate(nn) if "Voronoi" in c.claim)
        assert v_check.passed


class TestFormat:
    def test_pass_fail_lines(self):
        result = result_with("fig7a", [1], [10], [20])
        text = format_checks(validate(result))
        assert "[PASS]" in text

    def test_unknown_experiment_no_checks(self):
        result = result_with("ablation_buffer", [1], [10], [20])
        assert validate(result) == []
