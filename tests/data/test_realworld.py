"""Tests for the factual-like real-world generator."""

import math

import pytest

from repro.data.realworld import (
    PAPER_HOTELS,
    PAPER_RESTAURANTS,
    cuisine_vocabulary,
    real_world,
)
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def data():
    return real_world(scale=0.02, seed=1)


class TestShape:
    def test_cardinalities_scale(self, data):
        assert len(data.hotels) == round(PAPER_HOTELS * 0.02)
        assert len(data.restaurants) == round(PAPER_RESTAURANTS * 0.02)
        assert len(data.coffeehouses) > 0

    def test_vocabulary_size_matches_paper(self):
        vocab = cuisine_vocabulary()
        assert 120 <= vocab.size <= 140  # "around 130"

    def test_feature_sets_property(self, data):
        assert data.feature_sets == [data.restaurants, data.coffeehouses]

    def test_everything_in_unit_square(self, data):
        for h in data.hotels:
            assert 0.0 <= h.x <= 1.0 and 0.0 <= h.y <= 1.0
        for r in data.restaurants:
            assert 0.0 <= r.x <= 1.0 and 0.0 <= r.y <= 1.0

    def test_names_generated(self, data):
        assert all(h.name for h in data.hotels)
        assert all(r.name for r in data.restaurants)

    def test_keywords_nonempty_and_in_vocab(self, data):
        size = data.restaurants.vocabulary.size
        for r in data.restaurants:
            assert r.keywords
            assert all(k < size for k in r.keywords)


class TestDistribution:
    def test_deterministic(self):
        a = real_world(scale=0.01, seed=5)
        b = real_world(scale=0.01, seed=5)
        assert [(h.x, h.y) for h in a.hotels] == [(h.x, h.y) for h in b.hotels]

    def test_few_clusters_vs_synthetic(self, data):
        """Real-like data forms few clusters: hotels have very close
        restaurant neighbors (same city)."""
        hotels = list(data.hotels)[:40]
        restaurants = list(data.restaurants)
        dists = [
            min(math.hypot(h.x - r.x, h.y - r.y) for r in restaurants)
            for h in hotels
        ]
        assert sum(dists) / len(dists) < 0.02

    def test_keyword_popularity_skewed(self, data):
        """Cuisine tags follow a Zipf-like distribution."""
        from collections import Counter

        counts = Counter()
        for r in data.restaurants:
            counts.update(r.keywords)
        freqs = sorted(counts.values(), reverse=True)
        assert freqs[0] > 5 * freqs[len(freqs) // 2]

    def test_ratings_mostly_good(self, data):
        ratings = [r.score for r in data.restaurants]
        assert 0.55 <= sum(ratings) / len(ratings) <= 0.85


class TestValidation:
    def test_bad_scale(self):
        with pytest.raises(DatasetError):
            real_world(scale=0.0)

    def test_tiny_scale_still_valid(self):
        data = real_world(scale=0.0001)
        assert len(data.hotels) >= 1
        assert len(data.restaurants) >= 1
