"""Tests for the dataset-generation CLI."""

import os

from repro.data.cli import main
from repro.data.io import load_features, load_objects


class TestSyntheticCommand:
    def test_generates_all_files(self, tmp_path, capsys):
        out = str(tmp_path / "synth")
        code = main([
            "synthetic", "--objects", "50", "--features", "40",
            "--sets", "2", "--vocab", "16", "--out", out,
        ])
        assert code == 0
        objects = load_objects(os.path.join(out, "objects.jsonl"))
        assert len(objects) == 50
        for i in (1, 2):
            fs = load_features(os.path.join(out, f"features_{i}.jsonl"))
            assert len(fs) == 40
            assert fs.vocabulary.size == 16
        assert "wrote" in capsys.readouterr().out


class TestRealCommand:
    def test_generates_bundle(self, tmp_path):
        out = str(tmp_path / "real")
        code = main(["real", "--scale", "0.002", "--out", out])
        assert code == 0
        hotels = load_objects(os.path.join(out, "hotels.jsonl"))
        restaurants = load_features(os.path.join(out, "restaurants.jsonl"))
        cafes = load_features(os.path.join(out, "coffeehouses.jsonl"))
        assert len(hotels) >= 1
        assert len(restaurants) >= 1
        assert len(cafes) >= 1
        assert restaurants.vocabulary == cafes.vocabulary
