"""Tests for query-workload generation."""

import pytest

from repro.core.query import Variant
from repro.data.synthetic import synthetic_feature_sets
from repro.data.workload import WorkloadSpec, make_workload
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def feature_sets():
    return synthetic_feature_sets(2, 200, 32, seed=3)


class TestWorkload:
    def test_count_and_parameters(self, feature_sets):
        spec = WorkloadSpec(
            n_queries=25, k=7, radius=0.02, lam=0.3, keywords_per_set=2
        )
        queries = make_workload(feature_sets, spec)
        assert len(queries) == 25
        for q in queries:
            assert q.k == 7
            assert q.radius == 0.02
            assert q.lam == 0.3
            assert q.c == 2
            for mask in q.keyword_masks:
                assert 1 <= mask.bit_count() <= 2

    def test_deterministic_per_seed(self, feature_sets):
        spec = WorkloadSpec(n_queries=10, seed=4)
        a = make_workload(feature_sets, spec)
        b = make_workload(feature_sets, spec)
        assert [q.keyword_masks for q in a] == [q.keyword_masks for q in b]

    def test_seeds_differ(self, feature_sets):
        a = make_workload(feature_sets, WorkloadSpec(n_queries=10, seed=1))
        b = make_workload(feature_sets, WorkloadSpec(n_queries=10, seed=2))
        assert [q.keyword_masks for q in a] != [q.keyword_masks for q in b]

    def test_variant_passthrough(self, feature_sets):
        spec = WorkloadSpec(n_queries=3, variant=Variant.NEAREST)
        for q in make_workload(feature_sets, spec):
            assert q.variant is Variant.NEAREST

    def test_keywords_follow_data_distribution(self, feature_sets):
        """Query keywords must be keywords that occur in the data."""
        spec = WorkloadSpec(n_queries=50, keywords_per_set=3, seed=9)
        data_masks = [0, 0]
        for i, fs in enumerate(feature_sets):
            for f in fs:
                data_masks[i] |= f.keyword_mask()
        for q in make_workload(feature_sets, spec):
            for mask, data_mask in zip(q.keyword_masks, data_masks):
                assert mask & ~data_mask == 0

    def test_spec_validation(self):
        with pytest.raises(DatasetError):
            WorkloadSpec(n_queries=0)
        with pytest.raises(DatasetError):
            WorkloadSpec(keywords_per_set=0)
