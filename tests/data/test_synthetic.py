"""Tests for the synthetic clustered dataset generator."""

import math

import pytest

from repro.data.synthetic import (
    cluster_count_for,
    data_keyword_distribution,
    make_vocabulary,
    synthetic_feature_sets,
    synthetic_features,
    synthetic_objects,
)
from repro.errors import DatasetError


class TestClusterCount:
    def test_paper_density(self):
        assert cluster_count_for(100_000) == 10_000
        assert cluster_count_for(50) == 5
        assert cluster_count_for(3) == 1


class TestObjects:
    def test_cardinality_and_bounds(self):
        ds = synthetic_objects(500, seed=1)
        assert len(ds) == 500
        for o in ds:
            assert 0.0 <= o.x <= 1.0 and 0.0 <= o.y <= 1.0

    def test_deterministic(self):
        a = synthetic_objects(100, seed=7)
        b = synthetic_objects(100, seed=7)
        assert [(o.x, o.y) for o in a] == [(o.x, o.y) for o in b]

    def test_seed_changes_data(self):
        a = synthetic_objects(100, seed=7)
        b = synthetic_objects(100, seed=8)
        assert [(o.x, o.y) for o in a] != [(o.x, o.y) for o in b]

    def test_clustering_is_real(self):
        """Clustered data has far smaller NN distances than uniform."""
        ds = synthetic_objects(400, seed=3, clusters=20, sigma=0.004)
        pts = [(o.x, o.y) for o in ds]
        nn = []
        for i, p in enumerate(pts[:100]):
            best = min(
                math.hypot(p[0] - q[0], p[1] - q[1])
                for j, q in enumerate(pts)
                if i != j
            )
            nn.append(best)
        assert sum(nn) / len(nn) < 0.01  # uniform would be ~0.025


class TestFeatures:
    def test_properties(self):
        ds = synthetic_features(300, 64, seed=2, max_keywords=3)
        assert len(ds) == 300
        assert ds.vocabulary.size == 64
        for f in ds:
            assert 0.0 <= f.score <= 1.0
            assert 1 <= len(f.keywords) <= 3

    def test_shared_space_seed_colocates(self):
        objs = synthetic_objects(200, seed=1, clusters=10)
        feats = synthetic_features(200, 32, seed=9, clusters=10)
        min_dists = []
        for o in list(objs)[:50]:
            d = min(math.hypot(o.x - f.x, o.y - f.y) for f in feats)
            min_dists.append(d)
        assert sum(min_dists) / len(min_dists) < 0.02

    def test_private_space_seed_separates(self):
        objs = synthetic_objects(200, seed=1, clusters=10, space_seed=None)
        feats = synthetic_features(
            200, 32, seed=9, clusters=10, space_seed=1234
        )
        min_dists = [
            min(math.hypot(o.x - f.x, o.y - f.y) for f in feats)
            for o in list(objs)[:50]
        ]
        # Different cluster centers: typical NN distance much larger.
        assert sum(min_dists) / len(min_dists) > 0.01

    def test_bad_max_keywords(self):
        with pytest.raises(DatasetError):
            synthetic_features(10, 16, max_keywords=0)


class TestFeatureSets:
    def test_shared_vocabulary(self):
        sets = synthetic_feature_sets(3, 100, 32, seed=5)
        assert len(sets) == 3
        assert sets[0].vocabulary is sets[1].vocabulary

    def test_distinct_contents(self):
        sets = synthetic_feature_sets(2, 100, 32, seed=5)
        a = [(f.x, f.y) for f in sets[0]]
        b = [(f.x, f.y) for f in sets[1]]
        assert a != b

    def test_zero_sets_rejected(self):
        with pytest.raises(DatasetError):
            synthetic_feature_sets(0, 10, 16)


class TestVocabularyAndDistribution:
    def test_make_vocabulary(self):
        v = make_vocabulary(10)
        assert v.size == 10
        with pytest.raises(DatasetError):
            make_vocabulary(0)

    def test_keyword_distribution_weights(self):
        ds = synthetic_features(200, 16, seed=4)
        dist = data_keyword_distribution(ds)
        assert len(dist) == sum(len(f.keywords) for f in ds)

    def test_empty_distribution_rejected(self):
        from repro.model.dataset import FeatureDataset
        from repro.text.vocabulary import Vocabulary

        with pytest.raises(DatasetError):
            data_keyword_distribution(FeatureDataset([], Vocabulary(["a"])))
