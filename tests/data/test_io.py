"""Tests for dataset persistence (JSON lines)."""

import pytest

from repro.data.io import load_features, load_objects, save_features, save_objects
from repro.data.realworld import real_world
from repro.data.synthetic import synthetic_features, synthetic_objects
from repro.errors import DatasetError


class TestObjectsRoundtrip:
    def test_roundtrip(self, tmp_path):
        ds = synthetic_objects(50, seed=1)
        path = str(tmp_path / "objects.jsonl")
        save_objects(ds, path)
        loaded = load_objects(path)
        assert len(loaded) == 50
        assert [(o.oid, o.x, o.y) for o in loaded] == [
            (o.oid, o.x, o.y) for o in ds
        ]

    def test_names_preserved(self, tmp_path):
        data = real_world(scale=0.001, seed=2)
        path = str(tmp_path / "hotels.jsonl")
        save_objects(data.hotels, path)
        loaded = load_objects(path)
        assert [o.name for o in loaded] == [o.name for o in data.hotels]


class TestFeaturesRoundtrip:
    def test_roundtrip_with_vocabulary(self, tmp_path):
        ds = synthetic_features(40, 16, seed=3, label="cafes")
        path = str(tmp_path / "features.jsonl")
        save_features(ds, path)
        loaded = load_features(path)
        assert loaded.label == "cafes"
        assert loaded.vocabulary == ds.vocabulary
        assert [(f.fid, f.score, f.keywords) for f in loaded] == [
            (f.fid, f.score, f.keywords) for f in ds
        ]


class TestErrors:
    def test_missing_file(self):
        with pytest.raises(DatasetError):
            load_objects("/nonexistent/path.jsonl")

    def test_wrong_kind(self, tmp_path):
        ds = synthetic_objects(5, seed=1)
        path = str(tmp_path / "objects.jsonl")
        save_objects(ds, path)
        with pytest.raises(DatasetError):
            load_features(path)

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "kind": "objects"}\nnot-json\n')
        with pytest.raises(DatasetError):
            load_objects(str(path))

    def test_missing_meta_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 0, "x": 0.1, "y": 0.2}\n')
        with pytest.raises(DatasetError):
            load_objects(str(path))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_objects(str(path))
