"""Worker-side tracer spans crossing the process result channel.

With ``fanout="processes"`` the shard work happens in other
interpreters, which used to leave blank worker tracks in the Chrome
trace.  Workers now record their own spans and ship them back in the
result payload; the parent rebases them onto its monotonic timeline.
Spawn mode is the proving ground: a fresh interpreter can't inherit the
parent's tracer state, so any event that shows up really did travel
through the payload.
"""

from __future__ import annotations

import os

import pytest

from repro.core.query import PreferenceQuery
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.obs import tracing
from repro.shard import ShardedQueryProcessor


@pytest.fixture(scope="module")
def corpus():
    objects = synthetic_objects(300, seed=81)
    feature_sets = synthetic_feature_sets(2, 160, 32, seed=82)
    return objects, feature_sets


@pytest.fixture(autouse=True)
def clean_tracing():
    tracing.set_enabled(False)
    tracing.clear()
    yield
    tracing.set_enabled(False)
    tracing.clear()


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_worker_spans_reach_parent_trace(corpus, start_method):
    objects, feature_sets = corpus
    with ShardedQueryProcessor.build(
        objects, feature_sets, shards=2, radius=0.1,
        fanout="processes", start_method=start_method,
    ) as sharded:
        tracing.set_enabled(True)
        tracing.clear()
        result = sharded.query(
            PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101))
        )
        tracing.set_enabled(False)

    parent_pid = os.getpid()
    events = tracing.events()
    foreign = [e for e in events if e.get("pid") != parent_pid]
    assert foreign, "no worker-process events crossed the channel"

    # Worker spans carry the parent's trace id (the join key).
    trace_id = result.stats.trace_id
    tagged = [
        e for e in foreign
        if (e.get("args") or {}).get("trace_id") == trace_id
    ]
    assert tagged, "worker spans lost the parent trace id"
    names = {e["name"] for e in tagged}
    assert any(n.startswith("query.") for n in names), names

    # Rebased timestamps interleave with the parent's own fan-out span
    # window (same monotonic clock, shifted by the worker epoch delta).
    parent_query = [
        e for e in events
        if e.get("pid") == parent_pid and e["name"] == "shard.fanout"
        and (e.get("args") or {}).get("trace_id") == trace_id
    ]
    assert parent_query
    lo = min(e["ts"] for e in parent_query)
    hi = max(e["ts"] + e.get("dur", 0) for e in parent_query)
    for event in tagged:
        assert lo <= event["ts"] <= hi, (
            f"worker event at {event['ts']} outside parent window "
            f"[{lo}, {hi}]"
        )


def test_worker_thread_names_in_chrome_trace(corpus):
    objects, feature_sets = corpus
    with ShardedQueryProcessor.build(
        objects, feature_sets, shards=2, radius=0.1, fanout="processes",
    ) as sharded:
        tracing.set_enabled(True)
        tracing.clear()
        sharded.query(PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101)))
        tracing.set_enabled(False)

    doc = tracing.chrome_trace()
    parent_pid = os.getpid()
    metadata = [
        e for e in doc["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "thread_name"
        and e.get("pid") != parent_pid
    ]
    assert metadata, "no worker thread_name metadata emitted"


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_sink_collects_worker_spans_with_tracing_off(corpus, start_method):
    """A served request's sink sees worker spans under one trace id.

    Global tracing stays OFF the whole time: the per-request span sink
    alone must arm span recording across the process boundary, and the
    spans that come back must carry the caller's trace id — under spawn,
    where nothing is inherited, that identity can only have travelled
    through the dispatch payload.
    """
    objects, feature_sets = corpus
    trace_id = "feedfacefeedface"
    collector = tracing.SpanCollector()
    with ShardedQueryProcessor.build(
        objects, feature_sets, shards=2, radius=0.1,
        fanout="processes", start_method=start_method,
    ) as sharded:
        with tracing.trace_scope(trace_id), tracing.span_sink(collector):
            result = sharded.query(
                PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101))
            )

    assert result.stats.trace_id == trace_id
    assert tracing.events() == []  # global buffer untouched
    spans = collector.snapshot()
    foreign = [e for e in spans if e.get("pid") != os.getpid()]
    assert foreign, "no worker-process spans reached the request sink"
    assert all(
        (e.get("args") or {}).get("trace_id") == trace_id for e in foreign
    ), "worker spans lost the request trace id"
    local = [e for e in spans if e.get("pid") == os.getpid()]
    assert local, "no parent-side spans in the request sink"


def test_disabled_tracing_ships_no_spans(corpus):
    objects, feature_sets = corpus
    with ShardedQueryProcessor.build(
        objects, feature_sets, shards=2, radius=0.1, fanout="processes",
    ) as sharded:
        tracing.clear()
        sharded.query(PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101)))
    assert tracing.events() == []
