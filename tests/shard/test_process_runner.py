"""Process-mode shard fan-out: correctness, lifecycle, observability.

The spawn/fork matrix is the load-bearing part: fork inherits the
parent's memory (so a worker accidentally using inherited state would go
unnoticed), while spawn starts from a clean interpreter and proves the
manifests alone are sufficient to rebuild per-shard processors over the
shared-memory segments.
"""

import gc
import os
import threading
import time

import pytest

from repro.core.executor import QueryExecutor
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.errors import QueryError, ShardError
from repro.obs import flight
from repro.shard import ShardedQueryProcessor

START_METHODS = ["fork", "spawn"]


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


@pytest.fixture(scope="module")
def corpus():
    objects = synthetic_objects(300, seed=71)
    feature_sets = synthetic_feature_sets(2, 160, 32, seed=72)
    return objects, feature_sets


@pytest.fixture(scope="module")
def queries():
    return [
        PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101)),
        PreferenceQuery(3, 0.08, 0.3, (0b0110, 0b1001)),
        PreferenceQuery(8, 0.04, 0.8, (0b1111, 0b1111)),
    ]


@pytest.fixture(scope="module")
def thread_results(corpus, queries):
    objects, feature_sets = corpus
    with ShardedQueryProcessor.build(
        objects, feature_sets, shards=2, radius=0.1
    ) as sharded:
        return [sharded.query(q) for q in queries]


class TestStartMethods:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_results_identical_to_thread_mode(
        self, corpus, queries, thread_results, start_method
    ):
        objects, feature_sets = corpus
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.1,
            fanout="processes", start_method=start_method,
        ) as sharded:
            assert sharded.describe()["fanout"] == "processes"
            for query, expected in zip(queries, thread_results):
                got = sharded.query(query)
                assert [(i.oid, i.score) for i in got.items] == [
                    (i.oid, i.score) for i in expected.items
                ]

    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_no_leaked_shm_segments(self, corpus, queries, start_method):
        objects, feature_sets = corpus
        before = _shm_entries()
        sharded = ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.1,
            fanout="processes", start_method=start_method,
        )
        assert _shm_entries() - before  # frozen segments exist while open
        sharded.query(queries[0])
        sharded.close()
        assert _shm_entries() == before


class TestProcessModeBehavior:
    @pytest.fixture(scope="class")
    def sharded(self, corpus):
        objects, feature_sets = corpus
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.1, fanout="processes"
        ) as proc:
            yield proc

    def test_repeat_queries_reuse_workers(self, sharded, queries):
        first = sharded.query(queries[0])
        second = sharded.query(queries[0])
        assert [(i.oid, i.score) for i in first.items] == [
            (i.oid, i.score) for i in second.items
        ]
        # The runner is created once and kept across queries.
        assert sharded._process_runner is not None
        runner = sharded._process_runner
        sharded.query(queries[1])
        assert sharded._process_runner is runner

    def test_clear_buffers_bumps_epoch(self, sharded, queries):
        epoch = sharded._epoch
        sharded.clear_buffers()
        assert sharded._epoch == epoch + 1
        # Queries still work (workers clear their caches and re-read).
        result = sharded.query(queries[0])
        assert result.items

    def test_merged_stats_cover_worker_io(self, sharded, queries):
        sharded.clear_buffers()
        result = sharded.query(queries[2])
        # Worker-side page reads travel back inside QueryResult.stats.
        assert result.stats.io_reads > 0
        assert result.stats.objects_scored > 0
        assert result.stats.trace_id

    def test_flight_records_forwarded_with_shard_id(self, sharded, queries):
        flight.configure(enabled_=True, latency_threshold_s=0.0)
        flight.clear()
        try:
            result = sharded.query(queries[0])
            records = flight.records()
            shard_records = [r for r in records if r.shard_id is not None]
            assert shard_records, "worker records did not reach the parent"
            shard_ids = {s.spec.shard_id for s in sharded.shards}
            assert {r.shard_id for r in shard_records} <= shard_ids
            assert all(
                r.trace_id == result.stats.trace_id for r in records
            )
        finally:
            flight.configure(enabled_=False)
            flight.clear()

    def test_oversized_radius_rejected_like_thread_mode(self, sharded):
        bad = PreferenceQuery(5, 0.5, 0.5, (0b1011, 0b1101))
        with pytest.raises(QueryError):
            sharded.query(bad)

    def test_worker_error_channel_rehydrates_exceptions(
        self, sharded, queries
    ):
        # Submit for a shard id no worker knows: the failure crosses the
        # process boundary as an error payload and rehydrates into the
        # original ReproError subclass.
        from repro.core.combinations import PULL_PRIORITIZED
        from repro.shard.process_runner import unpickle_error

        runner = sharded._ensure_process_runner()
        future = runner.submit(
            999, sharded._epoch, queries[0], "stps", PULL_PRIORITIZED,
            64, None, float("-inf"), "trace-err-test", False,
        )
        payload = future.result()
        assert payload["result"] is None
        assert payload["error"]["is_repro"]
        exc = unpickle_error(payload["error"], 999)
        assert isinstance(exc, ShardError)

    def test_closed_processor_rejects_queries(self, corpus, queries):
        objects, feature_sets = corpus
        sharded = ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.1, fanout="processes"
        )
        sharded.close()
        with pytest.raises(ShardError):
            sharded.query(queries[0])


class TestConstruction:
    def test_unknown_fanout_rejected(self, corpus):
        objects, feature_sets = corpus
        with pytest.raises(ShardError, match="fanout"):
            ShardedQueryProcessor.build(
                objects, feature_sets, shards=2, radius=0.1,
                fanout="fibers",
            )

    def test_process_fanout_requires_manifests(self):
        with pytest.raises(ShardError, match="manifests"):
            ShardedQueryProcessor(
                [object()], radius=0.1, fanout="processes"
            )

    def test_bad_start_method_rejected(self, corpus):
        from repro.shard import ProcessShardRunner

        with pytest.raises(ShardError, match="start method"):
            ProcessShardRunner([], max_workers=1, start_method="teleport")


def _threads_with_prefix(prefix):
    return [t for t in threading.enumerate() if t.name.startswith(prefix)]


def _wait_no_threads(prefix, timeout_s=5.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if not _threads_with_prefix(prefix):
            return True
        time.sleep(0.02)
    return False


class TestThreadLifecycle:
    @pytest.fixture(scope="class")
    def built(self, corpus):
        objects, feature_sets = corpus
        return QueryProcessor.build(objects, feature_sets)

    def test_executor_context_exit_leaves_no_threads(self, built, queries):
        with QueryExecutor(built, max_workers=3) as executor:
            executor.query_many(queries[:2])
            assert _threads_with_prefix("repro-query")
        assert _wait_no_threads("repro-query")

    def test_executor_del_shuts_pool(self, built, queries):
        executor = QueryExecutor(built, max_workers=2)
        executor.query_many(queries[:1])
        del executor
        gc.collect()
        assert _wait_no_threads("repro-query")

    def test_sharded_context_exit_leaves_no_threads(self, corpus, queries):
        objects, feature_sets = corpus
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.1, max_workers=3
        ) as sharded:
            sharded.query(queries[0])
        assert _wait_no_threads("repro-shard")

    def test_sharded_del_shuts_pool(self, corpus, queries):
        objects, feature_sets = corpus
        sharded = ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.1, max_workers=3
        )
        sharded.query(queries[0])
        del sharded
        gc.collect()
        assert _wait_no_threads("repro-shard")
