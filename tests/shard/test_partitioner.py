"""Unit tests for the spatial partitioner and halo replication."""

from __future__ import annotations

import math

import pytest

from repro.errors import ShardError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.shard import (
    PARTITION_METHODS,
    ShardSpec,
    grid_factors,
    grid_regions,
    kd_split,
    partition,
)
from repro.text.vocabulary import Vocabulary
from tests.conftest import make_data_objects, make_feature_objects

VOCAB = Vocabulary(f"kw{i}" for i in range(8))


def _objects(n=60, seed=5) -> ObjectDataset:
    return ObjectDataset(make_data_objects(n, seed=seed))


def _features(n=40, seed=6) -> FeatureDataset:
    return FeatureDataset(
        make_feature_objects(n, seed=seed, vocab_size=len(VOCAB)),
        VOCAB,
        "f",
    )


class TestGridLayout:
    def test_factors_prefer_square(self):
        assert grid_factors(1) == (1, 1)
        assert grid_factors(4) == (2, 2)
        assert grid_factors(6) == (3, 2)
        assert grid_factors(12) == (4, 3)

    def test_prime_degenerates_to_strips(self):
        assert grid_factors(7) == (7, 1)

    def test_regions_tile_domain_exactly(self):
        from repro.geometry.rect import Rect

        domain = Rect((0.0, 0.0), (1.0, 0.5))
        cells = grid_regions(domain, 6)
        assert len(cells) == 6
        # Right/top edges of the last column/row are the exact domain
        # edges, not accumulated float steps.
        assert max(c.high[0] for c in cells) == 1.0
        assert max(c.high[1] for c in cells) == 0.5
        area = sum(
            (c.high[0] - c.low[0]) * (c.high[1] - c.low[1]) for c in cells
        )
        assert area == pytest.approx(0.5)

    def test_boundary_point_goes_to_upper_cell(self):
        objects = ObjectDataset(
            [
                DataObject(0, 0.0, 0.0),
                DataObject(1, 0.5, 0.5),  # exactly on both cut lines
                DataObject(2, 1.0, 1.0),
            ]
        )
        specs = partition(
            objects, [], 4, 0.1, method="grid", drop_empty=False
        )
        by_shard = {s.shard_id: [o.oid for o in s.objects] for s in specs}
        assert by_shard[0] == [0]
        assert by_shard[3] == [1, 2]  # boundary point in the upper cell


class TestKdLayout:
    def test_counts_balanced(self):
        objects = _objects(101)
        specs = partition(objects, [], 4, 0.1, method="kd")
        counts = sorted(s.n_objects for s in specs)
        assert sum(counts) == 101
        assert counts[-1] - counts[0] <= 2  # heavily balanced

    def test_skewed_data_still_balanced(self):
        # All mass in one corner — a grid would put everything in one
        # cell; kd must still split ±1.
        objects = ObjectDataset(
            [DataObject(i, 0.001 * i, 0.001 * i) for i in range(40)]
        )
        specs = partition(objects, [], 8, 0.05, method="kd")
        counts = sorted(s.n_objects for s in specs)
        assert counts[0] >= 4 and counts[-1] <= 6

    def test_single_member_does_not_crash(self):
        objects = ObjectDataset([DataObject(0, 0.3, 0.7)])
        specs = partition(objects, [], 4, 0.1, method="kd")
        assert sum(s.n_objects for s in specs) == 1

    def test_identical_coordinates(self):
        objects = ObjectDataset([DataObject(i, 0.5, 0.5) for i in range(9)])
        regions, buckets = kd_split(
            list(objects), __import__(
                "repro.geometry.rect", fromlist=["Rect"]
            ).Rect((0.0, 0.0), (1.0, 1.0)), 3
        )
        assert len(regions) == 3
        assert sum(len(b) for b in buckets) == 9


class TestHaloReplication:
    def test_halo_keeps_exactly_reachable_features(self):
        # Domain = objects' bbox = [0.25, 0.75] x {0.5}; the 2-grid cuts
        # it at x = 0.5.
        objects = ObjectDataset(
            [DataObject(0, 0.25, 0.5), DataObject(1, 0.75, 0.5)]
        )
        features = FeatureDataset(
            [
                FeatureObject(0, 0.45, 0.5, 1.0, frozenset({0})),  # inside
                FeatureObject(1, 0.61, 0.5, 1.0, frozenset({0})),  # d=0.11
                FeatureObject(2, 0.20, 0.5, 1.0, frozenset({0})),  # d=0.05
            ],
            VOCAB,
            "f",
        )
        specs = partition(objects, [features], 2, 0.1, method="grid")
        left = specs[0]
        assert left.bbox.high[0] == pytest.approx(0.5)
        kept = {f.fid for f in left.feature_sets[0]}
        # mindist to the left cell: f0 -> 0, f1 -> 0.11 > r, f2 -> 0.05.
        assert kept == {0, 2}

    def test_full_replication_keeps_everything(self):
        objects = _objects(30)
        features = _features(20)
        specs = partition(
            objects, [features], 4, 0.05, replication="full"
        )
        for spec in specs:
            assert math.isinf(spec.radius)
            assert {f.fid for f in spec.feature_sets[0]} == {
                f.fid for f in features
            }

    def test_objects_never_replicated(self):
        objects = _objects(80)
        for method in PARTITION_METHODS:
            specs = partition(objects, [], 5, 0.1, method=method)
            oids = [o.oid for s in specs for o in s.objects]
            assert sorted(oids) == list(range(80))


class TestValidation:
    def test_bad_shard_count(self):
        with pytest.raises(ShardError):
            partition(_objects(), [], 0, 0.1)

    def test_bad_method(self):
        with pytest.raises(ShardError):
            partition(_objects(), [], 2, 0.1, method="voronoi")

    def test_bad_replication(self):
        with pytest.raises(ShardError):
            partition(_objects(), [], 2, 0.1, replication="partial")

    @pytest.mark.parametrize("radius", [0.0, -1.0, math.inf, math.nan])
    def test_bad_halo_radius(self, radius):
        with pytest.raises(ShardError):
            partition(_objects(), [], 2, radius)

    def test_full_replication_ignores_radius(self):
        specs = partition(
            _objects(), [], 2, math.inf, replication="full"
        )
        assert len(specs) == 2


class TestDropEmpty:
    def test_empty_cells_dropped_and_renumbered(self):
        # Objects only on the main diagonal: the off-diagonal cells of a
        # 2x2 grid stay empty and are dropped; survivors get dense ids.
        objects = ObjectDataset(
            [DataObject(0, 0.1, 0.1), DataObject(1, 0.9, 0.9)]
        )
        specs = partition(objects, [], 4, 0.05, method="grid")
        assert len(specs) == 2
        assert [s.shard_id for s in specs] == [0, 1]

    def test_empty_dataset_keeps_one_shard(self):
        specs = partition(ObjectDataset([]), [_features(5)], 4, 0.1)
        assert len(specs) == 1
        assert specs[0].n_objects == 0

    def test_drop_empty_off(self):
        objects = ObjectDataset([DataObject(0, 0.1, 0.1)])
        specs = partition(
            objects, [], 4, 0.1, method="grid", drop_empty=False
        )
        assert len(specs) == 4


class TestShardSpec:
    def test_describe_is_json_friendly(self):
        import json

        spec = partition(_objects(10), [_features(5)], 2, 0.1)[0]
        payload = json.dumps(spec.describe())
        decoded = json.loads(payload)
        assert decoded["shard_id"] == 0
        assert decoded["objects"] == spec.n_objects
        assert isinstance(spec, ShardSpec)
        assert spec.n_features == len(spec.feature_sets[0])

    def test_deterministic_rebuild(self):
        objects, features = _objects(50), _features(30)
        for method in PARTITION_METHODS:
            a = partition(objects, [features], 4, 0.1, method=method)
            b = partition(objects, [features], 4, 0.1, method=method)
            assert [s.describe() for s in a] == [s.describe() for s in b]
