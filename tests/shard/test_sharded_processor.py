"""Unit tests for the sharded query engine: fan-out, pruning, merging."""

from __future__ import annotations

import math
import random

import pytest

from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError, ReproError, ShardError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.obs import metrics as obs_metrics
from repro.shard import ShardedQueryProcessor, partition
from repro.text.vocabulary import Vocabulary
from tests.conftest import make_data_objects, make_feature_objects

VOCAB = Vocabulary(f"kw{i}" for i in range(16))


@pytest.fixture(scope="module")
def datasets():
    objects = ObjectDataset(make_data_objects(150, seed=21))
    feature_sets = [
        FeatureDataset(
            make_feature_objects(100, seed=22 + j, vocab_size=len(VOCAB)),
            VOCAB,
            f"set{j}",
        )
        for j in range(2)
    ]
    return objects, feature_sets


@pytest.fixture(scope="module")
def base(datasets):
    objects, feature_sets = datasets
    return QueryProcessor.build(objects, feature_sets)


def _query(k=5, radius=0.05, lam=0.5, variant=Variant.RANGE, seed=0):
    rng = random.Random(seed)
    masks = tuple(
        sum(1 << t for t in rng.sample(range(len(VOCAB)), 3))
        for _ in range(2)
    )
    return PreferenceQuery(k, radius, lam, masks, variant)


def _items(result):
    return [(item.oid, item.score) for item in result.items]


class TestEquivalence:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_count_never_changes_results(
        self, datasets, base, workers
    ):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=4, radius=0.08,
            max_workers=workers,
        ) as sharded:
            for seed in range(5):
                q = _query(seed=seed)
                assert _items(sharded.query(q)) == _items(base.query(q))

    @pytest.mark.parametrize("algorithm", ["stps", "stds"])
    def test_algorithms_agree(self, datasets, base, algorithm):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.08
        ) as sharded:
            q = _query(seed=7)
            assert _items(sharded.query(q, algorithm=algorithm)) == _items(
                base.query(q, algorithm=algorithm)
            )

    def test_external_floor_composes(self, datasets, base):
        objects, feature_sets = datasets
        q = _query(k=3, seed=3)
        exact = base.query(q)
        kth = exact.items[-1].score
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=4, radius=0.08
        ) as sharded:
            assert _items(sharded.query(q, floor=kth)) == _items(exact)

    def test_query_many_matches_serial(self, datasets, base):
        objects, feature_sets = datasets
        queries = [_query(seed=s) for s in range(4)] + [_query(seed=0)]
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=4, radius=0.08
        ) as sharded:
            batch = sharded.query_many(queries, max_workers=2)
        assert len(batch) == len(queries)
        for q, result in zip(queries, batch):
            assert _items(result) == _items(base.query(q))


class TestQueryShapeValidation:
    def test_radius_larger_than_halo_rejected(self, datasets):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.05
        ) as sharded:
            with pytest.raises(QueryError, match="halo"):
                sharded.query(_query(radius=0.2))

    @pytest.mark.parametrize(
        "variant", [Variant.INFLUENCE, Variant.NEAREST]
    )
    def test_unbounded_variants_need_full_replication(
        self, datasets, variant
    ):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.05
        ) as sharded:
            with pytest.raises(QueryError, match="full"):
                sharded.query(_query(variant=variant))

    def test_wrong_feature_set_count(self, datasets):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.05
        ) as sharded:
            bad = PreferenceQuery(5, 0.05, 0.5, (0b1,))
            with pytest.raises(QueryError, match="feature sets"):
                sharded.query(bad)

    def test_closed_processor_rejects_queries(self, datasets):
        objects, feature_sets = datasets
        sharded = ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.05
        )
        sharded.close()
        with pytest.raises(ShardError):
            sharded.query(_query())


class TestPruningAndMetrics:
    def test_shard_outcomes_counted(self, datasets):
        from repro.shard.sharded_processor import shard_queries_metric

        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=4, radius=0.08
        ) as sharded:
            sharded.reset_stats()  # zeroes the shard metric families too
            for seed in range(6):
                sharded.query(_query(k=1, seed=seed))
            family = shard_queries_metric()
            by_outcome: dict[str, float] = {}
            for labelvalues, child in family.series():
                outcome = dict(
                    zip(family.labelnames, labelvalues)
                )["outcome"]
                by_outcome[outcome] = (
                    by_outcome.get(outcome, 0.0) + child.value
                )
        executed = by_outcome.get("executed", 0.0)
        pruned = by_outcome.get("pruned", 0.0)
        assert executed >= 6  # at least one shard ran per query
        assert by_outcome.get("failed", 0.0) == 0.0
        assert executed + pruned == 6 * sharded.shard_count

    def test_pruning_never_changes_results(self, datasets, base):
        """k=1 maximizes pruning; answers must still be exact."""
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=8, radius=0.08
        ) as sharded:
            for seed in range(10):
                q = _query(k=1, seed=seed)
                assert _items(sharded.query(q)) == _items(base.query(q))

    def test_fanout_and_merge_phases_traced(self, datasets):
        from repro.obs import tracing

        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.08
        ) as sharded:
            with tracing.enabled_tracing():
                result = sharded.query(_query())
        phases = result.stats.phase_times
        assert "shard.fanout" in phases
        assert "shard.merge" in phases

    def test_merged_stats_are_summed(self, datasets):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.08
        ) as sharded:
            result = sharded.query(_query(k=20))
        assert result.stats.objects_scored > 0
        assert result.stats.wall_s > 0.0


class TestFailureIsolation:
    """A poisoned shard fails its query with context — nothing wedges."""

    @staticmethod
    def _poison(sharded, exc):
        shard = sharded.shards[0]
        original = shard.processor.query

        def bad_query(*args, **kwargs):
            raise exc

        shard.processor.query = bad_query
        return original

    def test_shard_crash_wrapped_with_shard_id(self, datasets):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.08
        ) as sharded:
            self._poison(sharded, RuntimeError("page torn"))
            with pytest.raises(ShardError) as excinfo:
                sharded.query(_query())
            assert excinfo.value.shard_id == sharded.specs[0].shard_id
            assert "page torn" in str(excinfo.value)

    def test_library_errors_propagate_unwrapped(self, datasets):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.08
        ) as sharded:
            self._poison(sharded, QueryError("bad k"))
            with pytest.raises(QueryError, match="bad k"):
                sharded.query(_query())

    def test_batch_records_failure_and_carries_on(self, datasets, base):
        """One bad query in a batch -> None + QueryFailure, rest exact."""
        objects, feature_sets = datasets
        good = [_query(seed=s) for s in range(3)]
        bad = _query(radius=0.5)  # exceeds the halo -> QueryError
        queries = [good[0], bad, good[1], good[2]]
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.08
        ) as sharded:
            results = sharded.query_many(
                queries, max_workers=2, on_error="return"
            )
            assert results[1] is None
            for i in (0, 2, 3):
                assert _items(results[i]) == _items(
                    base.query(queries[i])
                )
            # Default mode still raises, after the batch settles.
            with pytest.raises(ReproError):
                sharded.query_many(queries, max_workers=2)

    def test_processor_usable_after_failure(self, datasets, base):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.08
        ) as sharded:
            with pytest.raises(QueryError):
                sharded.query(_query(radius=0.5))
            q = _query(seed=1)
            assert _items(sharded.query(q)) == _items(base.query(q))


class TestLifecycle:
    def test_describe_and_trees(self, datasets):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=4, radius=0.05
        ) as sharded:
            info = sharded.describe()
            assert info["replication"] == "halo"
            assert info["shards"] == sharded.shard_count
            assert len(info["layout"]) == sharded.shard_count
            # object tree + 2 feature trees per shard
            assert len(sharded.trees()) == 3 * sharded.shard_count

    def test_clear_buffers_counts_all_shards(self, datasets):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=2, radius=0.05
        ) as sharded:
            sharded.query(_query())
            dropped = sharded.clear_buffers()
            assert dropped["pages"] > 0

    def test_from_specs_roundtrip(self, datasets, base, tmp_path):
        from repro.data import load_shards, save_shards

        objects, feature_sets = datasets
        specs = partition(objects, feature_sets, 4, 0.08, method="kd")
        save_shards(specs, str(tmp_path / "part"))
        loaded = load_shards(str(tmp_path / "part"))
        with ShardedQueryProcessor.from_specs(loaded) as sharded:
            q = _query(seed=9)
            assert _items(sharded.query(q)) == _items(base.query(q))

    def test_full_replication_serves_all_variants(self, datasets, base):
        objects, feature_sets = datasets
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=4, radius=0.05,
            replication="full",
        ) as sharded:
            assert math.isinf(sharded.radius)
            assert sharded.describe()["replication"] == "full"
            for variant in Variant:
                q = _query(variant=variant, seed=2)
                assert _items(sharded.query(q)) == _items(base.query(q))
