"""Disk persistence: indexes on DiskPageFile survive reopen and answer
queries identically to their in-memory twins."""

import pytest

from repro.core.query import PreferenceQuery
from repro.core.stds import compute_score
from repro.core.stream import FeatureStream
from repro.index.object_rtree import ObjectRTree
from repro.index.rtree_base import RTreeBase
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.storage.pagefile import DiskPageFile
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_data_objects, make_feature_objects


class TestObjectTreeOnDisk:
    def test_build_query_reopen(self, tmp_path):
        path = str(tmp_path / "objects.tree")
        objects = ObjectDataset(make_data_objects(300, seed=44))
        tree = ObjectRTree.build(objects, pagefile=DiskPageFile(path))
        want = sorted(e.oid for e in tree.range_search((0.5, 0.5), 0.2))
        tree.pagefile.flush()
        tree.pagefile.close()

        # Reopen: restore structure from the metadata page.
        pagefile = DiskPageFile(path)
        meta = RTreeBase.read_meta(pagefile)
        reopened = ObjectRTree(pagefile)
        reopened.root_id = meta["root"]
        reopened.height = meta["height"]
        reopened.count = meta["count"]
        got = sorted(e.oid for e in reopened.range_search((0.5, 0.5), 0.2))
        assert got == want
        reopened.validate()
        pagefile.close()


class TestFeatureTreeOnDisk:
    def test_srt_on_disk_matches_memory(self, tmp_path):
        vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
        dataset = FeatureDataset(
            make_feature_objects(200, seed=45), vocab, "disk"
        )
        path = str(tmp_path / "features.tree")
        disk_tree = SRTIndex.build(dataset, pagefile=DiskPageFile(path))
        mem_tree = SRTIndex.build(dataset)

        query = PreferenceQuery(
            k=5, radius=0.2, lam=0.5, keyword_masks=(0b1011, 0b1011)
        )
        for point in [(0.2, 0.3), (0.7, 0.7), (0.5, 0.1)]:
            disk_score = compute_score(disk_tree, query, 0b1011, point)
            mem_score = compute_score(mem_tree, query, 0b1011, point)
            assert disk_score == pytest.approx(mem_score)

        # Streams produce the same order too.
        disk_stream = FeatureStream(disk_tree, 0b1011, 0.5)
        mem_stream = FeatureStream(mem_tree, 0b1011, 0.5)
        for _ in range(20):
            a, b = disk_stream.next(), mem_stream.next()
            if a is None or b is None:
                assert a is None and b is None
                break
            assert (a.fid, a.is_virtual) == (b.fid, b.is_virtual)
            assert a.score == pytest.approx(b.score)
        disk_tree.pagefile.close()

    def test_metadata_recorded(self, tmp_path):
        vocab = Vocabulary(f"kw{i}" for i in range(16))
        dataset = FeatureDataset(
            make_feature_objects(50, seed=46, vocab_size=16), vocab, "m"
        )
        path = str(tmp_path / "meta.tree")
        tree = SRTIndex.build(dataset, pagefile=DiskPageFile(path))
        tree.pagefile.flush()
        meta = RTreeBase.read_meta(tree.pagefile)
        assert meta["kind"] == "srt"
        assert meta["vocab_size"] == 16
        assert meta["count"] == 50
        tree.pagefile.close()
