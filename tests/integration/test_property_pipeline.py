"""Hypothesis-driven end-to-end property: STPS ≡ brute force on random
miniature worlds, for every variant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bruteforce import brute_force
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary

W = 8
VOCAB = Vocabulary(f"kw{i}" for i in range(W))

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
score = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
kw_set = st.frozensets(
    st.integers(min_value=0, max_value=W - 1), min_size=1, max_size=3
)


@st.composite
def worlds(draw):
    n_obj = draw(st.integers(min_value=0, max_value=25))
    n_feat = draw(st.integers(min_value=0, max_value=20))
    objects = ObjectDataset(
        [
            DataObject(i, draw(unit), draw(unit))
            for i in range(n_obj)
        ]
    )
    features = FeatureDataset(
        [
            FeatureObject(i, draw(unit), draw(unit), draw(score), draw(kw_set))
            for i in range(n_feat)
        ],
        VOCAB,
        "F",
    )
    k = draw(st.integers(min_value=1, max_value=6))
    radius = draw(st.floats(min_value=0.01, max_value=0.5))
    lam = draw(st.sampled_from([0.0, 0.25, 0.5, 1.0]))
    mask = draw(st.integers(min_value=1, max_value=(1 << W) - 1))
    return objects, features, k, radius, lam, mask


class TestEndToEndProperty:
    @pytest.mark.parametrize(
        "variant", [Variant.RANGE, Variant.INFLUENCE, Variant.NEAREST]
    )
    @given(worlds())
    @settings(max_examples=25, deadline=None)
    def test_stps_equals_brute_force(self, variant, world):
        objects, features, k, radius, lam, mask = world
        query = PreferenceQuery(
            k=k,
            radius=radius,
            lam=lam,
            keyword_masks=(mask,),
            variant=variant,
        )
        processor = QueryProcessor.build(objects, [features])
        got = processor.query(query).scores
        want = brute_force(objects, [features], query).scores
        assert len(got) == len(want)
        assert got == pytest.approx(want, abs=1e-9)
