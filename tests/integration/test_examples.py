"""Smoke tests: every example script runs to completion.

Run as subprocesses so the examples are exercised exactly as a user
would run them.  The heavyweight scenario scripts are trimmed via env
knobs where available; the quickstart asserts the paper's worked example
internally, so a zero exit code is a real correctness signal.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name: str, timeout: int = 600, args: list[str] = ()) -> str:
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    proc = subprocess.run(
        [sys.executable, path, *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Matches the worked example" in out
        assert "1.6833" in out

    def test_batch_queries(self):
        out = run_example("batch_queries.py")
        assert "node-cache hit rate" in out
        assert "batch results match the serial run exactly" in out

    @pytest.mark.slow
    def test_tourist_trip_planner(self):
        out = run_example("tourist_trip_planner.py")
        assert "All four answer sets agree" in out

    @pytest.mark.slow
    def test_score_variants_tour(self):
        out = run_example("score_variants_tour.py")
        assert "=== range score ===" in out
        assert "=== influence score ===" in out
        assert "=== nearest score ===" in out

    @pytest.mark.slow
    def test_disk_resident_indexes(self):
        out = run_example("disk_resident_indexes.py")
        assert "reopened index answers" in out
        assert "hit rate" in out

    @pytest.mark.slow
    def test_advanced_features(self):
        out = run_example("advanced_features.py")
        assert "identical top-k" in out

    def test_trace_query(self, tmp_path):
        import json

        trace_path = tmp_path / "trace.json"
        out = run_example("trace_query.py", args=[str(trace_path)])
        assert "trace and metrics artifacts verified OK" in out
        doc = json.loads(trace_path.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        assert {"query.stps", "query.stds", "rtree.node_expand"} <= names
