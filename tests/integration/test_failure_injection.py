"""Failure injection: corrupted pages, hostile inputs, exhausted stores."""

import pytest

from repro.core.query import PreferenceQuery
from repro.errors import (
    PageCorruptedError,
    QueryError,
    ReproError,
)
from repro.index.object_rtree import ObjectRTree
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.storage.pagefile import MemoryPageFile
from repro.text.vocabulary import Vocabulary
from tests.conftest import VOCAB_SIZE, make_data_objects, make_feature_objects


class TestCorruptedPages:
    def test_corrupted_node_surfaces_cleanly(self):
        pagefile = MemoryPageFile()
        objects = ObjectDataset(make_data_objects(200, seed=71))
        tree = ObjectRTree.build(objects, pagefile=pagefile)
        # Corrupt a leaf page, then force a full traversal.
        leaf_page = pagefile.page_count - 1
        pagefile.corrupt(leaf_page)
        tree.clear_cache()
        with pytest.raises(PageCorruptedError):
            list(tree.range_search((0.5, 0.5), 2.0))

    def test_corruption_is_a_repro_error(self):
        """Callers can catch the whole library with one base class."""
        assert issubclass(PageCorruptedError, ReproError)

    def test_cached_page_masks_corruption_until_eviction(self):
        pagefile = MemoryPageFile()
        objects = ObjectDataset(make_data_objects(100, seed=72))
        tree = ObjectRTree.build(objects, pagefile=pagefile)
        list(tree.range_search((0.5, 0.5), 2.0))  # warm the buffer
        pagefile.corrupt(pagefile.page_count - 1)
        # Buffer still holds the good copy.
        list(tree.range_search((0.5, 0.5), 2.0))
        tree.clear_cache()
        with pytest.raises(PageCorruptedError):
            list(tree.range_search((0.5, 0.5), 2.0))


class TestHostileQueries:
    @pytest.fixture(scope="class")
    def processor(self):
        from repro.core.processor import QueryProcessor

        vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
        objects = ObjectDataset(make_data_objects(100, seed=73))
        feature_sets = [
            FeatureDataset(make_feature_objects(60, seed=74), vocab, "F")
        ]
        return QueryProcessor.build(objects, feature_sets)

    def test_mask_beyond_vocabulary(self, processor):
        """Query terms outside the indexed vocabulary simply never match."""
        query = PreferenceQuery(
            k=3, radius=0.1, lam=0.5, keyword_masks=(1 << 200,)
        )
        result = processor.query(query)
        assert result.scores == [0.0, 0.0, 0.0]

    def test_set_count_mismatch_raises(self, processor):
        query = PreferenceQuery(
            k=3, radius=0.1, lam=0.5, keyword_masks=(1, 1, 1)
        )
        with pytest.raises(QueryError):
            processor.query(query)

    def test_malformed_queries_rejected_at_construction(self):
        with pytest.raises(QueryError):
            PreferenceQuery(k=-1, radius=0.1, lam=0.5, keyword_masks=(1,))
        with pytest.raises(QueryError):
            PreferenceQuery(k=1, radius=-1.0, lam=0.5, keyword_masks=(1,))
        with pytest.raises(QueryError):
            PreferenceQuery(k=1, radius=0.1, lam=2.0, keyword_masks=(1,))


class TestResourceEdges:
    def test_page_too_small_for_entries(self):
        from repro.errors import IndexError_

        vocab = Vocabulary(f"kw{i}" for i in range(512))
        dataset = FeatureDataset(
            make_feature_objects(10, seed=75, vocab_size=512), vocab, "F"
        )
        # 512-term masks (64 bytes) cannot give fan-out >= 2 in 128 bytes.
        with pytest.raises(IndexError_):
            SRTIndex.build(dataset, pagefile=MemoryPageFile(page_size=128))

    def test_huge_vocabulary_still_works_with_big_pages(self):
        vocab = Vocabulary(f"kw{i}" for i in range(512))
        dataset = FeatureDataset(
            make_feature_objects(50, seed=76, vocab_size=512), vocab, "F"
        )
        tree = SRTIndex.build(dataset, pagefile=MemoryPageFile(page_size=16384))
        tree.validate()
        assert tree.count == 50
