"""Cross-algorithm consistency: brute force ≡ STDS ≡ STPS.

The central correctness instrument of the reproduction: for randomized
datasets and queries, every algorithm (STDS, STPS) on every index (SRT,
IR²) must return the same ranked score vector as the per-definition brute
force, for all three score variants.
"""

import random

import pytest

from repro.core.bruteforce import brute_force
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.text.vocabulary import Vocabulary
from tests.conftest import (
    VOCAB_SIZE,
    make_data_objects,
    make_feature_objects,
    random_mask,
)

ALL_VARIANTS = [Variant.RANGE, Variant.INFLUENCE, Variant.NEAREST]


def build_world(seed, n_objects=200, n_features=120, c=2):
    vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
    objects = ObjectDataset(make_data_objects(n_objects, seed))
    feature_sets = [
        FeatureDataset(
            make_feature_objects(n_features, seed + 100 * (i + 1)),
            vocab,
            f"F{i}",
        )
        for i in range(c)
    ]
    processors = {
        index: QueryProcessor.build(objects, feature_sets, index=index)
        for index in ("srt", "ir2")
    }
    return objects, feature_sets, processors


def assert_scores_equal(got, want, context):
    assert len(got) == len(want), context
    assert got == pytest.approx(want, abs=1e-9), context


@pytest.fixture(scope="module")
def world():
    return build_world(seed=500)


class TestRandomizedMatrix:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("trial", range(4))
    def test_all_agree(self, world, variant, trial):
        objects, feature_sets, processors = world
        rng = random.Random(1000 * trial + hash(variant.value) % 97)
        query = PreferenceQuery(
            k=rng.choice([1, 5, 12]),
            radius=rng.choice([0.03, 0.08, 0.15]),
            lam=rng.choice([0.2, 0.5, 0.8]),
            keyword_masks=(random_mask(rng), random_mask(rng)),
            variant=variant,
        )
        want = brute_force(objects, feature_sets, query).scores
        for index, processor in processors.items():
            for algorithm in ("stds", "stps"):
                got = processor.query(query, algorithm=algorithm).scores
                assert_scores_equal(
                    got, want, f"{variant.value}/{index}/{algorithm}"
                )


class TestThreeFeatureSets:
    def test_c3_all_variants(self):
        objects, feature_sets, processors = build_world(
            seed=900, n_objects=150, n_features=80, c=3
        )
        rng = random.Random(7)
        masks = tuple(random_mask(rng, 2) for _ in range(3))
        for variant in ALL_VARIANTS:
            query = PreferenceQuery(
                k=5,
                radius=0.1,
                lam=0.5,
                keyword_masks=masks,
                variant=variant,
            )
            want = brute_force(objects, feature_sets, query).scores
            for index, processor in processors.items():
                got = processor.query(query).scores
                assert_scores_equal(got, want, f"c3/{variant.value}/{index}")


class TestSingleFeatureSet:
    def test_c1_all_variants(self):
        objects, feature_sets, processors = build_world(
            seed=901, n_objects=150, n_features=100, c=1
        )
        rng = random.Random(8)
        for variant in ALL_VARIANTS:
            query = PreferenceQuery(
                k=6,
                radius=0.07,
                lam=0.4,
                keyword_masks=(random_mask(rng),),
                variant=variant,
            )
            want = brute_force(objects, feature_sets, query).scores
            for processor in processors.values():
                got = processor.query(query).scores
                assert_scores_equal(got, want, variant.value)


class TestDegenerateWorlds:
    def test_no_relevant_features_anywhere(self, world):
        """Query keywords absent from the data: every score is 0."""
        objects, feature_sets, processors = world
        # VOCAB_SIZE-1 bits beyond any generated keyword would be invalid;
        # instead use a mask of terms that exist but co-occur nowhere.
        query = PreferenceQuery(
            k=3,
            radius=1e-9,
            lam=0.5,
            keyword_masks=(1, 1),
        )
        want = brute_force(objects, feature_sets, query).scores
        assert want == [0.0, 0.0, 0.0]
        for processor in processors.values():
            for algorithm in ("stds", "stps"):
                got = processor.query(query, algorithm=algorithm).scores
                assert got == want

    def test_empty_object_dataset(self):
        vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
        objects = ObjectDataset([])
        feature_sets = [
            FeatureDataset(make_feature_objects(50, 3), vocab, "F")
        ]
        processor = QueryProcessor.build(objects, feature_sets)
        query = PreferenceQuery(k=5, radius=0.1, lam=0.5, keyword_masks=(1,))
        for algorithm in ("stds", "stps"):
            assert processor.query(query, algorithm=algorithm).scores == []

    def test_empty_feature_dataset(self):
        vocab = Vocabulary(f"kw{i}" for i in range(VOCAB_SIZE))
        objects = ObjectDataset(make_data_objects(30, 4))
        feature_sets = [FeatureDataset([], vocab, "empty")]
        processor = QueryProcessor.build(objects, feature_sets)
        for variant in ALL_VARIANTS:
            query = PreferenceQuery(
                k=4, radius=0.1, lam=0.5, keyword_masks=(1,), variant=variant
            )
            result = processor.query(query)
            assert result.scores == [0.0] * 4
