"""Tests for the keyword-mask <-> Hilbert value mapping (Section 4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.hilbert.keywords import KeywordHilbert, gray_rank

masks_8 = st.integers(min_value=0, max_value=255)
masks_128 = st.integers(min_value=0, max_value=2**128 - 1)


class TestRoundtrip:
    def test_exhaustive_8(self):
        kh = KeywordHilbert(8)
        images = {kh.encode(m) for m in range(256)}
        assert images == set(range(256))  # bijection onto the full range
        for m in range(256):
            assert kh.decode(kh.encode(m)) == m

    @given(masks_128)
    @settings(max_examples=200)
    def test_roundtrip_128(self, mask):
        kh = KeywordHilbert(128)
        assert kh.decode(kh.encode(mask)) == mask

    def test_zero_maps_to_zero(self):
        assert KeywordHilbert(16).encode(0) == 0


class TestGrayProperty:
    def test_adjacent_values_differ_one_keyword(self):
        """The paper's key property: distance-1 vectors share all but one
        keyword."""
        kh = KeywordHilbert(10)
        for h in range(kh.max_value - 1):
            flips = (kh.decode(h) ^ kh.decode(h + 1)).bit_count()
            assert flips == 1

    @given(
        st.integers(min_value=0, max_value=2**12 - 2),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200)
    def test_distance_bounds_keyword_difference(self, h, d):
        """Values w' apart differ in at most w' keywords (Section 4.2)."""
        kh = KeywordHilbert(12)
        h2 = min(h + d, kh.max_value - 1)
        flips = (kh.decode(h) ^ kh.decode(h2)).bit_count()
        assert flips <= h2 - h or h2 == h


class TestAggregate:
    def test_aggregate_is_union(self):
        kh = KeywordHilbert(8)
        a, b = 0b1010, 0b0110
        assert kh.decode(kh.aggregate(kh.encode(a), kh.encode(b))) == (a | b)

    @given(masks_8, masks_8)
    def test_aggregate_always_union(self, a, b):
        kh = KeywordHilbert(8)
        agg = kh.aggregate(kh.encode(a), kh.encode(b))
        assert kh.decode(agg) == (a | b)

    @given(masks_8, masks_8, masks_8)
    def test_aggregate_associative(self, a, b, c):
        kh = KeywordHilbert(8)
        ea, eb, ec = kh.encode(a), kh.encode(b), kh.encode(c)
        left = kh.aggregate(kh.aggregate(ea, eb), ec)
        right = kh.aggregate(ea, kh.aggregate(eb, ec))
        assert left == right


class TestMisc:
    def test_to_unit_range(self):
        kh = KeywordHilbert(16)
        for mask in (0, 1, 2**16 - 1):
            u = kh.to_unit(kh.encode(mask))
            assert 0.0 <= u < 1.0

    def test_gray_rank_helper(self):
        assert gray_rank(0b101, 3) == KeywordHilbert(3).encode(0b101)

    def test_out_of_range_rejected(self):
        kh = KeywordHilbert(4)
        with pytest.raises(GeometryError):
            kh.encode(16)
        with pytest.raises(GeometryError):
            kh.decode(-1)

    def test_bad_vocab_size(self):
        with pytest.raises(GeometryError):
            KeywordHilbert(0)
