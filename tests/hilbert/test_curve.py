"""Tests for the generic n-dimensional Hilbert curve."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.hilbert.curve import HilbertCurve, hilbert_key_2d, hilbert_key_4d


class TestSmallCurves:
    @pytest.mark.parametrize(
        "dims,bits", [(1, 4), (2, 1), (2, 4), (3, 1), (3, 2), (4, 2)]
    )
    def test_bijective(self, dims, bits):
        curve = HilbertCurve(dims, bits)
        seen = set()
        for h in range(curve.max_h):
            point = curve.decode(h)
            assert point not in seen
            seen.add(point)
            assert curve.encode(point) == h

    @pytest.mark.parametrize("dims,bits", [(2, 4), (3, 2), (4, 1), (3, 1)])
    def test_adjacency(self, dims, bits):
        """Consecutive Hilbert values differ by 1 in exactly one dim."""
        curve = HilbertCurve(dims, bits)
        prev = curve.decode(0)
        for h in range(1, curve.max_h):
            cur = curve.decode(h)
            diff = sum(abs(a - b) for a, b in zip(prev, cur))
            assert diff == 1, f"h={h}: {prev} -> {cur}"
            prev = cur

    def test_2d_order_4_known_start(self):
        """The curve starts at the origin."""
        curve = HilbertCurve(2, 4)
        assert curve.decode(0) == (0, 0)

    def test_1bit_3d_is_gray_path(self):
        """The keyword mapping case: a Hamiltonian path on the 3-cube."""
        curve = HilbertCurve(3, 1)
        seq = [curve.decode(h) for h in range(8)]
        assert len(set(seq)) == 8
        for a, b in zip(seq, seq[1:]):
            assert sum(x != y for x, y in zip(a, b)) == 1


class TestValidation:
    def test_bad_dims(self):
        with pytest.raises(GeometryError):
            HilbertCurve(0, 4)

    def test_bad_bits(self):
        with pytest.raises(GeometryError):
            HilbertCurve(2, 0)

    def test_wrong_coordinate_count(self):
        with pytest.raises(GeometryError):
            HilbertCurve(2, 4).encode([1])

    def test_coordinate_out_of_range(self):
        with pytest.raises(GeometryError):
            HilbertCurve(2, 2).encode([4, 0])

    def test_h_out_of_range(self):
        with pytest.raises(GeometryError):
            HilbertCurve(2, 2).decode(16)


class TestLargeCurves:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**16 - 1),
            min_size=4,
            max_size=4,
        )
    )
    @settings(max_examples=100)
    def test_roundtrip_4d_16bit(self, coords):
        curve = HilbertCurve(4, 16)
        assert list(curve.decode(curve.encode(coords))) == coords

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=64, max_size=64)
    )
    @settings(max_examples=50)
    def test_roundtrip_64d_1bit(self, coords):
        """The keyword-hypercube case at realistic dimensionality."""
        curve = HilbertCurve(64, 1)
        assert list(curve.decode(curve.encode(coords))) == coords


class TestUnitKeys:
    def test_2d_key_locality(self):
        """Nearby points mostly share key prefixes (coarse check)."""
        a = hilbert_key_2d(0.1, 0.1)
        b = hilbert_key_2d(0.1 + 1e-6, 0.1)
        c = hilbert_key_2d(0.9, 0.9)
        assert abs(a - b) < abs(a - c)

    def test_clamping(self):
        assert hilbert_key_2d(-0.5, 1.5) == hilbert_key_2d(0.0, 1.0 - 1e-12)

    def test_4d_key_range(self):
        key = hilbert_key_4d(0.5, 0.5, 0.5, 0.5, bits=8)
        assert 0 <= key < 1 << 32

    def test_4d_distinct_dimensions_matter(self):
        base = hilbert_key_4d(0.5, 0.5, 0.5, 0.5)
        assert hilbert_key_4d(0.5, 0.5, 0.9, 0.5) != base
        assert hilbert_key_4d(0.5, 0.5, 0.5, 0.9) != base
