"""Property-based equivalence: sharded engine == unsharded engine.

hypothesis generates adversarial little worlds — objects and features on
a coarse coordinate lattice so many points land exactly on shard
boundaries and in the halo band — and asserts that a
:class:`~repro.shard.ShardedQueryProcessor` returns *exactly* what the
unsharded :class:`~repro.core.processor.QueryProcessor` returns, for
every shard count, layout, and replication mode.  The suite runs under
the derandomized ``differential`` profile (see ``conftest.py``), so CI
executes the same examples every time.
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.shard import ShardedQueryProcessor, partition
from repro.text.vocabulary import Vocabulary

VOCAB = Vocabulary(f"kw{i}" for i in range(8))
HALO_RADIUS = 0.25

# Coarse lattice: 9 coordinate values, so grid/kd cut lines (multiples of
# 1/2, 1/4...) collide with object/feature positions and the halo band
# boundary is exactly attainable (|x - cut| == HALO_RADIUS).
COORDS = [i / 8 for i in range(9)]
SCORES = [0.0, 0.25, 0.5, 1.0]

coord = st.sampled_from(COORDS)
score = st.sampled_from(SCORES)
kw_mask = st.integers(min_value=1, max_value=(1 << len(VOCAB)) - 1)


@st.composite
def worlds(draw):
    """A small dataset pair plus a query against it."""
    n_objects = draw(st.integers(min_value=1, max_value=24))
    objects = ObjectDataset(
        [
            DataObject(i, draw(coord), draw(coord))
            for i in range(n_objects)
        ]
    )
    n_sets = draw(st.integers(min_value=1, max_value=2))
    feature_sets = []
    for j in range(n_sets):
        n_features = draw(st.integers(min_value=0, max_value=12))
        feature_sets.append(
            FeatureDataset(
                [
                    FeatureObject(
                        i,
                        draw(coord),
                        draw(coord),
                        draw(score),
                        frozenset(
                            draw(
                                st.sets(
                                    st.integers(0, len(VOCAB) - 1),
                                    min_size=1,
                                    max_size=3,
                                )
                            )
                        ),
                    )
                    for i in range(n_features)
                ],
                VOCAB,
                f"set{j}",
            )
        )
    query = PreferenceQuery(
        k=draw(st.integers(min_value=1, max_value=6)),
        radius=draw(st.sampled_from([0.1, HALO_RADIUS])),
        lam=draw(st.sampled_from([0.0, 0.5, 1.0])),
        keyword_masks=tuple(draw(kw_mask) for _ in range(n_sets)),
        variant=draw(st.sampled_from(list(Variant))),
    )
    return objects, feature_sets, query


def _items(result):
    return [(item.oid, item.score) for item in result.items]


@given(
    world=worlds(),
    shards=st.sampled_from([1, 2, 4, 7]),
    method=st.sampled_from(["grid", "kd"]),
)
def test_full_replication_equals_unsharded(world, shards, method):
    """All variants: object-partitioned shards with full feature sets."""
    objects, feature_sets, query = world
    base = QueryProcessor.build(objects, feature_sets)
    with ShardedQueryProcessor.build(
        objects,
        feature_sets,
        shards=shards,
        radius=HALO_RADIUS,
        method=method,
        replication="full",
    ) as sharded:
        assert _items(sharded.query(query)) == _items(base.query(query))


@given(
    world=worlds(),
    shards=st.sampled_from([1, 2, 4, 7]),
    method=st.sampled_from(["grid", "kd"]),
)
def test_halo_replication_equals_unsharded(world, shards, method):
    """Range variant: r-halo feature replication is exact."""
    objects, feature_sets, query = world
    query = query.with_variant(Variant.RANGE)
    base = QueryProcessor.build(objects, feature_sets)
    with ShardedQueryProcessor.build(
        objects,
        feature_sets,
        shards=shards,
        radius=HALO_RADIUS,
        method=method,
        replication="halo",
    ) as sharded:
        assert _items(sharded.query(query)) == _items(base.query(query))


@given(
    world=worlds(),
    shards=st.sampled_from([2, 4, 7]),
    method=st.sampled_from(["grid", "kd"]),
)
def test_partition_is_exact_cover(world, shards, method):
    """Objects land in exactly one shard; halos cover the r-band.

    The boundary rule (a point on a cut line belongs to the upper /
    higher-index region) must make the shards a *partition* of the
    objects — no duplicates, no losses — and every shard's feature halo
    must contain all features within ``r`` of its bbox.
    """
    objects, feature_sets, _ = world
    specs = partition(
        objects, feature_sets, shards, HALO_RADIUS, method=method
    )
    assigned = [o.oid for spec in specs for o in spec.objects]
    assert sorted(assigned) == sorted(o.oid for o in objects)
    assert len(assigned) == len(set(assigned))
    for spec in specs:
        for i, feature_set in enumerate(feature_sets):
            kept = {f.fid for f in spec.feature_sets[i]}
            for f in feature_set:
                if spec.bbox.mindist((f.x, f.y)) <= HALO_RADIUS:
                    assert f.fid in kept, (
                        f"shard {spec.shard_id} lost feature {f.fid} "
                        f"inside its halo"
                    )


@given(world=worlds(), shards=st.sampled_from([1, 2, 4]))
@settings(max_examples=8)
def test_full_replication_process_fanout_equals_unsharded(world, shards):
    """All variants in process mode: the fan-out substrate is invisible.

    Fewer examples than the thread-mode run — each example pays a worker
    pool spin-up — but the same adversarial lattice worlds, so boundary
    and halo edge cases cross the process channel too.
    """
    objects, feature_sets, query = world
    base = QueryProcessor.build(objects, feature_sets)
    with ShardedQueryProcessor.build(
        objects,
        feature_sets,
        shards=shards,
        radius=HALO_RADIUS,
        replication="full",
        fanout="processes",
    ) as sharded:
        assert _items(sharded.query(query)) == _items(base.query(query))


@given(world=worlds(), shards=st.sampled_from([2, 4, 7]))
@settings(max_examples=8)
def test_halo_replication_process_fanout_equals_unsharded(world, shards):
    """Range variant in process mode: r-halo replication stays exact."""
    objects, feature_sets, query = world
    query = query.with_variant(Variant.RANGE)
    base = QueryProcessor.build(objects, feature_sets)
    with ShardedQueryProcessor.build(
        objects,
        feature_sets,
        shards=shards,
        radius=HALO_RADIUS,
        replication="halo",
        fanout="processes",
    ) as sharded:
        assert _items(sharded.query(query)) == _items(base.query(query))


@given(world=worlds(), shards=st.sampled_from([2, 4]))
@settings(max_examples=10)
def test_boundary_objects_kept_once(world, shards):
    """An object exactly on a cut line is scored by exactly one shard.

    Stronger than exact-cover: run a query whose top-k must contain the
    boundary objects and check ids are unique in the merged result.
    """
    objects, feature_sets, query = world
    query = query.with_variant(Variant.RANGE)
    with ShardedQueryProcessor.build(
        objects,
        feature_sets,
        shards=shards,
        radius=HALO_RADIUS,
        replication="halo",
    ) as sharded:
        items = sharded.query(query).items
        oids = [item.oid for item in items]
        assert len(oids) == len(set(oids))
        assert len(oids) == min(query.k, len(objects))


def test_lattice_straddles_grid_cuts():
    """Sanity: the lattice really collides with the 2- and 4-shard cuts."""
    cuts = {Fraction(1, 2), Fraction(1, 4), Fraction(3, 4)}
    lattice = {Fraction(i, 8) for i in range(9)}
    assert cuts < lattice
