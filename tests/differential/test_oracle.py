"""Differential harness: every engine against the brute-force oracle.

For a seeded grid of datasets and query shapes, the index-backed
algorithms (STPS, STDS, ISS) must return *exactly* the oracle's answer —
same object ids in the same order, scores within ``1e-9`` — under the
library-wide deterministic tie-break (score desc, oid asc).  The grid
yields 216 generated cases per score variant (2 datasets × 3 λ × 2 radii
× 3 k × 6 keyword seeds), plus corner cases: ``k >= |O|``, empty keyword
sets, and keyword masks that no feature can satisfy.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bruteforce import brute_force
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError
from repro.model.dataset import FeatureDataset, ObjectDataset
from tests.conftest import make_data_objects, make_feature_objects

from repro.text.vocabulary import Vocabulary

N_OBJECTS = 100
N_FEATURES = 80
#: Features only use terms below this bit; higher bits are provably
#: unsatisfiable (the "no valid combination" corner).
USED_VOCAB = 24
VOCAB = Vocabulary(f"kw{i}" for i in range(32))

DATASET_SEEDS = (11, 23)
LAMBDAS = (0.0, 0.5, 1.0)
RADII = (0.02, 0.08)
KS = (1, 7, N_OBJECTS + 5)  # includes k >= |O|
KEYWORD_SEEDS = (0, 1, 2, 3, 4, 5)
SCORE_TOL = 1e-9


@pytest.fixture(scope="module")
def corpus():
    """seed -> (objects, feature_sets, processor) — built once."""
    built = {}
    for seed in DATASET_SEEDS:
        objects = ObjectDataset(make_data_objects(N_OBJECTS, seed=seed))
        feature_sets = [
            FeatureDataset(
                make_feature_objects(
                    N_FEATURES, seed=seed * 100 + j, vocab_size=USED_VOCAB
                ),
                VOCAB,
                f"set{j}",
            )
            for j in range(2)
        ]
        built[seed] = (
            objects,
            feature_sets,
            QueryProcessor.build(objects, feature_sets),
        )
    return built


def _mask(rng: random.Random, terms: int = 3) -> int:
    mask = 0
    for t in rng.sample(range(USED_VOCAB), terms):
        mask |= 1 << t
    return mask


def _queries(variant: Variant, lam: float, radius: float, k: int):
    """The per-(variant, λ, r, k) slice of the seeded keyword grid."""
    for kw_seed in KEYWORD_SEEDS:
        rng = random.Random(1000 * kw_seed + k)
        yield PreferenceQuery(
            k, radius, lam, (_mask(rng), _mask(rng)), variant
        )


def _items(result):
    return [(item.oid, item.score) for item in result.items]


def _assert_matches(oracle, got, label: str, query: PreferenceQuery):
    assert len(got) == len(oracle), (
        f"{label}: {len(got)} items, oracle has {len(oracle)} ({query})"
    )
    for rank, ((exp_oid, exp_score), (got_oid, got_score)) in enumerate(
        zip(oracle, got)
    ):
        assert got_oid == exp_oid, (
            f"{label}: rank {rank} oid {got_oid} != {exp_oid} ({query})"
        )
        assert abs(got_score - exp_score) <= SCORE_TOL, (
            f"{label}: rank {rank} score {got_score} != {exp_score} "
            f"({query})"
        )


GRID = [
    pytest.param(seed, lam, radius, k, id=f"d{seed}-l{lam}-r{radius}-k{k}")
    for seed in DATASET_SEEDS
    for lam in LAMBDAS
    for radius in RADII
    for k in KS
]


@pytest.mark.parametrize(("seed", "lam", "radius", "k"), GRID)
class TestOracleGrid:
    """STPS == STDS == ISS == brute force, ids and scores."""

    def test_range(self, corpus, seed, lam, radius, k):
        objects, feature_sets, processor = corpus[seed]
        for query in _queries(Variant.RANGE, lam, radius, k):
            oracle = _items(brute_force(objects, feature_sets, query))
            _assert_matches(
                oracle, _items(processor.query(query)), "stps", query
            )
            _assert_matches(
                oracle,
                _items(processor.query(query, algorithm="stds")),
                "stds",
                query,
            )

    def test_influence(self, corpus, seed, lam, radius, k):
        objects, feature_sets, processor = corpus[seed]
        for query in _queries(Variant.INFLUENCE, lam, radius, k):
            oracle = _items(brute_force(objects, feature_sets, query))
            _assert_matches(
                oracle, _items(processor.query(query)), "stps", query
            )
            _assert_matches(
                oracle,
                _items(processor.query(query, algorithm="iss")),
                "iss",
                query,
            )

    def test_nearest(self, corpus, seed, lam, radius, k):
        objects, feature_sets, processor = corpus[seed]
        for query in _queries(Variant.NEAREST, lam, radius, k):
            oracle = _items(brute_force(objects, feature_sets, query))
            _assert_matches(
                oracle, _items(processor.query(query)), "stps", query
            )


class TestCorners:
    """Degenerate query shapes every engine must agree on."""

    @pytest.mark.parametrize("variant", list(Variant))
    def test_k_exceeds_dataset(self, corpus, variant):
        """k >= |O| returns the whole dataset, fully ranked."""
        seed = DATASET_SEEDS[0]
        objects, feature_sets, processor = corpus[seed]
        query = PreferenceQuery(
            N_OBJECTS + 7, 0.05, 0.5, (0b111, 0b111), variant
        )
        oracle = _items(brute_force(objects, feature_sets, query))
        assert len(oracle) == N_OBJECTS
        _assert_matches(
            oracle, _items(processor.query(query)), "stps", query
        )
        if variant is Variant.RANGE:
            _assert_matches(
                oracle,
                _items(processor.query(query, algorithm="stds")),
                "stds",
                query,
            )

    def test_empty_keyword_set_rejected(self):
        """An empty keyword set is a malformed query (Definition 2)."""
        with pytest.raises(QueryError):
            PreferenceQuery(5, 0.05, 0.5, (0, 0b1))

    @pytest.mark.parametrize("variant", list(Variant))
    def test_unsatisfiable_keywords(self, corpus, variant):
        """Keywords no feature carries: everything scores exactly 0.

        The engines must still fill k slots deterministically (lowest
        oids first) — the all-virtual-combination tail of Section 6.1.
        """
        seed = DATASET_SEEDS[0]
        objects, feature_sets, processor = corpus[seed]
        dead_mask = 1 << (USED_VOCAB + 2)  # bit no feature ever uses
        query = PreferenceQuery(
            6, 0.05, 0.5, (dead_mask, dead_mask), variant
        )
        oracle = _items(brute_force(objects, feature_sets, query))
        assert [score for _, score in oracle] == [0.0] * 6
        assert [oid for oid, _ in oracle] == list(range(6))
        _assert_matches(
            oracle, _items(processor.query(query)), "stps", query
        )
        if variant is Variant.RANGE:
            _assert_matches(
                oracle,
                _items(processor.query(query, algorithm="stds")),
                "stds",
                query,
            )
        if variant is Variant.INFLUENCE:
            _assert_matches(
                oracle,
                _items(processor.query(query, algorithm="iss")),
                "iss",
                query,
            )

    def test_grid_size(self):
        """The seeded grid really generates >= 200 cases per variant."""
        assert (
            len(DATASET_SEEDS)
            * len(LAMBDAS)
            * len(RADII)
            * len(KS)
            * len(KEYWORD_SEEDS)
            >= 200
        )


class TestProcessFanoutOracle:
    """Process-mode sharded engine against the brute-force oracle.

    One shared worker pool (full replication so every variant is
    servable) runs a compact slice of the seeded grid; answers must
    match the oracle at ``SCORE_TOL`` exactly like the in-process
    engines — the process boundary must not perturb a single score.
    """

    @pytest.fixture(scope="class")
    def sharded(self, corpus):
        from repro.shard import ShardedQueryProcessor

        seed = DATASET_SEEDS[0]
        objects, feature_sets, _ = corpus[seed]
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=4, radius=max(RADII),
            replication="full", fanout="processes",
        ) as proc:
            yield proc

    @pytest.mark.parametrize("variant", list(Variant))
    @pytest.mark.parametrize(
        ("lam", "radius", "k"),
        [
            pytest.param(lam, radius, k, id=f"l{lam}-r{radius}-k{k}")
            for lam in (0.0, 0.5)
            for radius in RADII
            for k in (1, 7)
        ],
    )
    def test_matches_oracle(self, corpus, sharded, variant, lam, radius, k):
        seed = DATASET_SEEDS[0]
        objects, feature_sets, _ = corpus[seed]
        for query in _queries(variant, lam, radius, k):
            oracle = _items(brute_force(objects, feature_sets, query))
            _assert_matches(
                oracle,
                _items(sharded.query(query)),
                "sharded-processes",
                query,
            )
