"""Differential-suite configuration: deterministic hypothesis profile.

The suite must behave identically on every run and machine (CI compares
it across Python versions), so the ``differential`` profile derandomizes
hypothesis: examples are derived from the test function itself, not from
a per-run RNG seed.  ``deadline=None`` because a single example builds
R-trees — wall time varies far too much for hypothesis' per-example
deadline heuristics.
"""

from __future__ import annotations

from hypothesis import HealthCheck, settings

settings.register_profile(
    "differential",
    derandomize=True,
    deadline=None,
    max_examples=50,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        HealthCheck.filter_too_much,
    ],
)
settings.load_profile("differential")
