"""Differential check: EXPLAIN plans reconcile with metric counters.

The QueryPlan is built from its own event stream inside the collector;
the Prometheus counters are incremented independently on the hot path.
If the two ever disagree, one of them is lying about what the query did.
For every algorithm/variant/pulling combination (and the sharded
engine), this module runs ``explain`` and asserts

* ``plan.counters()`` equals the registry counter deltas caused by that
  one query, family by family (label-selected where the plan key names
  a feature set or a shard verdict), and
* the explained result is item-identical to a plain ``query`` run —
  diagnostics must never perturb answers.
"""

from __future__ import annotations

import re

import pytest

from repro.core.combinations import PULL_PRIORITIZED, PULL_ROUND_ROBIN
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.obs import metrics as _metrics
from repro.obs.explain import counter_deltas, counter_snapshot
from repro.shard import ShardedQueryProcessor

#: plan.counters() key grammar: ``family`` or ``family[selector]``.
_KEY_RE = re.compile(r"^(?P<family>[a-zA-Z_:][a-zA-Z0-9_:]*)(\[(?P<sel>[^\]]+)\])?$")

#: Which label carries the plan key's selector, per family.
_SELECTOR_LABEL = {
    "repro_features_pulled_total": "feature_set",
    "repro_shard_queries": "outcome",
}


@pytest.fixture(scope="module")
def corpus():
    objects = synthetic_objects(240, seed=31)
    feature_sets = synthetic_feature_sets(2, 150, 32, seed=32)
    return objects, feature_sets


@pytest.fixture(scope="module")
def processor(corpus):
    objects, feature_sets = corpus
    return QueryProcessor.build(objects, feature_sets)


def _summed_delta(deltas, family: str, selector: str | None) -> float:
    """Sum a family's deltas, filtered to the plan key's selector."""
    fam = _metrics.registry().get(family)
    sel_pos = None
    if selector is not None:
        assert fam is not None, f"plan names unregistered family {family}"
        sel_pos = fam.labelnames.index(_SELECTOR_LABEL[family])
    total = 0.0
    for (name, labelvalues), value in deltas.items():
        if name != family:
            continue
        if sel_pos is not None and labelvalues[sel_pos] != selector:
            continue
        total += value
    return total


def _assert_plan_matches_deltas(plan, deltas) -> None:
    counters = plan.counters()
    assert counters, "plan produced no counters"
    for key, expected in counters.items():
        m = _KEY_RE.match(key)
        assert m, f"malformed plan counter key {key!r}"
        got = _summed_delta(deltas, m.group("family"), m.group("sel"))
        assert got == pytest.approx(expected), (
            f"{key}: plan says {expected}, registry moved by {got}"
        )


CONFIGS = [
    pytest.param("stps", Variant.RANGE, PULL_PRIORITIZED, id="stps-range-prioritized"),
    pytest.param("stps", Variant.RANGE, PULL_ROUND_ROBIN, id="stps-range-roundrobin"),
    pytest.param("stds", Variant.RANGE, PULL_PRIORITIZED, id="stds-range"),
    pytest.param("stps", Variant.INFLUENCE, PULL_PRIORITIZED, id="stps-influence"),
    pytest.param("iss", Variant.INFLUENCE, PULL_PRIORITIZED, id="iss-influence"),
    pytest.param("stps", Variant.NEAREST, PULL_PRIORITIZED, id="stps-nearest"),
]


class TestUnshardedReconciliation:
    @pytest.mark.parametrize(("algorithm", "variant", "pulling"), CONFIGS)
    def test_plan_counters_match_registry_deltas(
        self, processor, algorithm, variant, pulling
    ):
        query = PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101), variant)
        before = counter_snapshot(_metrics.registry())
        report = processor.explain(query, algorithm=algorithm, pulling=pulling)
        deltas = counter_deltas(before, counter_snapshot(_metrics.registry()))
        _assert_plan_matches_deltas(report.plan, deltas)

    @pytest.mark.parametrize(("algorithm", "variant", "pulling"), CONFIGS)
    def test_explain_result_identical_to_plain_query(
        self, processor, algorithm, variant, pulling
    ):
        query = PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101), variant)
        plain = processor.query(query, algorithm=algorithm, pulling=pulling)
        report = processor.explain(query, algorithm=algorithm, pulling=pulling)
        assert report.result.items == plain.items


class TestShardedReconciliation:
    @pytest.fixture(scope="class")
    def sharded(self, corpus):
        objects, feature_sets = corpus
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.08
        ) as proc:
            yield proc

    @pytest.mark.parametrize("pulling", [PULL_PRIORITIZED, PULL_ROUND_ROBIN])
    def test_sharded_plan_counters_match_registry_deltas(
        self, sharded, pulling
    ):
        query = PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101))
        before = counter_snapshot(_metrics.registry())
        report = sharded.explain(query, pulling=pulling)
        deltas = counter_deltas(before, counter_snapshot(_metrics.registry()))
        plan = report.plan
        _assert_plan_matches_deltas(plan, deltas)
        # Shard verdicts account for every shard exactly once.
        assert len(plan.shards) == len(sharded.shards)
        assert [s.shard_id for s in plan.shards] == [0, 1, 2]

    def test_sharded_explain_matches_unsharded_query(
        self, sharded, processor
    ):
        query = PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101))
        report = sharded.explain(query)
        plain = processor.query(query)
        assert [i.oid for i in report.result.items] == [
            i.oid for i in plain.items
        ]


class TestProcessFanoutReconciliation:
    """Process-mode fan-out: worker metric deltas and sub-plans must be
    forwarded over the result channel such that plan/registry
    reconciliation is exact — same invariant as in-process execution."""

    @pytest.fixture(scope="class")
    def sharded(self, corpus):
        objects, feature_sets = corpus
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.08,
            fanout="processes",
        ) as proc:
            yield proc

    @pytest.mark.parametrize("pulling", [PULL_PRIORITIZED, PULL_ROUND_ROBIN])
    def test_process_plan_counters_match_registry_deltas(
        self, sharded, pulling
    ):
        query = PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101))
        before = counter_snapshot(_metrics.registry())
        report = sharded.explain(query, pulling=pulling)
        deltas = counter_deltas(before, counter_snapshot(_metrics.registry()))
        plan = report.plan
        _assert_plan_matches_deltas(plan, deltas)
        assert len(plan.shards) == len(sharded.shards)
        # Executed shards carry their worker-produced sub-plan.
        executed = [s for s in plan.shards if s.verdict == "executed"]
        assert executed
        assert all(s.plan is not None for s in executed)

    def test_process_explain_matches_thread_mode(self, sharded, corpus):
        objects, feature_sets = corpus
        query = PreferenceQuery(5, 0.06, 0.5, (0b1011, 0b1101))
        report = sharded.explain(query)
        with ShardedQueryProcessor.build(
            objects, feature_sets, shards=3, radius=0.08
        ) as threaded:
            thread_report = threaded.explain(query)
        assert [i.oid for i in report.result.items] == [
            i.oid for i in thread_report.result.items
        ]
        # Same per-shard verdict structure, fan-out substrate aside.
        assert [s.shard_id for s in report.plan.shards] == [
            s.shard_id for s in thread_report.plan.shards
        ]
