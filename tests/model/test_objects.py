"""Tests for data and feature object records."""

import pytest

from repro.errors import DatasetError
from repro.model.objects import DataObject, FeatureObject


class TestDataObject:
    def test_basic(self):
        o = DataObject(1, 0.2, 0.3, "Hotel")
        assert o.location == (0.2, 0.3)
        assert o.name == "Hotel"

    def test_negative_id(self):
        with pytest.raises(DatasetError):
            DataObject(-1, 0.0, 0.0)

    def test_nonfinite_location(self):
        with pytest.raises(DatasetError):
            DataObject(0, float("nan"), 0.0)

    def test_frozen(self):
        o = DataObject(0, 0.0, 0.0)
        with pytest.raises(AttributeError):
            o.x = 1.0


class TestFeatureObject:
    def test_basic(self):
        f = FeatureObject(2, 0.1, 0.9, 0.75, frozenset({0, 3}), "Cafe")
        assert f.location == (0.1, 0.9)
        assert f.score == 0.75

    def test_keyword_mask(self):
        f = FeatureObject(0, 0.0, 0.0, 0.5, frozenset({0, 2, 5}))
        assert f.keyword_mask() == 0b100101

    def test_empty_keywords_mask(self):
        assert FeatureObject(0, 0.0, 0.0, 0.5).keyword_mask() == 0

    def test_score_range_enforced(self):
        with pytest.raises(DatasetError):
            FeatureObject(0, 0.0, 0.0, 1.5)
        with pytest.raises(DatasetError):
            FeatureObject(0, 0.0, 0.0, -0.1)

    def test_boundary_scores_allowed(self):
        FeatureObject(0, 0.0, 0.0, 0.0)
        FeatureObject(1, 0.0, 0.0, 1.0)

    def test_negative_keyword_rejected(self):
        with pytest.raises(DatasetError):
            FeatureObject(0, 0.0, 0.0, 0.5, frozenset({-1}))

    def test_negative_id_rejected(self):
        with pytest.raises(DatasetError):
            FeatureObject(-5, 0.0, 0.0, 0.5)
