"""Tests for dataset containers."""

import pytest

from repro.errors import DatasetError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary


class TestObjectDataset:
    def test_iteration_and_len(self):
        ds = ObjectDataset([DataObject(0, 0.1, 0.1), DataObject(1, 0.2, 0.2)])
        assert len(ds) == 2
        assert [o.oid for o in ds] == [0, 1]

    def test_get(self):
        ds = ObjectDataset([DataObject(5, 0.1, 0.1)])
        assert ds.get(5).oid == 5
        with pytest.raises(DatasetError):
            ds.get(99)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(DatasetError):
            ObjectDataset([DataObject(0, 0.1, 0.1), DataObject(0, 0.2, 0.2)])

    def test_empty_allowed(self):
        assert len(ObjectDataset([])) == 0


class TestFeatureDataset:
    def test_vocabulary_consistency_enforced(self):
        vocab = Vocabulary(["a", "b"])
        bad = FeatureObject(0, 0.1, 0.1, 0.5, frozenset({7}))
        with pytest.raises(DatasetError):
            FeatureDataset([bad], vocab)

    def test_get(self):
        vocab = Vocabulary(["a"])
        ds = FeatureDataset(
            [FeatureObject(3, 0.1, 0.1, 0.5, frozenset({0}))], vocab
        )
        assert ds.get(3).fid == 3
        with pytest.raises(DatasetError):
            ds.get(0)

    def test_duplicate_ids_rejected(self):
        vocab = Vocabulary(["a"])
        objs = [
            FeatureObject(1, 0.1, 0.1, 0.5, frozenset({0})),
            FeatureObject(1, 0.2, 0.2, 0.5, frozenset({0})),
        ]
        with pytest.raises(DatasetError):
            FeatureDataset(objs, vocab)

    def test_resolve_keywords(self):
        vocab = Vocabulary(["pizza", "sushi"])
        ds = FeatureDataset(
            [FeatureObject(0, 0.1, 0.1, 0.5, frozenset({0}))], vocab, "r"
        )
        assert ds.resolve_keywords(["pizza", "unknown"]) == frozenset({0})

    def test_label(self):
        ds = FeatureDataset([], Vocabulary(), "restaurants")
        assert ds.label == "restaurants"
