"""Hypothesis stateful model checking of the live-update subsystem.

A :class:`RuleBasedStateMachine` interleaves every mutation op with
queries and cache clears against a tiny, split-happy world (page size
256, so inserts split and deletes condense constantly).  The shadow
model is :func:`repro.core.bruteforce.brute_force` over the live
dataset's id-keyed mirror — maintained independently of the trees — so
every query rule is a genuine differential check.  After *every* rule
two invariants run:

* **aggregate tightness** — ``check_consistency`` → ``validate()``,
  which recomputes each internal entry from its child: a stale-tight
  ``max_score`` or summary mask (the Lemma-1 killer) fails immediately;
* **cache coherence** — every decoded node still cached must equal a
  fresh decode of its page straight from the page file, bypassing both
  cache layers.

``test_broken_aggregate_update_is_caught`` /
``test_unpersisted_mutation_is_caught`` are the mutation-test checks:
they deliberately break the aggregate write-back / node persistence and
assert the same invariants catch it, proving the harness has teeth.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.bruteforce import brute_force
from repro.core.query import PreferenceQuery, Variant
from repro.errors import DatasetError, IndexError_
from repro.index.rtree_base import RTreeBase
from repro.live import LiveDataset
from repro.model.objects import DataObject, FeatureObject

from tests.live.conftest import live_world

SCORE_TOL = 1e-9
#: Coarse coordinate lattice: collisions and exact-boundary placements
#: are common, which is where geometric bookkeeping bugs live.
GRID = 8
#: Query masks address the low 8 vocabulary terms.
MASK_BITS = 8

positions = st.tuples(
    st.integers(0, GRID).map(lambda i: i / GRID),
    st.integers(0, GRID).map(lambda i: i / GRID),
)
scores = st.integers(0, 1000).map(lambda i: i / 1000)
keyword_sets = st.frozensets(st.integers(0, MASK_BITS - 1), min_size=1, max_size=3)


def assert_caches_coherent(live: LiveDataset) -> None:
    """Every cached decoded node == a fresh decode of its page.

    Reads pages straight from the page file (below the buffer pool), so
    a cached node surviving a page rewrite cannot hide behind another
    cache layer.
    """
    for tree in live.processor.trees():
        for page_id in tree.node_cache.page_ids():
            cached = tree.node_cache.peek(page_id)
            if cached is None:  # evicted between listing and peek
                continue
            fresh = tree.codec.decode(
                page_id, tree.pagefile.read(page_id).payload
            )
            assert cached.level == fresh.level, (
                f"page {page_id}: cached level {cached.level} != "
                f"persisted {fresh.level}"
            )
            assert cached.entries == fresh.entries, (
                f"page {page_id}: cached decode diverges from the "
                f"persisted page after a mutation"
            )


class LiveModelMachine(RuleBasedStateMachine):
    """Interleaved mutations × queries × cache clears vs brute force."""

    #: Floors so the world never degenerates to an empty tree mid-run.
    MIN_OBJECTS = 3
    MIN_FEATURES = 2

    def __init__(self) -> None:
        super().__init__()
        objects, feature_sets = live_world(
            n_objects=14, n_features=10, seed=31
        )
        self.live = LiveDataset.build(
            objects, feature_sets, page_size=256, buffer_pages=8
        )
        self._next_fid = 900_000
        self._next_oid = 900_000

    # -- mutation rules ------------------------------------------------
    @rule(set_id=st.integers(0, 1), pos=positions, score=scores,
          keywords=keyword_sets)
    def insert_feature(self, set_id, pos, score, keywords):
        self._next_fid += 1
        self.live.insert_feature(
            set_id,
            FeatureObject(self._next_fid, pos[0], pos[1], score, keywords),
        )

    @rule(set_id=st.integers(0, 1), pick=st.integers(0, 10**6))
    def delete_feature(self, set_id, pick):
        fids = self.live.feature_ids(set_id)
        if len(fids) <= self.MIN_FEATURES:
            return
        self.live.delete_feature(set_id, fids[pick % len(fids)])

    @rule(set_id=st.integers(0, 1), pick=st.integers(0, 10**6),
          pos=positions)
    def move_feature(self, set_id, pick, pos):
        fids = self.live.feature_ids(set_id)
        self.live.move_feature(set_id, fids[pick % len(fids)], *pos)

    @rule(set_id=st.integers(0, 1), pick=st.integers(0, 10**6),
          score=scores)
    def rescore_feature(self, set_id, pick, score):
        fids = self.live.feature_ids(set_id)
        self.live.rescore_feature(set_id, fids[pick % len(fids)], score)

    @rule(pos=positions)
    def insert_object(self, pos):
        self._next_oid += 1
        self.live.insert_object(DataObject(self._next_oid, pos[0], pos[1]))

    @rule(pick=st.integers(0, 10**6))
    def delete_object(self, pick):
        oids = self.live.object_ids()
        if len(oids) <= self.MIN_OBJECTS:
            return
        self.live.delete_object(oids[pick % len(oids)])

    # -- interleaved non-mutating operations ---------------------------
    @rule()
    def clear_caches(self):
        self.live.clear_buffers()

    @rule(
        masks=st.tuples(
            st.integers(1, 2**MASK_BITS - 1), st.integers(1, 2**MASK_BITS - 1)
        ),
        k=st.integers(1, 5),
        radius=st.sampled_from((0.15, 0.3)),
        lam=st.sampled_from((0.0, 0.5)),
        variant=st.sampled_from(list(Variant)),
        algorithm=st.integers(0, 1),
    )
    def query_matches_brute_force(self, masks, k, radius, lam, variant,
                                  algorithm):
        query = PreferenceQuery(k, radius, lam, masks, variant)
        algorithms = {
            Variant.RANGE: ("stps", "stds"),
            Variant.INFLUENCE: ("stps", "iss"),
            Variant.NEAREST: ("stps", "stps"),
        }[variant]
        got = self.live.query(query, algorithm=algorithms[algorithm]).items
        expected = brute_force(
            self.live.objects_snapshot(),
            self.live.feature_snapshots(),
            query,
        ).items
        assert [i.oid for i in got] == [i.oid for i in expected]
        for g, e in zip(got, expected):
            assert abs(g.score - e.score) <= SCORE_TOL

    # -- invariants (run after every rule) -----------------------------
    @invariant()
    def aggregates_are_exact(self):
        self.live.check_consistency()

    @invariant()
    def caches_are_coherent(self):
        assert_caches_coherent(self.live)


_base = settings.get_profile("repro-live")

TestLiveModelSmoke = LiveModelMachine.TestCase
TestLiveModelSmoke.settings = settings(
    _base, max_examples=8, stateful_step_count=20
)


class _DeepMachine(LiveModelMachine):
    """Same machine, longer walks — the CI live-updates job runs it."""


TestLiveModelDeep = pytest.mark.slow(_DeepMachine.TestCase)
TestLiveModelDeep.settings = settings(
    _base, max_examples=25, stateful_step_count=50
)


# ----------------------------------------------------------------------
# mutation tests: the harness must catch deliberately-broken updates
# ----------------------------------------------------------------------
def _mutate_a_lot(live: LiveDataset) -> None:
    """Mutations guaranteed to route through parent-entry write-back."""
    for i in range(12):
        live.insert_feature(
            0,
            FeatureObject(
                700_000 + i, (i % 4) / 4, (i % 3) / 3, 0.99, frozenset({1})
            ),
        )
    for fid in live.feature_ids(0)[:6]:
        live.rescore_feature(0, fid, 1.0)


def test_broken_aggregate_update_is_caught(monkeypatch):
    """No-op the parent-entry write-back; the tightness invariant fires.

    This is the documented mutation-test check: with
    ``RTreeBase._replace_child_entry`` disabled, internal entries go
    stale-tight after mutations (exactly the Lemma-1-violating bug class)
    and ``check_consistency`` — the stateful machine's first invariant —
    must raise.
    """
    objects, feature_sets = live_world(n_objects=20, n_features=30, seed=37)
    live = LiveDataset.build(
        objects, feature_sets, page_size=256, buffer_pages=8
    )
    live.check_consistency()  # sane before the sabotage
    monkeypatch.setattr(
        RTreeBase, "_replace_child_entry", lambda self, parent, child: None
    )
    with pytest.raises((IndexError_, DatasetError)):
        _mutate_a_lot(live)
        live.check_consistency()


def test_unpersisted_mutation_is_caught(monkeypatch):
    """A mutated node that never reaches its page trips coherence.

    ``write_node`` aliases the cached object with the one being mutated,
    so the dangerous direction is a *forgotten persist*: the in-memory
    tree looks right while the page keeps its pre-mutation image (lost
    on reopen, wrong after any eviction).  Sabotage ``write_node`` to
    refresh the cache but skip the page write for already-persisted
    nodes and assert the coherence invariant catches it.
    """
    objects, feature_sets = live_world(n_objects=20, n_features=30, seed=41)
    live = LiveDataset.build(
        objects, feature_sets, page_size=256, buffer_pages=64
    )
    # Populate the decoded-node caches with the pre-mutation tree.
    live.query(
        PreferenceQuery(3, 0.3, 0.5, (0xFF, 0xFF), Variant.RANGE)
    )
    assert_caches_coherent(live)  # sane before the sabotage

    real_write = RTreeBase.write_node

    def forgetful(self, node):
        if self._node_cache.peek(node.page_id) is not None:
            # Already persisted and cached: "forget" the page write.
            node.invalidate_arrays()
            self._node_cache.invalidate(node.page_id)
            self._node_cache.put(node)
        else:
            real_write(self, node)

    monkeypatch.setattr(RTreeBase, "write_node", forgetful)
    _mutate_a_lot(live)
    with pytest.raises(AssertionError):
        assert_caches_coherent(live)
