"""Unit tests for the live-update layer (:mod:`repro.live`) and the
standing-query monitor (:class:`repro.core.streaming.TopKMonitor`).

The oracle and stateful suites prove end-to-end correctness; this file
pins the surface: validation errors, declarative mutation dispatch,
mirror/snapshot semantics, metrics, shard routing restrictions, and the
monitor's delta reporting.
"""

from __future__ import annotations

import pytest

from repro.core.query import PreferenceQuery, Variant
from repro.core.streaming import (
    TopKDelta,
    TopKMonitor,
    monitor_changes_metric,
    monitor_refreshes_metric,
)
from repro.errors import DatasetError, ShardError
from repro.live import (
    LIVE_METRIC_FAMILIES,
    MUTATION_OPS,
    LiveDataset,
    LiveShardedDataset,
    Mutation,
    feature_entry,
    object_entry,
)
from repro.live.dataset import live_mutations_metric
from repro.live.sharded import live_relocations_metric
from repro.model.objects import DataObject, FeatureObject
from repro.obs.metrics import registry

from tests.live.conftest import live_world

MONITOR_METRIC_FAMILIES = (
    "repro_live_monitor_refreshes_total",
    "repro_live_monitor_changes_total",
)

QUERY = PreferenceQuery(3, 0.35, 0.5, (0xFFFF, 0xFFFF), Variant.RANGE)


def small_live(**kwargs) -> LiveDataset:
    objects, feature_sets = live_world(n_objects=30, n_features=24, seed=5)
    kwargs.setdefault("page_size", 512)
    kwargs.setdefault("buffer_pages", 32)
    return LiveDataset.build(objects, feature_sets, **kwargs)


@pytest.fixture()
def live() -> LiveDataset:
    return small_live()


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_ctor_rejects_feature_set_count_mismatch(self, live):
        objects = live.objects_snapshot()
        sets = live.feature_snapshots()
        with pytest.raises(DatasetError, match="feature trees"):
            LiveDataset(live.processor, objects, sets[:1])

    def test_set_id_out_of_range(self, live):
        feature = FeatureObject(777, 0.5, 0.5, 0.5, frozenset({1}))
        with pytest.raises(DatasetError, match="out of range"):
            live.insert_feature(9, feature)
        with pytest.raises(DatasetError, match="out of range"):
            live.feature_ids(-1)
        with pytest.raises(DatasetError, match="out of range"):
            live.n_features(2)

    def test_duplicate_feature_id(self, live):
        fid = live.feature_ids(0)[0]
        clone = FeatureObject(fid, 0.5, 0.5, 0.5, frozenset({1}))
        with pytest.raises(DatasetError, match="already present"):
            live.insert_feature(0, clone)

    def test_keywords_must_fit_vocabulary(self, live):
        feature = FeatureObject(778, 0.5, 0.5, 0.5, frozenset({999}))
        with pytest.raises(DatasetError, match="outside the"):
            live.insert_feature(0, feature)

    def test_unknown_feature_id(self, live):
        with pytest.raises(DatasetError, match="unknown feature id"):
            live.delete_feature(0, 424242)
        with pytest.raises(DatasetError, match="unknown feature id"):
            live.move_feature(0, 424242, 0.1, 0.1)
        with pytest.raises(DatasetError, match="unknown feature id"):
            live.rescore_feature(0, 424242, 0.9)
        with pytest.raises(DatasetError, match="unknown feature id"):
            live.get_feature(1, 424242)

    def test_unknown_and_duplicate_object_id(self, live):
        with pytest.raises(DatasetError, match="unknown data object"):
            live.delete_object(424242)
        with pytest.raises(DatasetError, match="unknown data object"):
            live.get_object(424242)
        oid = live.object_ids()[0]
        with pytest.raises(DatasetError, match="already present"):
            live.insert_object(DataObject(oid, 0.5, 0.5))


# ----------------------------------------------------------------------
# mutations, mirror, snapshots
# ----------------------------------------------------------------------
class TestMutations:
    def test_insert_feature_is_queryable_and_mirrored(self, live):
        before = live.n_features(0)
        feature = FeatureObject(900, 0.42, 0.42, 0.9, frozenset({1, 2}))
        live.insert_feature(0, feature)
        assert live.n_features(0) == before + 1
        assert live.get_feature(0, 900) == feature
        assert 900 in live.feature_ids(0)
        snapshot = live.feature_snapshots()[0]
        assert feature in list(snapshot)
        live.check_consistency()

    def test_delete_feature_returns_removed(self, live):
        fid = live.feature_ids(1)[0]
        removed = live.delete_feature(1, fid)
        assert removed.fid == fid
        assert fid not in live.feature_ids(1)
        live.check_consistency()

    def test_move_and_rescore_return_updated(self, live):
        fid = live.feature_ids(0)[0]
        moved = live.move_feature(0, fid, 0.111, 0.222)
        assert (moved.x, moved.y) == (0.111, 0.222)
        rescored = live.rescore_feature(0, fid, 0.987)
        assert rescored.score == 0.987
        assert live.get_feature(0, fid) == rescored
        live.check_consistency()

    def test_object_insert_delete_roundtrip(self, live):
        n = live.n_objects
        live.insert_object(DataObject(901, 0.3, 0.3))
        assert live.n_objects == n + 1
        assert live.get_object(901) == DataObject(901, 0.3, 0.3)
        removed = live.delete_object(901)
        assert removed.oid == 901
        assert live.n_objects == n
        live.check_consistency()

    def test_version_bumps_once_per_mutation(self, live):
        v0 = live.version
        live.insert_object(DataObject(902, 0.4, 0.4))
        live.rescore_feature(0, live.feature_ids(0)[0], 0.5)
        assert live.version == v0 + 2

    def test_snapshots_are_sorted_by_id(self, live):
        live.insert_object(DataObject(903, 0.2, 0.9))
        oids = [o.oid for o in live.objects_snapshot()]
        assert oids == sorted(oids)
        for snapshot in live.feature_snapshots():
            fids = [f.fid for f in snapshot]
            assert fids == sorted(fids)

    def test_apply_dispatches_every_op(self, live):
        fid = live.feature_ids(0)[0]
        oid = live.object_ids()[0]
        events = [
            Mutation(
                "insert_feature",
                feature=FeatureObject(910, 0.6, 0.6, 0.7, frozenset({3})),
            ),
            Mutation("move_feature", fid=910, x=0.65, y=0.65),
            Mutation("rescore_feature", fid=910, score=0.1),
            Mutation("delete_feature", set_id=0, fid=fid),
            Mutation("insert_object", obj=DataObject(911, 0.7, 0.7)),
            Mutation("delete_object", oid=oid),
        ]
        assert {e.op for e in events} == set(MUTATION_OPS)
        for event in events:
            live.apply(event)
        assert fid not in live.feature_ids(0)
        assert live.get_feature(0, 910).score == 0.1
        assert oid not in live.object_ids()
        live.check_consistency()

    def test_apply_rejects_unknown_op(self, live):
        with pytest.raises(DatasetError, match="unknown mutation op"):
            live.apply(Mutation("truncate_everything"))

    def test_entry_constructors_match_tree_contents(self):
        feature = FeatureObject(1, 0.1, 0.2, 0.3, frozenset({0, 2}))
        entry = feature_entry(feature)
        assert (entry.fid, entry.x, entry.y, entry.score) == (1, 0.1, 0.2, 0.3)
        assert entry.mask == feature.keyword_mask()
        obj = DataObject(2, 0.4, 0.5)
        assert object_entry(obj) == object_entry(DataObject(2, 0.4, 0.5))

    def test_mutation_metrics_count_by_target_and_op(self, live):
        registry().reset(LIVE_METRIC_FAMILIES)
        live.insert_object(DataObject(920, 0.5, 0.1))
        live.delete_object(920)
        live.rescore_feature(1, live.feature_ids(1)[0], 0.4)
        counter = live_mutations_metric()
        assert counter.labels(target="object", op="insert").value == 1
        assert counter.labels(target="object", op="delete").value == 1
        assert counter.labels(target="feature", op="rescore").value == 1

    def test_divergence_is_reported_not_masked(self, live):
        fid = live.feature_ids(0)[0]
        feature = live.get_feature(0, fid)
        # Sabotage: remove the entry behind the live layer's back.
        assert live.processor.feature_trees[0].delete(feature_entry(feature))
        with pytest.raises(DatasetError, match="divergence"):
            live.delete_feature(0, fid)
        oid = live.object_ids()[0]
        obj = live.get_object(oid)
        assert live.processor.object_tree.delete(object_entry(obj))
        with pytest.raises(DatasetError, match="divergence"):
            live.delete_object(oid)

    def test_check_consistency_catches_count_mismatch(self, live):
        live.processor.object_tree.insert(object_entry(DataObject(930, 0.5, 0.5)))
        with pytest.raises(DatasetError, match="mirror has"):
            live.check_consistency()

    def test_query_explain_and_clear_pass_through(self, live):
        result = live.query(QUERY)
        assert result.items
        plan = live.explain(QUERY)
        assert plan is not None
        dropped = live.clear_buffers()
        assert dropped  # at least one tree had cached state


# ----------------------------------------------------------------------
# standing-query monitor
# ----------------------------------------------------------------------
class TestTopKMonitor:
    def test_baseline_is_not_reported_as_entries(self, live):
        registry().reset(MONITOR_METRIC_FAMILIES)
        monitor = TopKMonitor(live, QUERY)
        assert len(monitor.results) == QUERY.k
        assert monitor.version == live.version
        assert monitor_refreshes_metric().value == 1
        delta = monitor.refresh()
        assert not delta.changed  # nothing mutated, nothing reported

    def test_idle_refresh_skips_the_query(self, live):
        registry().reset(MONITOR_METRIC_FAMILIES)
        monitor = TopKMonitor(live, QUERY)
        monitor.refresh()
        monitor.refresh()
        assert monitor_refreshes_metric().value == 1  # baseline only
        monitor.refresh(force=True)
        assert monitor_refreshes_metric().value == 2

    def test_deleting_the_top_object_reports_exit_and_entry(self, live):
        registry().reset(MONITOR_METRIC_FAMILIES)
        monitor = TopKMonitor(live, QUERY)
        top = monitor.results[0]
        live.delete_object(top.oid)
        delta = monitor.refresh()
        assert delta.changed
        assert top.oid in {item.oid for item in delta.exited}
        assert len(delta.entered) == len(delta.exited)  # k stays filled
        assert top.oid not in {item.oid for item in monitor.results}
        assert delta.version == live.version
        changes = monitor_changes_metric()
        assert changes.labels(kind="exited").value >= 1
        assert changes.labels(kind="entered").value >= 1

    def test_rescoring_reports_rescored_pairs(self, live):
        wide = PreferenceQuery(
            live.n_objects, 0.35, 0.5, (0xFFFF, 0xFFFF), Variant.RANGE
        )
        monitor = TopKMonitor(live, wide)
        for fid in live.feature_ids(0):
            live.rescore_feature(0, fid, 0.0)
        delta = monitor.refresh()
        assert delta.changed
        assert not delta.entered and not delta.exited  # k covers everyone
        assert delta.rescored
        for before, after in delta.rescored:
            assert before.oid == after.oid
            assert before != after

    def test_drain_applies_then_refreshes_once(self, live):
        registry().reset(MONITOR_METRIC_FAMILIES)
        monitor = TopKMonitor(live, QUERY)
        oid = live.object_ids()[0]
        delta = monitor.drain(
            [
                Mutation("insert_object", obj=DataObject(940, 0.5, 0.5)),
                Mutation("delete_object", oid=oid),
            ]
        )
        assert delta.version == live.version
        assert monitor_refreshes_metric().value == 2  # baseline + one

    def test_delta_changed_property(self):
        assert not TopKDelta(0).changed
        item = object()  # changed only inspects truthiness
        assert TopKDelta(1, entered=(item,)).changed


# ----------------------------------------------------------------------
# sharded routing restrictions (thread mode; process mode has its own
# oracle test)
# ----------------------------------------------------------------------
class TestShardedRouting:
    def small_sharded(self, **kwargs) -> LiveShardedDataset:
        objects, feature_sets = live_world(
            n_objects=40, n_features=30, seed=7
        )
        kwargs.setdefault("shards", 4)
        kwargs.setdefault("radius", 0.25)
        kwargs.setdefault("page_size", 512)
        kwargs.setdefault("buffer_pages", 32)
        return LiveShardedDataset.build(objects, feature_sets, **kwargs)

    def test_ctor_rejects_feature_set_count_mismatch(self):
        with self.small_sharded() as live:
            sets = live.feature_snapshots()
            with pytest.raises(DatasetError, match="feature trees"):
                LiveShardedDataset(
                    live.processor, live.objects_snapshot(), sets[:1]
                )

    def test_halo_mode_rejects_objects_outside_every_region(self):
        with self.small_sharded() as live:
            n = live.n_objects
            with pytest.raises(ShardError, match="outside every shard"):
                live.insert_object(DataObject(950, 5.0, 5.0))
            # The failed mutation left no trace in the mirror.
            assert live.n_objects == n
            assert 950 not in live.object_ids()
            live.check_consistency()

    def test_full_replication_accepts_objects_anywhere(self):
        with self.small_sharded(replication="full") as live:
            live.insert_object(DataObject(951, 5.0, 5.0))
            assert 951 in live.object_ids()
            live.check_consistency()

    def test_thread_mode_flush_is_a_noop(self):
        with self.small_sharded() as live:
            live.rescore_feature(0, live.feature_ids(0)[0], 0.5)
            assert live.flush() == 0
            assert live.refreezes == 0

    def test_boundary_crossing_move_counts_a_relocation(self):
        with self.small_sharded() as live:
            registry().reset(LIVE_METRIC_FAMILIES)
            # Corner-to-corner move: the halo set must change on a 2x2
            # partition with r=0.25.
            feature = FeatureObject(952, 0.02, 0.02, 0.9, frozenset({1}))
            live.insert_feature(0, feature)
            before = live.relocations
            live.move_feature(0, 952, 0.98, 0.98)
            assert live.relocations == before + 1
            assert live_relocations_metric().value == 1
            live.check_consistency()

    def test_membership_divergence_is_reported(self):
        with self.small_sharded() as live:
            fid = live.feature_ids(0)[0]
            feature = live.get_feature(0, fid)
            shard_idx = next(iter(live._feature_shards[0][fid]))
            tree = live.processor.shards[shard_idx].processor.feature_trees[0]
            assert tree.delete(feature_entry(feature))
            with pytest.raises(DatasetError, match="divergence"):
                live.delete_feature(0, fid)

    def test_check_consistency_catches_unrouted_object(self):
        with self.small_sharded() as live:
            live._object_shard.pop(live.object_ids()[0])
            with pytest.raises(DatasetError, match="objects routed"):
                live.check_consistency()
