"""Live-update suite: shared world builders and the mutation stream.

Loads the ``repro-live`` hypothesis profile registered by the top-level
conftest (derandomized unless ``--hypothesis-seed`` was given), and
provides the deterministic :class:`MutationStream` the incremental
oracle and unit tests drive their engines with.
"""

from __future__ import annotations

import random

from hypothesis import settings

from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary

from tests.conftest import make_data_objects, make_feature_objects

settings.load_profile("repro-live")

#: Small vocabulary so query masks overlap feature keywords often.
LIVE_VOCAB_SIZE = 16


def live_world(
    n_objects: int = 80,
    n_features: int = 60,
    seed: int = 20,
) -> tuple[ObjectDataset, list[FeatureDataset]]:
    """A fresh small world (two feature sets) for live-update tests."""
    vocab = Vocabulary(f"kw{i}" for i in range(LIVE_VOCAB_SIZE))
    objects = ObjectDataset(make_data_objects(n_objects, seed=seed))
    feature_sets = [
        FeatureDataset(
            make_feature_objects(
                n_features, seed=seed + 1, vocab_size=LIVE_VOCAB_SIZE
            ),
            vocab,
            "A",
        ),
        FeatureDataset(
            [
                FeatureObject(
                    1000 + f.fid, f.x, f.y, f.score, f.keywords, f.name
                )
                for f in make_feature_objects(
                    n_features, seed=seed + 2, vocab_size=LIVE_VOCAB_SIZE
                )
            ],
            vocab,
            "B",
        ),
    ]
    return objects, feature_sets


class MutationStream:
    """Deterministic mixed-mutation generator over a live dataset.

    Each :meth:`step` draws one of the six mutation ops (weighted toward
    moves, the op that exercises re-halo) and applies it through the
    live API.  New positions are sampled inside the *original object
    bounding box*, so object inserts stay inside some shard's assignment
    region and halo-mode engines accept every generated stream.  A
    quarter of the moves mirror the feature to the opposite corner of
    the domain — guaranteed shard-boundary crossings on any multi-shard
    partition.

    ``counts`` tallies applied ops; ``self.rng`` is private to the
    stream, so two streams with equal seeds over equal worlds generate
    identical mutation sequences regardless of the engine underneath.
    """

    #: Keep worlds from draining: deletes are skipped below these floors.
    MIN_OBJECTS = 20
    MIN_FEATURES = 8

    def __init__(self, live, seed: int) -> None:
        self.live = live
        self.rng = random.Random(seed)
        self.counts: dict[str, int] = {}
        self.mirrored_moves = 0
        self._next_fid = 5_000_000
        self._next_oid = 5_000_000
        objects = live.objects_snapshot()
        xs = [o.x for o in objects]
        ys = [o.y for o in objects]
        self._domain = (min(xs), min(ys), max(xs), max(ys))

    def _point(self) -> tuple[float, float]:
        x0, y0, x1, y1 = self._domain
        return (self.rng.uniform(x0, x1), self.rng.uniform(y0, y1))

    def _mirror(self, x: float, y: float) -> tuple[float, float]:
        """The point reflected through the domain center (far corner)."""
        x0, y0, x1, y1 = self._domain
        return (x0 + x1 - x, y0 + y1 - y)

    def _keywords(self) -> frozenset[int]:
        return frozenset(
            self.rng.sample(range(LIVE_VOCAB_SIZE), self.rng.randint(1, 3))
        )

    def step(self) -> str:
        """Apply one mutation; returns the op name."""
        live = self.live
        op = self.rng.choices(
            (
                "insert_feature",
                "delete_feature",
                "move_feature",
                "rescore_feature",
                "insert_object",
                "delete_object",
            ),
            weights=(18, 12, 30, 12, 16, 12),
        )[0]
        set_id = self.rng.randrange(2)
        if op == "insert_feature":
            x, y = self._point()
            self._next_fid += 1
            live.insert_feature(
                set_id,
                FeatureObject(
                    self._next_fid, x, y,
                    round(self.rng.random(), 6), self._keywords(),
                ),
            )
        elif op == "delete_feature":
            fids = live.feature_ids(set_id)
            if len(fids) <= self.MIN_FEATURES:
                return self.step()
            live.delete_feature(set_id, self.rng.choice(fids))
        elif op == "move_feature":
            fids = live.feature_ids(set_id)
            fid = self.rng.choice(fids)
            if self.rng.random() < 0.25:
                old = live.get_feature(set_id, fid)
                x, y = self._mirror(old.x, old.y)
                self.mirrored_moves += 1
            else:
                x, y = self._point()
            live.move_feature(set_id, fid, x, y)
        elif op == "rescore_feature":
            fids = live.feature_ids(set_id)
            live.rescore_feature(
                set_id, self.rng.choice(fids), round(self.rng.random(), 6)
            )
        elif op == "insert_object":
            x, y = self._point()
            self._next_oid += 1
            live.insert_object(DataObject(self._next_oid, x, y))
        else:  # delete_object
            oids = live.object_ids()
            if len(oids) <= self.MIN_OBJECTS:
                return self.step()
            live.delete_object(self.rng.choice(oids))
        self.counts[op] = self.counts.get(op, 0) + 1
        return op

    def run(self, n: int) -> int:
        """Apply ``n`` mutations; returns the total applied so far."""
        for _ in range(n):
            self.step()
        return sum(self.counts.values())
