"""Incremental-vs-rebuild differential oracle (ISSUE 8 headline).

An engine mutated in place must answer *identically* — ids and scores at
1e-9 — to an index rebuilt from scratch over the mutated datasets, for
every algorithm/variant combination the engine supports.  Each test
drives ≥200 mixed mutations through :class:`tests.live.conftest.MutationStream`
(insert/delete/move/rescore features, insert/delete objects, with
mirrored moves that cross shard boundaries) and compares at periodic
checkpoints, so a divergence is caught near the mutation that caused it.

Covered engines: single-node :class:`LiveDataset` (with a brute-force
belt on top of the rebuild), sharded thread fan-out in both replication
modes, and sharded process fan-out (shared-memory refreeze path; marked
``slow`` for the worker-pool spin-up).
"""

from __future__ import annotations

import random

import pytest

from repro.core.bruteforce import brute_force
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.live import LiveDataset, LiveShardedDataset

from tests.conftest import random_mask
from tests.live.conftest import LIVE_VOCAB_SIZE, MutationStream, live_world

SCORE_TOL = 1e-9
TOTAL_MUTATIONS = 220
CHECKPOINT_EVERY = 55
QUERY_RADIUS = 0.18

#: (algorithm, variant) combinations: the paper's four query flavours.
FULL_BATTERY = (
    ("stps", Variant.RANGE),
    ("stds", Variant.RANGE),
    ("stps", Variant.INFLUENCE),
    ("iss", Variant.INFLUENCE),
    ("stps", Variant.NEAREST),
)
#: Halo-replicated shards only serve the range variant (by design).
RANGE_BATTERY = (("stps", Variant.RANGE), ("stds", Variant.RANGE))

BUILD_KWARGS = {"page_size": 1024, "buffer_pages": 64}


def _queries(seed: int, n: int = 2) -> list[PreferenceQuery]:
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        masks = tuple(
            random_mask(rng, terms=3) % (1 << LIVE_VOCAB_SIZE) or 1
            for _ in range(2)
        )
        out.append(
            PreferenceQuery(
                rng.choice((3, 7)), QUERY_RADIUS, 0.5, masks, Variant.RANGE
            )
        )
    return out


def _assert_matches(expected, got, label: str) -> None:
    exp = [(i.oid, i.score) for i in expected]
    act = [(i.oid, i.score) for i in got]
    assert len(act) == len(exp), f"{label}: {len(act)} items != {len(exp)}"
    for rank, ((eo, es), (ao, asc)) in enumerate(zip(exp, act)):
        assert ao == eo, f"{label}: rank {rank} oid {ao} != {eo}"
        assert abs(asc - es) <= SCORE_TOL, (
            f"{label}: rank {rank} score {asc} != {es}"
        )


def _check_against_rebuild(live, battery, brute: bool = False) -> None:
    """The oracle: mutated engine == rebuilt-from-scratch == brute force."""
    objects = live.objects_snapshot()
    feature_sets = live.feature_snapshots()
    rebuilt = QueryProcessor.build(objects, feature_sets, **BUILD_KWARGS)
    for query in _queries(seed=7):
        for algorithm, variant in battery:
            q = query.with_variant(variant)
            label = f"{algorithm}/{variant.value}"
            expected = rebuilt.query(q, algorithm=algorithm).items
            got = live.query(q, algorithm=algorithm).items
            _assert_matches(expected, got, label)
            if brute:
                oracle = brute_force(objects, feature_sets, q).items
                _assert_matches(oracle, got, f"{label} vs brute")


def _drive(live, stream: MutationStream, battery, brute: bool = False) -> int:
    total = 0
    while total < TOTAL_MUTATIONS:
        total = stream.run(CHECKPOINT_EVERY)
        live.check_consistency()
        _check_against_rebuild(live, battery, brute=brute)
    return total


def test_single_node_matches_rebuild_and_brute_force():
    objects, feature_sets = live_world()
    live = LiveDataset.build(objects, feature_sets, **BUILD_KWARGS)
    stream = MutationStream(live, seed=99)
    total = _drive(live, stream, FULL_BATTERY, brute=True)
    assert total >= 200
    # All six ops actually occurred — the stream exercised the full API.
    assert set(stream.counts) == {
        "insert_feature", "delete_feature", "move_feature",
        "rescore_feature", "insert_object", "delete_object",
    }


def test_sharded_threads_halo_with_boundary_crossings():
    objects, feature_sets = live_world()
    with LiveShardedDataset.build(
        objects, feature_sets, shards=4, radius=0.25, **BUILD_KWARGS
    ) as live:
        stream = MutationStream(live, seed=101)
        total = _drive(live, stream, RANGE_BATTERY)
        assert total >= 200
        # Mirrored moves must have re-halo'd features across the 2x2
        # grid — the boundary-crossing coverage the oracle exists for.
        assert stream.mirrored_moves > 0
        assert live.relocations > 0


def test_sharded_threads_full_replication_all_variants():
    objects, feature_sets = live_world()
    with LiveShardedDataset.build(
        objects, feature_sets, shards=4, radius=0.25,
        replication="full", **BUILD_KWARGS
    ) as live:
        stream = MutationStream(live, seed=103)
        total = _drive(live, stream, FULL_BATTERY)
        assert total >= 200


@pytest.mark.slow
def test_sharded_processes_refreeze_oracle():
    """Process fan-out: thaw → mutate → refreeze → workers re-attach."""
    objects, feature_sets = live_world()
    with LiveShardedDataset.build(
        objects, feature_sets, shards=2, radius=0.25,
        replication="full", fanout="processes", **BUILD_KWARGS
    ) as live:
        # Prime the worker pool on the original segments so the refreeze
        # path exercises manifest *replacement*, not first attachment.
        live.query(_queries(seed=7)[0])
        stream = MutationStream(live, seed=107)
        total = _drive(live, stream, FULL_BATTERY)
        assert total >= 200
        assert live.refreezes > 0
