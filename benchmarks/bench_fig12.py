"""Figure 12 — influence score, synthetic dataset, query parameters.

The paper: execution time similar to / slightly above the range score
(Figure 9), same trends, SRT consistently ahead.
"""

import pytest

from benchmarks.conftest import make_runner
from repro.core.query import Variant


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig12a:
    def test_small_radius(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                variant=Variant.INFLUENCE,
                radius=ctx.cfg.radius_sweep[0],
            )
        )

    def test_large_radius(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                variant=Variant.INFLUENCE,
                radius=ctx.cfg.radius_sweep[-1],
            )
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig12b:
    def test_small_k(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx, index, variant=Variant.INFLUENCE, k=ctx.cfg.k_sweep[0]
            )
        )

    def test_large_k(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx, index, variant=Variant.INFLUENCE, k=ctx.cfg.k_sweep[-1]
            )
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig12c:
    def test_mid_lambda(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, variant=Variant.INFLUENCE, lam=0.5))


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig12d:
    def test_many_keywords(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                variant=Variant.INFLUENCE,
                keywords_per_set=ctx.cfg.keywords_sweep[-1],
            )
        )
