"""Figure 10 — influence-score STPS scalability (synthetic).

Same four panels as Figure 7 under the influence score (Definition 6);
the paper reports comparable, slightly higher times than the range score.
"""

import pytest

from benchmarks.conftest import make_runner
from repro.core.query import Variant


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig10a:
    def test_default_features(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, variant=Variant.INFLUENCE))

    def test_max_features(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                variant=Variant.INFLUENCE,
                n_feat=ctx.cfg.cardinality_sweep[-1],
            )
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig10b:
    def test_max_objects(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                variant=Variant.INFLUENCE,
                n_obj=ctx.cfg.cardinality_sweep[-1],
            )
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig10c:
    def test_max_feature_sets(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx, index, variant=Variant.INFLUENCE, c=ctx.cfg.c_sweep[-1]
            )
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig10d:
    def test_max_vocabulary(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                variant=Variant.INFLUENCE,
                vocab=ctx.cfg.vocab_sweep[-1],
            )
        )
