"""Figure 14 — nearest-neighbor STPS, varying k.

Panels: real-like dataset (a) and synthetic dataset (b).  The paper:
near-flat in k on the real data (one combination's cells cover many
objects), growing with k on the synthetic data.
"""

import pytest

from benchmarks.conftest import make_runner
from repro.core.query import Variant


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig14aReal:
    def test_small_k(self, benchmark, ctx, index):
        runner = make_runner(
            ctx,
            index,
            dataset="real",
            variant=Variant.NEAREST,
            k=ctx.cfg.k_sweep[0],
            n_queries=4,
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)

    def test_large_k(self, benchmark, ctx, index):
        runner = make_runner(
            ctx,
            index,
            dataset="real",
            variant=Variant.NEAREST,
            k=ctx.cfg.k_sweep[-1],
            n_queries=4,
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig14bSynthetic:
    def test_small_k(self, benchmark, ctx, index):
        runner = make_runner(
            ctx,
            index,
            variant=Variant.NEAREST,
            k=ctx.cfg.k_sweep[0],
            n_queries=4,
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)

    def test_large_k(self, benchmark, ctx, index):
        runner = make_runner(
            ctx,
            index,
            variant=Variant.NEAREST,
            k=ctx.cfg.k_sweep[-1],
            n_queries=4,
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)
