"""Figure 7 — STPS scalability on the synthetic dataset (range score).

Four panels: execution time vs |F_i| (a), |O| (b), number of feature
sets c (c) and indexed keywords (d), for the SRT-index vs the modified
IR²-tree.  Expected shapes: STPS orders of magnitude below STDS
(bench_table3), SRT consistently below IR², sub-linear growth in |F_i|.
"""

import pytest

from benchmarks.conftest import make_runner


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig7a:
    def test_default_features(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index))

    def test_max_features(self, benchmark, ctx, index):
        benchmark(
            make_runner(ctx, index, n_feat=ctx.cfg.cardinality_sweep[-1])
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig7b:
    def test_max_objects(self, benchmark, ctx, index):
        benchmark(
            make_runner(ctx, index, n_obj=ctx.cfg.cardinality_sweep[-1])
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig7c:
    def test_max_feature_sets(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, c=ctx.cfg.c_sweep[-1]))


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig7d:
    def test_max_vocabulary(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, vocab=ctx.cfg.vocab_sweep[-1]))
