"""Figure 9 — STPS query parameters on the synthetic dataset (range).

Same panels as Figure 8 on the synthetic clustered data; the paper notes
the same tendencies with overall cheaper queries than on the real data
(many small clusters vs a few large ones).
"""

import pytest

from benchmarks.conftest import make_runner


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig9a:
    def test_small_radius(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, radius=ctx.cfg.radius_sweep[0]))

    def test_large_radius(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, radius=ctx.cfg.radius_sweep[-1]))


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig9b:
    def test_small_k(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, k=ctx.cfg.k_sweep[0]))

    def test_large_k(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, k=ctx.cfg.k_sweep[-1]))


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig9c:
    def test_mid_lambda(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, lam=0.5))


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig9d:
    def test_one_keyword(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, keywords_per_set=1))

    def test_many_keywords(self, benchmark, ctx, index):
        benchmark(
            make_runner(ctx, index, keywords_per_set=ctx.cfg.keywords_sweep[-1])
        )
