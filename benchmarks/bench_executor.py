"""Repeated-query throughput: hot path vs the serial scalar baselines.

Measures the combined effect of the decoded-node cache, the vectorized
leaf scoring and the :class:`~repro.core.executor.QueryExecutor` on a
repeated-query workload (the same distinct queries arriving again and
again, as in a serving deployment):

* **baseline (cold)** — the per-invocation serial path: one query at a
  time, scalar per-entry scoring (``leafdata.set_vectorized(False)``),
  all caches dropped before *every* query.  This is what serving each
  request from a fresh process costs.
* **baseline (warm)** — the same serial scalar loop inside one session,
  so the page buffer and the decoded-node cache stay warm between
  queries.
* **optimized** — vectorized scoring, warm caches and a
  :class:`QueryExecutor` sharing the same indexes, with batch
  deduplication (default) collapsing repeated queries onto one
  execution.

The headline ``speedup`` compares cold baseline to optimized;
``speedup_warm`` isolates what vectorization + the executor add on top
of a warm session.  Writes ``BENCH_executor.json`` (or ``--out``) and
prints a human-readable summary.  ``--smoke`` runs a seconds-scale
configuration for CI.

Run::

    PYTHONPATH=src python benchmarks/bench_executor.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core.executor import QueryExecutor
from repro.core.processor import QueryProcessor
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.data.workload import WorkloadSpec, make_workload
from repro.index import leafdata
from repro.obs import tracing


def build_processor(n_obj: int, n_feat: int, c: int, vocab: int, seed: int):
    objects = synthetic_objects(n_obj, seed=seed)
    feature_sets = synthetic_feature_sets(c, n_feat, vocab, seed=seed + 1)
    processor = QueryProcessor.build(objects, feature_sets, index="srt")
    return processor, feature_sets


def run_baseline_cold(processor, workload, algorithm: str) -> float:
    """Serial scalar loop with every cache dropped before each query.

    Emulates per-invocation serving (fresh process per request): no page
    buffer, no decoded-node cache, no score memo survives between
    queries.  The cache *drops* happen off the clock — only query
    execution is timed.
    """
    previous = leafdata.set_vectorized(False)
    try:
        total = 0.0
        for query in workload:
            processor.clear_buffers()
            t0 = time.perf_counter()
            processor.query(query, algorithm=algorithm)
            total += time.perf_counter() - t0
        return total
    finally:
        leafdata.set_vectorized(previous)


def run_baseline_warm(processor, workload, algorithm: str) -> float:
    """Serial scalar loop in one warm session (caches persist)."""
    previous = leafdata.set_vectorized(False)
    try:
        processor.clear_buffers()
        for query in workload[: min(len(workload), 4)]:
            processor.query(query, algorithm=algorithm)  # warm-up
        t0 = time.perf_counter()
        for query in workload:
            processor.query(query, algorithm=algorithm)
        return time.perf_counter() - t0
    finally:
        leafdata.set_vectorized(previous)


def run_optimized(processor, workload, algorithm: str, workers: int):
    """Warm caches + vectorized scoring + executor with batch dedup."""
    previous = leafdata.set_vectorized(True)
    try:
        with QueryExecutor(processor, max_workers=workers) as executor:
            processor.clear_buffers()
            executor.query_many(workload, algorithm=algorithm)  # warm-up
            return executor.run(workload, algorithm=algorithm)
    finally:
        leafdata.set_vectorized(previous)


def traced_phase_times(processor, workload, algorithm: str) -> dict[str, float]:
    """Per-phase wall seconds of one serial traced pass over the workload.

    Runs off the clock (separately from the timed passes) with the span
    tracer on, so the timed numbers never carry tracing overhead while
    the report still shows where the time goes.
    """
    tracing.clear()
    previous = tracing.set_enabled(True)
    try:
        totals: dict[str, float] = {}
        for query in workload:
            result = processor.query(query, algorithm=algorithm)
            for phase, seconds in result.stats.phase_times.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return {phase: round(s, 4) for phase, s in sorted(totals.items())}
    finally:
        tracing.set_enabled(previous)
        tracing.clear()


def bench(args) -> dict:
    processor, feature_sets = build_processor(
        args.objects, args.features, args.sets, args.vocab, args.seed
    )
    spec = WorkloadSpec(
        n_queries=args.queries,
        k=args.k,
        radius=args.radius,
        seed=args.seed + 7,
    )
    queries = make_workload(feature_sets, spec)
    workload = queries * args.repeats

    results = []
    for algorithm in args.algorithms:
        cold_s = run_baseline_cold(processor, workload, algorithm)
        warm_s = run_baseline_warm(processor, workload, algorithm)
        report = run_optimized(processor, workload, algorithm, args.workers)
        phase_times = traced_phase_times(
            processor, queries, algorithm
        )  # distinct queries only; off the clock
        speedup = cold_s / report.wall_s if report.wall_s > 0 else 0.0
        speedup_warm = warm_s / report.wall_s if report.wall_s > 0 else 0.0
        latency = report.latency_percentiles()
        queue_wait = report.queue_wait_percentiles()
        results.append(
            {
                "algorithm": algorithm,
                "queries": len(workload),
                "baseline_cold_s": round(cold_s, 4),
                "baseline_warm_s": round(warm_s, 4),
                "optimized_s": round(report.wall_s, 4),
                "speedup": round(speedup, 2),
                "speedup_warm": round(speedup_warm, 2),
                "throughput_qps": round(report.throughput_qps, 1),
                "node_cache_hit_rate": round(report.node_cache_hit_rate, 4),
                # Schema-additive observability fields (see repro.obs):
                "latency_p50_s": round(latency["p50"], 6),
                "latency_p95_s": round(latency["p95"], 6),
                "latency_p99_s": round(latency["p99"], 6),
                "queue_wait_p50_s": round(queue_wait["p50"], 6),
                "queue_wait_p95_s": round(queue_wait["p95"], 6),
                "queue_wait_p99_s": round(queue_wait["p99"], 6),
                "phase_times_s": phase_times,
            }
        )

    return {
        "benchmark": "executor-hot-path",
        "config": {
            "objects": args.objects,
            "features_per_set": args.features,
            "feature_sets": args.sets,
            "vocabulary": args.vocab,
            "distinct_queries": args.queries,
            "repeats": args.repeats,
            "workers": args.workers,
            "numpy_fast_path": leafdata.vectorized_enabled(),
            "python": platform.python_version(),
        },
        "results": results,
        "speedup_min": min(r["speedup"] for r in results),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="seconds-scale run")
    parser.add_argument("--out", type=Path, default=Path("BENCH_executor.json"))
    parser.add_argument("--objects", type=int, default=20_000)
    parser.add_argument("--features", type=int, default=10_000)
    parser.add_argument("--sets", type=int, default=2)
    parser.add_argument("--vocab", type=int, default=64)
    parser.add_argument("--queries", type=int, default=25, help="distinct queries")
    parser.add_argument("--repeats", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--radius", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--algorithms", nargs="+", default=["stps", "stds"],
        choices=["stps", "stds"],
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.objects = min(args.objects, 4000)
        args.features = min(args.features, 2000)
        args.queries = min(args.queries, 10)
        args.repeats = min(args.repeats, 5)

    payload = bench(args)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {args.out}")
    for row in payload["results"]:
        print(
            f"  {row['algorithm']:>4}: {row['queries']} queries  "
            f"cold {row['baseline_cold_s']:.2f}s / "
            f"warm {row['baseline_warm_s']:.2f}s -> "
            f"optimized {row['optimized_s']:.2f}s  "
            f"({row['speedup']:.1f}x cold, {row['speedup_warm']:.1f}x warm, "
            f"{row['throughput_qps']:.0f} q/s, "
            f"node-cache hit rate {row['node_cache_hit_rate']:.0%})"
        )
        print(
            f"        latency p50 {row['latency_p50_s'] * 1e3:.2f}ms / "
            f"p95 {row['latency_p95_s'] * 1e3:.2f}ms / "
            f"p99 {row['latency_p99_s'] * 1e3:.2f}ms  "
            f"queue wait p95 {row['queue_wait_p95_s'] * 1e3:.2f}ms"
        )
        for phase, seconds in row["phase_times_s"].items():
            print(f"        {phase:<32} {seconds:.3f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
