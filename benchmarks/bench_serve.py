"""Serving-layer load bench: zipf multi-tenant traffic over HTTP.

Boots the real :class:`~repro.serve.http.ServeServer` (stdlib
ThreadingHTTPServer, keep-alive) over a synthetic world and replays
skewed multi-tenant traffic against ``/query`` with ``http.client``
keep-alive connections.  Three phases:

* **load** — every tenant, query keys drawn zipf(s) from a mixed
  stps/stds/iss pool (the serving-cache's design assumption: heavy
  query-key skew), plus a small unique-key tail share so the window
  keeps executing fresh queries instead of degenerating into a pure
  cache replay.  Reports sustained QPS, p50/p99, cache hit rate,
  admission rejections, and ``p99_slo_headroom`` = SLO latency target /
  observed p99 (>= 1 means p99 is inside the committed target).

Before the timed window every distinct stds/iss key is replayed once
(untimed warm-up).  Those engines are the known-expensive slice — iss
influence scoring touches nearly every object, seconds per query — and
in steady-state serving their repeat-heavy keys live in the result
cache; the warm-up excludes their one-time cold-start from the
measurement, the same way any steady-state load bench excludes start-up
transients.  The cheap stps keys stay cold, so the window still pays
real execution costs for both the head (first touch per stps key) and
the unique tail.
* **solo** — the victim tenant's paced pattern running alone (warm
  cache), the fairness baseline.
* **quota** — an abusive tenant flooding against a clamped per-tenant
  quota while the victim repeats its solo pattern.  Reports the
  abuser's 429 count and ``victim_isolation`` =
  1.2 * solo p99 / victim p99 (>= 1 means the victim stayed within
  1.2x its solo latency).  Sub-5ms p99s are clamped to 5ms before the
  ratio: down there the numbers measure scheduler jitter, not tenant
  interference.

* **tracing** — an A/B overhead check of the tail-sampled request-trace
  store (:mod:`repro.obs.requests`): paired off/on rounds of cache-hit
  requests over one keep-alive connection with the store off vs. on
  (default tail-sampling config: spans collected per request, the
  1-in-N uniform sample exercising the record path), gated on the
  median of per-round p50 ratios so scheduler bursts — which inflate
  whole rounds, not sides — cancel; then one *slow-injected* request
  — a never-seen key sent with a known client ``traceparent`` — whose
  retention, keep reason and span tree (``serve.request`` →
  ``serve.execute`` → ``executor.query``) are recorded for the CI
  trace-smoke assertion.

The perf sentinel (:mod:`repro.obs.regress`) gates ``serve-load``
documents on ``sustained_qps`` (>= 100), ``cache_hit_rate`` (>= 0.5),
and both ratios (>= 1.0) in floor mode, with the usual 0.55x ratio rule
in matched mode.

Run::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import os
import platform
import random
import socket
import statistics
import threading
import time
from pathlib import Path

from repro.core.executor import QueryExecutor
from repro.core.processor import QueryProcessor
from repro.core.query import Variant
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.data.workload import WorkloadSpec, make_workload
from repro.obs import requests as _requests
from repro.serve.http import ServeServer
from repro.serve.quota import QuotaSpec
from repro.serve.service import QueryService, ServeConfig

#: p99s below this are clamped before fairness ratios (jitter floor).
P99_CLAMP_S = 0.005

#: The slow-injected request's client-donated trace id (W3C form).
INJECT_TRACE_ID = "feedfeedfeedfeedfeedfeedfeedfeed"

#: Paired off/on rounds in the tracing A/B phase; each round measures
#: both sides back to back so machine drift lands on both, and the
#: gate takes the median of per-round ratios.  More rounds = stabler
#: ratio (the phase is cheap: every request is a cache hit).
AB_ROUNDS = 10


def percentile(values: list[float], q: float) -> float:
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def zipf_weights(n: int, s: float) -> list[float]:
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def build_query_pool(feature_sets, args) -> list[dict]:
    """Mixed-engine pool entries: stps/stds range + iss influence.

    Each entry carries both the HTTP request ``body`` and the
    :class:`PreferenceQuery` it encodes (for direct warm-up through the
    service, bypassing HTTP).
    """
    spec = WorkloadSpec(
        n_queries=args.distinct_queries,
        k=args.k,
        radius=args.radius,
        seed=args.seed + 7,
    )
    queries = make_workload(feature_sets, spec)
    pool = []
    for i, query in enumerate(queries):
        # 50% stps / 40% stds / 10% iss — the iss slice re-targets the
        # influence variant (the only one that engine serves) and stays
        # small because each cold influence query costs seconds.
        slot = i % 10
        if slot < 5:
            algorithm, variant = "stps", Variant.RANGE
        elif slot < 9:
            algorithm, variant = "stds", Variant.RANGE
        else:
            algorithm, variant = "iss", Variant.INFLUENCE
        query = query.with_variant(variant)
        pool.append({
            "algorithm": algorithm,
            "query": query,
            "body": {
                "algorithm": algorithm,
                "k": query.k,
                "radius": query.radius,
                "lam": query.lam,
                "masks": list(query.keyword_masks),
                "variant": variant.value,
            },
        })
    return pool


def warm_expensive_keys(service, pool, workers: int) -> float:
    """Replay every distinct stds/iss key once through the service.

    Returns the wall time spent; runs before the timed window so the
    measured phases see the expensive engines' steady-state (cached)
    behavior rather than their one-time cold start.
    """
    entries = [e for e in pool if e["algorithm"] in ("stds", "iss")]
    t0 = time.perf_counter()
    lock = threading.Lock()
    cursor = iter(entries)

    def worker() -> None:
        while True:
            with lock:
                entry = next(cursor, None)
            if entry is None:
                return
            service.handle("warmup", entry["query"], entry["algorithm"])

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(max(1, workers))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return time.perf_counter() - t0


class TrafficStats:
    """Thread-safe accumulator of per-request samples."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latencies_s: list[float] = []
        self.statuses: dict[int, int] = {}
        self.cached = 0
        self.transport_errors = 0

    def record(self, status: int, latency_s: float, cached: bool) -> None:
        with self.lock:
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if status == 200:
                self.latencies_s.append(latency_s)
                if cached:
                    self.cached += 1

    def ok(self) -> int:
        return self.statuses.get(200, 0)

    def count(self, status: int) -> int:
        return self.statuses.get(status, 0)

    def errors_5xx(self) -> int:
        return sum(
            n for status, n in self.statuses.items() if status >= 500
        )


class Traffic:
    """Request recipe for one client thread (owns no shared state).

    Bodies come from the zipf-weighted ``pool``; with probability
    ``tail_p`` the body is instead a fresh never-seen key (a cheap stps
    query with a unique ``lam``), modelling the unique tail of real
    traffic so the timed window keeps executing queries even after the
    head keys are all cached.
    """

    def __init__(
        self,
        pool: list[dict],
        weights: list[float],
        tenants: list[str],
        tenant_weights: list[float] | None = None,
        tail_p: float = 0.0,
    ) -> None:
        self.pool = pool
        self.weights = weights
        self.tenants = tenants
        self.tenant_weights = tenant_weights
        self.tail_p = tail_p

    def next_request(self, rng: random.Random) -> dict:
        if self.tail_p and rng.random() < self.tail_p:
            base = dict(rng.choices(self.pool, self.weights)[0]["body"])
            base["algorithm"] = "stps"
            base["variant"] = Variant.RANGE.value
            # A unique lam makes a unique cache key without changing
            # the query's cost profile.
            base["lam"] = round(rng.random(), 9)
            body = base
        else:
            body = dict(rng.choices(self.pool, self.weights)[0]["body"])
        if self.tenant_weights is None:
            body["tenant"] = self.tenants[0]
        else:
            body["tenant"] = rng.choices(
                self.tenants, self.tenant_weights
            )[0]
        return body


class Client(threading.Thread):
    """One keep-alive connection replaying a traffic recipe.

    ``pace_s`` > 0 inserts a fixed think time between requests (the
    paced victim pattern); 0 means closed-loop as-fast-as-possible.
    """

    def __init__(
        self,
        port: int,
        traffic: Traffic,
        stats: TrafficStats,
        deadline: float,
        seed: int,
        pace_s: float = 0.0,
    ) -> None:
        super().__init__(daemon=True)
        self.port = port
        self.traffic = traffic
        self.stats = stats
        self.deadline = deadline
        self.rng = random.Random(seed)
        self.pace_s = pace_s

    def _connect(self) -> http.client.HTTPConnection:
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)
        conn.connect()
        # POSTs are two small writes (headers, body); without NODELAY
        # the second waits on the delayed ACK of the first (~40 ms).
        conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def run(self) -> None:
        conn = self._connect()
        try:
            while time.perf_counter() < self.deadline:
                payload = json.dumps(self.traffic.next_request(self.rng))
                t0 = time.perf_counter()
                try:
                    conn.request(
                        "POST", "/query", body=payload,
                        headers={"Content-Type": "application/json"},
                    )
                    resp = conn.getresponse()
                    doc = json.loads(resp.read() or b"{}")
                    status = resp.status
                except (http.client.HTTPException, OSError):
                    self.stats.transport_errors += 1
                    conn.close()
                    conn = self._connect()
                    continue
                self.stats.record(
                    status,
                    time.perf_counter() - t0,
                    bool(doc.get("cached")),
                )
                if self.pace_s:
                    time.sleep(self.pace_s)
        finally:
            conn.close()


def drive(
    port: int,
    duration_s: float,
    clients: int,
    traffic: Traffic,
    seed: int,
    pace_s: float = 0.0,
) -> tuple[TrafficStats, float]:
    """Run ``clients`` threads until the deadline; (stats, elapsed)."""
    stats = TrafficStats()
    t0 = time.perf_counter()
    threads = [
        Client(port, traffic, stats, t0 + duration_s, seed + i, pace_s)
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return stats, time.perf_counter() - t0


def tracing_phase(port: int, pool: list[dict], args) -> dict:
    """A/B trace-store overhead plus one slow-injected retained trace.

    Runs against the live server over a single keep-alive connection.
    Leaves the trace store disabled (its process-default state) when
    done, whatever happens mid-phase.
    """
    entry = next(e for e in pool if e["algorithm"] == "stps")
    body = dict(entry["body"])
    body["tenant"] = "trace-ab"
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    conn.connect()
    conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def once(payload: dict, headers: dict | None = None):
        t0 = time.perf_counter()
        conn.request(
            "POST", "/query", body=json.dumps(payload),
            headers={"Content-Type": "application/json", **(headers or {})},
        )
        resp = conn.getresponse()
        doc = json.loads(resp.read() or b"{}")
        return time.perf_counter() - t0, resp, doc

    try:
        once(body)  # warm the cache key and the connection
        # Paired off/on rounds over the cache-hit path: the cheapest
        # requests the service answers, hence the path where
        # per-request tracing overhead is proportionally largest.
        # "On" runs the store's default tail-sampling config — spans
        # are collected for every request (the tail decision needs
        # them) and the uniform 1-in-N sample exercising the record
        # path — i.e. the overhead a deployment actually pays.  The
        # gate statistic is the *median of per-round p50 ratios*: a
        # scheduler burst inflates both sides of the round it lands
        # in, and the median discards rounds it distorts anyway —
        # essential on small shared machines.
        off: list[float] = []
        on: list[float] = []
        round_ratios: list[float] = []
        for _ in range(AB_ROUNDS):
            round_p50 = {}
            for traced in (False, True):
                _requests.configure(
                    enabled_=traced,
                    max_bytes=_requests.DEFAULT_MAX_BYTES,
                    slow_threshold_s=_requests.DEFAULT_SLOW_THRESHOLD_S,
                    uniform_every=_requests.DEFAULT_UNIFORM_EVERY,
                )
                samples = []
                for _ in range(args.trace_ab_requests):
                    latency, _, _ = once(body)
                    samples.append(latency)
                round_p50[traced] = percentile(samples, 0.50)
                (on if traced else off).extend(samples)
            if round_p50[False] > 0:
                round_ratios.append(round_p50[True] / round_p50[False])
        off_p50 = percentile(off, 0.50)
        on_p50 = percentile(on, 0.50)
        overhead_ratio = (
            statistics.median(round_ratios) if round_ratios else math.nan
        )

        # Slow injection: a never-seen key (unique lam → cache miss →
        # real execution) sent with a known client traceparent.  With
        # the store's threshold at 0 tail sampling must classify it
        # "slow" and retain it with its full span tree.  One retry on a
        # fresh connection absorbs a transient client-read timeout on a
        # shared machine; the retry's key is already cached, but the
        # first attempt's trace (the miss) is what the store retained.
        _requests.configure(enabled_=True, slow_threshold_s=0.0)
        _requests.clear()
        inject = dict(entry["body"])
        inject["tenant"] = "trace-slow"
        inject["lam"] = 0.123456789
        inject_headers = {
            "traceparent": f"00-{INJECT_TRACE_ID}-00f067aa0ba902b7-01"
        }
        try:
            _, resp, doc = once(inject, headers=inject_headers)
        except (TimeoutError, OSError, http.client.HTTPException):
            conn.close()
            conn = http.client.HTTPConnection(
                "127.0.0.1", port, timeout=30
            )
            conn.connect()
            conn.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            # A fresh never-seen key: the first attempt may have
            # finished server-side and cached its result, and the
            # store returns the *newest* trace per id — the retry must
            # be a miss too, or its hit-trace (no execute spans) would
            # shadow the first attempt's complete tree.
            inject["lam"] = 0.987654321
            _, resp, doc = once(inject, headers=inject_headers)
        echoed = _requests.parse_traceparent(
            resp.headers.get("traceparent")
        )
        trace = _requests.get(INJECT_TRACE_ID)
        span_names = sorted(
            {s["name"] for s in trace.spans}
        ) if trace is not None else []
        complete_tree = {
            "serve.request", "serve.execute", "executor.query",
        } <= set(span_names)
        store_stats = _requests.stats()
    finally:
        conn.close()
        _requests.configure(
            enabled_=False,
            slow_threshold_s=_requests.DEFAULT_SLOW_THRESHOLD_S,
        )
        _requests.clear()

    return {
        "ab_requests_per_side_per_round": args.trace_ab_requests,
        "ab_rounds": AB_ROUNDS,
        "untraced_p50_ms": round(off_p50 * 1e3, 4),
        "traced_p50_ms": round(on_p50 * 1e3, 4),
        "overhead_ratio": round(overhead_ratio, 4),
        "overhead_within_budget": bool(overhead_ratio <= 1.05),
        "slow_injected": {
            "trace_id": INJECT_TRACE_ID,
            "status": resp.status,
            "trace_id_echoed": bool(
                echoed is not None and echoed[0] == INJECT_TRACE_ID
            ),
            "response_trace_id": doc.get("trace_id"),
            "retained": trace is not None,
            "keep_reason": trace.keep_reason if trace else None,
            "span_names": span_names,
            "complete_tree": complete_tree,
        },
        "store": store_stats,
    }


def bench(args) -> dict:
    objects = synthetic_objects(args.objects, seed=args.seed)
    feature_sets = synthetic_feature_sets(
        args.sets, args.features, args.vocab, seed=args.seed + 1
    )
    processor = QueryProcessor.build(objects, feature_sets, index="srt")
    pool = build_query_pool(feature_sets, args)
    weights = zipf_weights(len(pool), args.zipf_s)
    tenants = [f"tenant-{i:02d}" for i in range(args.tenants)]
    tenant_weights = zipf_weights(len(tenants), args.zipf_s)

    config = (
        ServeConfig.from_slo_file(args.slo)
        if Path(args.slo).exists() else ServeConfig()
    )
    latency_target_s = config.latency_slo_s

    executor = QueryExecutor(processor, max_workers=args.workers)
    service = QueryService(executor, config)
    server = ServeServer(service, port=0).start()
    try:
        warmup_s = warm_expensive_keys(service, pool, args.workers)

        # ------------------------------------------------------ load --
        load_traffic = Traffic(
            pool, weights, tenants, tenant_weights, tail_p=args.tail_p
        )
        load_stats, load_elapsed = drive(
            server.port, args.load_s, args.clients, load_traffic,
            seed=args.seed + 13,
        )
        ok = load_stats.ok()
        p50 = percentile(load_stats.latencies_s, 0.50)
        p99 = percentile(load_stats.latencies_s, 0.99)
        hit_rate = load_stats.cached / ok if ok else 0.0
        load_doc = {
            "warmup_s": round(warmup_s, 3),
            "duration_s": round(load_elapsed, 3),
            "requests_ok": ok,
            "sustained_qps": round(ok / load_elapsed, 1),
            "p50_ms": round(p50 * 1e3, 3),
            "p99_ms": round(p99 * 1e3, 3),
            "p99_slo_headroom": round(latency_target_s / p99, 2),
            "cache_hit_rate": round(hit_rate, 4),
            "rejections": {
                "quota": service.rejected_quota,
                "backpressure": service.rejected_backpressure,
            },
            "errors_5xx": load_stats.errors_5xx(),
            "transport_errors": load_stats.transport_errors,
        }

        # ------------------------------------------------------ solo --
        # The victim's paced pattern alone (cache is warm from the load
        # phase, as it will be in the quota phase — a fair baseline).
        victim_traffic = Traffic(pool, weights, ["victim"])
        solo_stats, _ = drive(
            server.port, args.solo_s, args.victim_clients, victim_traffic,
            seed=args.seed + 17, pace_s=args.victim_pace_s,
        )
        solo_p99 = percentile(solo_stats.latencies_s, 0.99)

        # ----------------------------------------------------- quota --
        service.quotas.set_override(
            "abuser", QuotaSpec(rate=args.abuser_rate, burst=args.abuser_rate)
        )
        abuser_traffic = Traffic(pool, weights, ["abuser"])
        quota_stats = TrafficStats()
        victim_stats = TrafficStats()
        t0 = time.perf_counter()
        deadline = t0 + args.quota_s
        threads = [
            Client(
                server.port, abuser_traffic, quota_stats, deadline,
                seed=args.seed + 19 + i,
            )
            for i in range(args.abuser_clients)
        ] + [
            Client(
                server.port, victim_traffic, victim_stats, deadline,
                seed=args.seed + 17 + i, pace_s=args.victim_pace_s,
            )
            for i in range(args.victim_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        victim_p99 = percentile(victim_stats.latencies_s, 0.99)
        isolation = (
            1.2 * max(solo_p99, P99_CLAMP_S) / max(victim_p99, P99_CLAMP_S)
        )
        quota_doc = {
            "abuser_rate_limit": args.abuser_rate,
            "abuser_requests": sum(quota_stats.statuses.values()),
            "abuser_429s": quota_stats.count(429),
            "abuser_ok": quota_stats.ok(),
            "victim_requests_ok": victim_stats.ok(),
            "victim_429s": victim_stats.count(429),
            "solo_p99_ms": round(solo_p99 * 1e3, 3),
            "victim_p99_ms": round(victim_p99 * 1e3, 3),
            "victim_isolation": round(isolation, 2),
        }
        # --------------------------------------------------- tracing --
        tracing_doc = tracing_phase(server.port, pool, args)
        serve_state = service.describe()
    finally:
        server.close()
        executor.close()

    return {
        "benchmark": "serve-load",
        "config": {
            "objects": args.objects,
            "features_per_set": args.features,
            "feature_sets": args.sets,
            "vocabulary": args.vocab,
            "distinct_queries": args.distinct_queries,
            "zipf_s": args.zipf_s,
            "tail_p": args.tail_p,
            "tenants": args.tenants,
            "clients": args.clients,
            "load_s": args.load_s,
            "solo_s": args.solo_s,
            "quota_s": args.quota_s,
            "latency_target_s": latency_target_s,
            "workers": args.workers,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "load": load_doc,
        "quota": quota_doc,
        "tracing": tracing_doc,
        "cache": serve_state["cache"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="seconds-scale run")
    parser.add_argument("--out", type=Path, default=Path("BENCH_serve.json"))
    parser.add_argument("--objects", type=int, default=20_000)
    parser.add_argument("--features", type=int, default=10_000)
    parser.add_argument("--sets", type=int, default=2)
    parser.add_argument("--vocab", type=int, default=64)
    parser.add_argument("--distinct-queries", type=int, default=200)
    parser.add_argument("--zipf-s", type=float, default=1.1)
    parser.add_argument("--tail-p", type=float, default=0.05)
    parser.add_argument("--tenants", type=int, default=20)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--radius", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--load-s", type=float, default=20.0)
    parser.add_argument("--solo-s", type=float, default=5.0)
    parser.add_argument("--quota-s", type=float, default=10.0)
    parser.add_argument("--victim-clients", type=int, default=2)
    parser.add_argument("--victim-pace-s", type=float, default=0.01)
    parser.add_argument("--abuser-clients", type=int, default=2)
    parser.add_argument("--abuser-rate", type=float, default=20.0)
    parser.add_argument(
        "--trace-ab-requests", type=int, default=50,
        help="requests per side per round in the tracing-overhead phase",
    )
    parser.add_argument("--slo", type=Path, default=Path("SLO.json"))
    args = parser.parse_args(argv)
    if args.smoke:
        args.objects = min(args.objects, 4000)
        args.features = min(args.features, 2000)
        args.distinct_queries = min(args.distinct_queries, 50)
        args.clients = min(args.clients, 4)
        args.load_s = min(args.load_s, 8.0)
        args.solo_s = min(args.solo_s, 3.0)
        args.quota_s = min(args.quota_s, 5.0)

    payload = bench(args)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    load, quota = payload["load"], payload["quota"]
    print(f"wrote {args.out}")
    print(
        f"  load : {load['sustained_qps']:.0f} qps sustained over "
        f"{load['duration_s']:.1f}s  p50 {load['p50_ms']:.2f}ms / "
        f"p99 {load['p99_ms']:.2f}ms (headroom "
        f"{load['p99_slo_headroom']:.1f}x)  cache hit rate "
        f"{load['cache_hit_rate']:.0%}  rejections {load['rejections']}  "
        f"5xx {load['errors_5xx']}"
    )
    print(
        f"  quota: abuser {quota['abuser_429s']}/{quota['abuser_requests']} "
        f"429s at {quota['abuser_rate_limit']:.0f} rps cap  victim p99 "
        f"{quota['victim_p99_ms']:.2f}ms vs solo {quota['solo_p99_ms']:.2f}ms "
        f"(isolation {quota['victim_isolation']:.2f}, >=1 passes)"
    )
    tracing = payload["tracing"]
    injected = tracing["slow_injected"]
    print(
        f"  trace: overhead {tracing['overhead_ratio']:.3f}x "
        f"(p50 {tracing['untraced_p50_ms']:.3f}ms -> "
        f"{tracing['traced_p50_ms']:.3f}ms, <=1.05 passes)  "
        f"slow-injected retained={injected['retained']} "
        f"complete_tree={injected['complete_tree']}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
