"""Figure 8 — STPS query parameters on the real-like dataset (range).

Panels: radius r (a), k (b), smoothing λ (c), queried keywords (d).
Expected shapes: cost *decreases* with larger r, grows with k, flat in λ,
near-flat in queried keywords with a cheap 1-keyword case.
"""

import pytest

from benchmarks.conftest import make_runner


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig8a:
    def test_small_radius(self, benchmark, ctx, index):
        benchmark(
            make_runner(ctx, index, dataset="real", radius=ctx.cfg.radius_sweep[0])
        )

    def test_large_radius(self, benchmark, ctx, index):
        benchmark(
            make_runner(ctx, index, dataset="real", radius=ctx.cfg.radius_sweep[-1])
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig8b:
    def test_small_k(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, dataset="real", k=ctx.cfg.k_sweep[0]))

    def test_large_k(self, benchmark, ctx, index):
        benchmark(make_runner(ctx, index, dataset="real", k=ctx.cfg.k_sweep[-1]))


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig8c:
    def test_low_lambda(self, benchmark, ctx, index):
        benchmark(
            make_runner(ctx, index, dataset="real", lam=ctx.cfg.lam_sweep[0])
        )

    def test_high_lambda(self, benchmark, ctx, index):
        benchmark(
            make_runner(ctx, index, dataset="real", lam=ctx.cfg.lam_sweep[-1])
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig8d:
    def test_one_keyword(self, benchmark, ctx, index):
        benchmark(
            make_runner(ctx, index, dataset="real", keywords_per_set=1)
        )

    def test_many_keywords(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                dataset="real",
                keywords_per_set=ctx.cfg.keywords_sweep[-1],
            )
        )
