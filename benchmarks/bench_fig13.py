"""Figure 13 — nearest-neighbor STPS scalability (synthetic).

Panels: varying |F_i| (a) and |O| (b).  The paper: the NN variant is the
costliest (Voronoi-cell computation dominates for large feature sets; its
I/O+CPU is tracked separately in the harness, the 'striped' bars).
"""

import pytest

from benchmarks.conftest import make_runner
from repro.core.query import Variant


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig13a:
    def test_default_features(self, benchmark, ctx, index):
        runner = make_runner(ctx, index, variant=Variant.NEAREST, n_queries=4)
        benchmark.pedantic(runner, rounds=3, iterations=1)

    def test_max_features(self, benchmark, ctx, index):
        runner = make_runner(
            ctx,
            index,
            variant=Variant.NEAREST,
            n_feat=ctx.cfg.cardinality_sweep[-1],
            n_queries=4,
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig13b:
    def test_max_objects(self, benchmark, ctx, index):
        runner = make_runner(
            ctx,
            index,
            variant=Variant.NEAREST,
            n_obj=ctx.cfg.cardinality_sweep[-1],
            n_queries=4,
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)
