"""Shard-scaling: partitioned engine vs the single-index baseline.

Measures :class:`~repro.shard.ShardedQueryProcessor` against one
monolithic :class:`~repro.core.processor.QueryProcessor` over the same
clustered datasets and the same workload, at 1/2/4/8 shards:

* **cold** — every cache (page buffer, decoded-node cache) is dropped
  before *each* query, off the clock.  This is the per-invocation
  serving cost and the headline number: the issue's acceptance bar is
  >= 2x cold speedup at 4 shards.
* **warm** — one warm-up pass, then a timed pass inside the same
  session, so buffers stay hot.

The cold win is *algorithmic*, not parallel: this container exposes a
single CPU, so the fan-out runs serially (``max_workers`` defaults to
the CPU count).  STPS cost is dominated by the cross-feature-set
combination stream, whose churn grows super-linearly with the number
of feature objects per index; splitting the space into S shards with an
r-halo makes each per-shard stream drastically cheaper than one global
stream, and the shared top-k floor lets later shards cut off early (or
be pruned outright when their aggregate bound cannot beat the floor).

Writes ``BENCH_shards.json`` (or ``--out``) and prints a summary.
``--smoke`` runs a seconds-scale configuration for CI.

Run::

    PYTHONPATH=src python benchmarks/bench_shards.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

from repro.core.processor import QueryProcessor
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.data.workload import WorkloadSpec, make_workload
from repro.shard import ShardedQueryProcessor
from repro.shard.sharded_processor import shard_queries_metric


def build_datasets(args):
    objects = synthetic_objects(args.objects, seed=args.seed)
    feature_sets = synthetic_feature_sets(
        args.sets, args.features, args.vocab, seed=args.seed + 1
    )
    return objects, feature_sets


def run_cold(processor, workload, algorithm: str) -> float:
    """Timed serial pass with every cache dropped before each query.

    The ``clear_buffers`` calls happen off the clock — only query
    execution is timed, exactly as in ``bench_executor.py``.
    """
    total = 0.0
    for query in workload:
        processor.clear_buffers()
        t0 = time.perf_counter()
        processor.query(query, algorithm=algorithm)
        total += time.perf_counter() - t0
    return total


def run_warm(processor, workload, algorithm: str) -> float:
    """One warm-up pass, then a timed pass with caches persisting."""
    processor.clear_buffers()
    for query in workload:
        processor.query(query, algorithm=algorithm)  # warm-up
    t0 = time.perf_counter()
    for query in workload:
        processor.query(query, algorithm=algorithm)
    return time.perf_counter() - t0


def shard_outcomes() -> dict[str, int]:
    """Aggregate the ``repro_shard_queries`` counter by outcome."""
    outcomes: dict[str, int] = {}
    family = shard_queries_metric()
    for labelvalues, child in family.series():
        outcome = dict(zip(family.labelnames, labelvalues))[
            "outcome"
        ]
        outcomes[outcome] = outcomes.get(outcome, 0) + int(child.value)
    return outcomes


def bench(args) -> dict:
    objects, feature_sets = build_datasets(args)
    spec = WorkloadSpec(
        n_queries=args.queries,
        k=args.k,
        radius=args.radius,
        lam=args.lam,
        seed=args.seed + 7,
    )
    workload = make_workload(feature_sets, spec)

    baseline = QueryProcessor.build(objects, feature_sets, index="srt")
    results = []
    for algorithm in args.algorithms:
        base_cold = run_cold(baseline, workload, algorithm)
        base_warm = run_warm(baseline, workload, algorithm)
        rows = []
        for shards in args.shards:
            t0 = time.perf_counter()
            with ShardedQueryProcessor.build(
                objects,
                feature_sets,
                shards=shards,
                radius=args.halo,
                method=args.method,
                max_workers=args.workers,
            ) as sharded:
                build_s = time.perf_counter() - t0
                sharded.reset_stats()
                cold_s = run_cold(sharded, workload, algorithm)
                warm_s = run_warm(sharded, workload, algorithm)
                outcomes = shard_outcomes()
                rows.append(
                    {
                        "shards": sharded.shard_count,
                        "build_s": round(build_s, 4),
                        "cold_s": round(cold_s, 4),
                        "warm_s": round(warm_s, 4),
                        "speedup_cold": round(cold_s and base_cold / cold_s, 2),
                        "speedup_warm": round(warm_s and base_warm / warm_s, 2),
                        "shard_queries_executed": outcomes.get("executed", 0),
                        "shard_queries_pruned": outcomes.get("pruned", 0),
                    }
                )
        by_count = {row["shards"]: row for row in rows}
        results.append(
            {
                "algorithm": algorithm,
                "queries": len(workload),
                "baseline_cold_s": round(base_cold, 4),
                "baseline_warm_s": round(base_warm, 4),
                "shards": rows,
                "speedup_cold_s4": by_count.get(4, {}).get(
                    "speedup_cold", 0.0
                ),
            }
        )

    process_mode = None
    if not args.skip_process:
        process_mode = bench_process_mode(
            args, objects, feature_sets, workload, results[0]
        )

    return {
        "benchmark": "shard-scaling",
        "config": {
            "objects": args.objects,
            "features_per_set": args.features,
            "feature_sets": args.sets,
            "vocabulary": args.vocab,
            "queries": args.queries,
            "k": args.k,
            "radius": args.radius,
            "lam": args.lam,
            "halo_radius": args.halo,
            "method": args.method,
            "workers": args.workers,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "results": results,
        # Headline: the engine-default algorithm (STPS) — the expensive
        # cold path sharding exists to amortize.  STDS rows stay in
        # ``results`` for honest comparison: its cold cost is already
        # ~50x lower and sharding is roughly neutral for it.
        "headline_algorithm": args.algorithms[0],
        "speedup_cold_s4": results[0]["speedup_cold_s4"],
        # Process fan-out vs thread fan-out, same workload.  Honest
        # caveat: on a single-CPU runner the process pass pays dispatch
        # overhead with no cores to spread across, so speedup_vs_threads
        # < 1 there; the sentinel only gates it on multi-core machines.
        "process_mode": process_mode,
    }


def bench_process_mode(
    args, objects, feature_sets, workload, thread_result
) -> dict:
    """Process fan-out over shared-memory pages, headline algorithm only.

    Runs the exact workload of the thread-mode pass at every shard count
    and reports speedups both against the unsharded baseline and against
    the matching thread-mode row (``speedup_vs_threads_*``) — the number
    that isolates the fan-out substrate from the sharding algorithmics.
    """
    algorithm = args.algorithms[0]
    thread_rows = {row["shards"]: row for row in thread_result["shards"]}
    base_cold = thread_result["baseline_cold_s"]
    base_warm = thread_result["baseline_warm_s"]
    rows = []
    for shards in args.shards:
        t0 = time.perf_counter()
        with ShardedQueryProcessor.build(
            objects,
            feature_sets,
            shards=shards,
            radius=args.halo,
            method=args.method,
            max_workers=args.workers,
            fanout="processes",
            start_method=args.start_method,
        ) as sharded:
            build_s = time.perf_counter() - t0
            sharded.reset_stats()
            cold_s = run_cold(sharded, workload, algorithm)
            warm_s = run_warm(sharded, workload, algorithm)
            outcomes = shard_outcomes()
            thread_row = thread_rows.get(sharded.shard_count, {})
            t_cold = thread_row.get("cold_s", 0.0)
            t_warm = thread_row.get("warm_s", 0.0)
            rows.append(
                {
                    "shards": sharded.shard_count,
                    "build_s": round(build_s, 4),
                    "cold_s": round(cold_s, 4),
                    "warm_s": round(warm_s, 4),
                    "speedup_cold": round(cold_s and base_cold / cold_s, 2),
                    "speedup_warm": round(warm_s and base_warm / warm_s, 2),
                    "speedup_vs_threads_cold": round(
                        cold_s and t_cold / cold_s, 2
                    ),
                    "speedup_vs_threads_warm": round(
                        warm_s and t_warm / warm_s, 2
                    ),
                    "shard_queries_executed": outcomes.get("executed", 0),
                    "shard_queries_pruned": outcomes.get("pruned", 0),
                }
            )
    by_count = {row["shards"]: row for row in rows}
    return {
        "algorithm": algorithm,
        "start_method": args.start_method or "default",
        "rows": rows,
        "speedup_cold_s4": by_count.get(4, {}).get("speedup_cold", 0.0),
        "cold_speedup_vs_threads_s4": by_count.get(4, {}).get(
            "speedup_vs_threads_cold", 0.0
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="seconds-scale run")
    parser.add_argument("--out", type=Path, default=Path("BENCH_shards.json"))
    parser.add_argument("--objects", type=int, default=4000)
    parser.add_argument("--features", type=int, default=2500)
    parser.add_argument("--sets", type=int, default=3)
    parser.add_argument("--vocab", type=int, default=64)
    parser.add_argument("--queries", type=int, default=6)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--radius", type=float, default=0.01)
    parser.add_argument("--lam", type=float, default=0.5)
    parser.add_argument("--halo", type=float, default=0.02)
    parser.add_argument("--method", default="kd", choices=["grid", "kd"])
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4, 8]
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="fan-out workers per query (default: min(shards, cpus))",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--algorithms", nargs="+", default=["stps", "stds"],
        choices=["stps", "stds"],
    )
    parser.add_argument(
        "--skip-process", action="store_true",
        help="skip the process fan-out pass",
    )
    parser.add_argument(
        "--start-method", default=None,
        choices=["fork", "spawn", "forkserver"],
        help="multiprocessing start method for the process pass",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.objects = min(args.objects, 1200)
        args.features = min(args.features, 700)
        args.queries = min(args.queries, 3)
        args.shards = [s for s in args.shards if s <= 4]

    payload = bench(args)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {args.out}")
    for row in payload["results"]:
        print(
            f"  {row['algorithm']:>4}: {row['queries']} queries  "
            f"baseline cold {row['baseline_cold_s']:.2f}s / "
            f"warm {row['baseline_warm_s']:.2f}s"
        )
        for shard_row in row["shards"]:
            print(
                f"        S{shard_row['shards']}: "
                f"cold {shard_row['cold_s']:.2f}s "
                f"({shard_row['speedup_cold']:.2f}x)  "
                f"warm {shard_row['warm_s']:.2f}s "
                f"({shard_row['speedup_warm']:.2f}x)  "
                f"executed {shard_row['shard_queries_executed']} / "
                f"pruned {shard_row['shard_queries_pruned']}  "
                f"build {shard_row['build_s']:.2f}s"
            )
    process_mode = payload.get("process_mode")
    if process_mode:
        print(
            f"  process fan-out ({process_mode['algorithm']}, "
            f"start={process_mode['start_method']}):"
        )
        for row in process_mode["rows"]:
            print(
                f"        S{row['shards']}: cold {row['cold_s']:.2f}s "
                f"({row['speedup_cold']:.2f}x vs baseline, "
                f"{row['speedup_vs_threads_cold']:.2f}x vs threads)  "
                f"warm {row['warm_s']:.2f}s "
                f"({row['speedup_vs_threads_warm']:.2f}x vs threads)"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
