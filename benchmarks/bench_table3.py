"""Table 3 — STDS execution time on the synthetic dataset.

The paper's Table 3 reports STDS (the baseline scan) per-query times for
both indexes while varying |F_i|, |O|, c and the vocabulary; the point of
the table is that STDS is orders of magnitude slower than STPS
(cf. bench_fig7) and grows with every parameter.
"""

import pytest

from benchmarks.conftest import make_runner


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestTable3:
    def test_feature_cardinality(self, benchmark, ctx, index):
        """Row 1: varying |F_i| (default point)."""
        runner = make_runner(ctx, index, algorithm="stds", n_queries=3)
        benchmark.pedantic(runner, rounds=3, iterations=1)

    def test_larger_feature_set(self, benchmark, ctx, index):
        """Row 1: largest |F_i| of the sweep."""
        runner = make_runner(
            ctx,
            index,
            algorithm="stds",
            n_queries=3,
            n_feat=ctx.cfg.cardinality_sweep[-1],
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)

    def test_larger_object_set(self, benchmark, ctx, index):
        """Row 2: largest |O| of the sweep (STDS is linear in |O|)."""
        runner = make_runner(
            ctx,
            index,
            algorithm="stds",
            n_queries=3,
            n_obj=ctx.cfg.cardinality_sweep[-1],
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)

    def test_more_feature_sets(self, benchmark, ctx, index):
        """Row 3: larger c."""
        runner = make_runner(
            ctx,
            index,
            algorithm="stds",
            n_queries=3,
            c=ctx.cfg.c_sweep[-1],
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)

    def test_larger_vocabulary(self, benchmark, ctx, index):
        """Row 4: largest indexed-keywords value."""
        runner = make_runner(
            ctx,
            index,
            algorithm="stds",
            n_queries=3,
            vocab=ctx.cfg.vocab_sweep[-1],
        )
        benchmark.pedantic(runner, rounds=3, iterations=1)
