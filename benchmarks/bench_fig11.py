"""Figure 11 — influence score on the real-like dataset.

Panels: varying k (a) and queried keywords (b).  The paper's observation:
large k gets *cheaper* relative to the range score because high-score
combinations cover many data objects under the influence decay.
"""

import pytest

from benchmarks.conftest import make_runner
from repro.core.query import Variant


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig11a:
    def test_small_k(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                dataset="real",
                variant=Variant.INFLUENCE,
                k=ctx.cfg.k_sweep[0],
            )
        )

    def test_large_k(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                dataset="real",
                variant=Variant.INFLUENCE,
                k=ctx.cfg.k_sweep[-1],
            )
        )


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestFig11b:
    def test_one_keyword(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                dataset="real",
                variant=Variant.INFLUENCE,
                keywords_per_set=1,
            )
        )

    def test_many_keywords(self, benchmark, ctx, index):
        benchmark(
            make_runner(
                ctx,
                index,
                dataset="real",
                variant=Variant.INFLUENCE,
                keywords_per_set=ctx.cfg.keywords_sweep[-1],
            )
        )
