"""Ablation benchmarks for the design choices DESIGN.md calls out.

* pulling strategy: prioritized (Definition 5) vs round-robin;
* index build method: bulk (Hilbert packing) vs incremental insert;
* substrate: index construction cost itself (SRT vs IR² builds).
"""

import itertools

import pytest

from benchmarks.conftest import make_runner
from repro.core.combinations import PULL_PRIORITIZED, PULL_ROUND_ROBIN
from repro.core.processor import QueryProcessor
from repro.core.stps import stps


@pytest.mark.parametrize("pulling", [PULL_PRIORITIZED, PULL_ROUND_ROBIN])
class TestPullingStrategy:
    def test_stps_range(self, benchmark, ctx, pulling):
        feature_sets = ctx.feature_sets()
        processor = ctx.synthetic_processor("srt")
        queries = ctx.workload(feature_sets, n_queries=8)
        processor.query(queries[0])  # warm buffers
        cycle = itertools.cycle(queries)

        def run():
            return stps(
                processor.object_tree,
                processor.feature_trees,
                next(cycle),
                pulling=pulling,
            )

        benchmark(run)


@pytest.mark.parametrize("method", ["bulk", "insert"])
class TestBuildMethod:
    def test_build_cost(self, benchmark, ctx, method):
        objects = ctx.objects()
        feature_sets = ctx.feature_sets()

        def build():
            return QueryProcessor.build(
                objects, feature_sets, index="srt", method=method
            )

        benchmark.pedantic(build, rounds=2, iterations=1)

    def test_query_on_built_index(self, benchmark, ctx, method):
        processor = QueryProcessor.build(
            ctx.objects(), ctx.feature_sets(), index="srt", method=method
        )
        queries = ctx.workload(ctx.feature_sets(), n_queries=8)
        processor.query(queries[0])
        cycle = itertools.cycle(queries)
        benchmark(lambda: processor.query(next(cycle)))


@pytest.mark.parametrize("index", ["srt", "ir2"])
class TestIndexBuildCost:
    def test_feature_index_build(self, benchmark, ctx, index):
        feature_sets = ctx.feature_sets()

        def build():
            return QueryProcessor.build(
                ctx.objects(), feature_sets, index=index
            )

        benchmark.pedantic(build, rounds=2, iterations=1)
