"""Shared fixtures for the pytest-benchmark suite.

Each ``bench_*.py`` file regenerates the timing of one table/figure of
the paper at *quick* scale (set ``REPRO_BENCH_SCALE=default`` for the
10x larger grid; the full text harness lives in ``repro.bench`` /
``repro-bench``).  Index builds are cached per session; the benchmarked
callable is a single query execution.
"""

from __future__ import annotations

import itertools

import pytest

from repro.bench.config import BenchConfig
from repro.bench.context import BenchContext
from repro.core.query import Variant


@pytest.fixture(scope="session")
def ctx() -> BenchContext:
    import os

    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    cfg = {
        "quick": BenchConfig.quick,
        "default": BenchConfig.default,
        "paper": BenchConfig.paper,
    }[scale]()
    return BenchContext(cfg)


class QueryRunner:
    """Round-robins a workload through a processor (one call = one query)."""

    def __init__(self, processor, queries, algorithm="stps"):
        self.processor = processor
        self.algorithm = algorithm
        self._cycle = itertools.cycle(queries)
        # Warm the buffer pool once so timings reflect steady state.
        self.processor.query(queries[0], algorithm=algorithm)

    def __call__(self):
        return self.processor.query(next(self._cycle), algorithm=self.algorithm)


def make_runner(
    ctx: BenchContext,
    index: str,
    algorithm: str = "stps",
    variant: Variant = Variant.RANGE,
    dataset: str = "synthetic",
    n_queries: int = 8,
    **workload_kw,
) -> QueryRunner:
    if dataset == "real":
        feature_sets = ctx.real().feature_sets
        processor = ctx.real_processor(index)
    else:
        build_kw = {
            key: workload_kw.pop(key)
            for key in ("c", "n_obj", "n_feat", "vocab")
            if key in workload_kw
        }
        feature_sets = ctx.feature_sets(
            c=build_kw.get("c"),
            n=build_kw.get("n_feat"),
            vocab=build_kw.get("vocab"),
        )
        processor = ctx.synthetic_processor(index, **build_kw)
    queries = ctx.workload(
        feature_sets, variant=variant, n_queries=n_queries, **workload_kw
    )
    return QueryRunner(processor, queries, algorithm)
