"""Telemetry overhead A/B: what the observability layer costs.

Times the same warm serial query workload under three telemetry
configurations and reports the overhead of each against the first:

* **off** — everything disabled: no exemplars, no flight recorder, no
  resource sampler, no profiler.  This is the default production hot
  path and the baseline the other modes are measured against.  (That
  the *disabled* path itself stayed flat across PRs is guarded
  separately: the regress sentinel compares ``BENCH_executor.json``
  runs, where any hot-path tax would show up as lost speedup.)
* **light** — exemplars + the background resource sampler, the
  recommended always-on serving configuration.  Budget: <= 5%.
* **full** — light plus a record-everything flight recorder and the
  continuous sampling profiler, the debugging configuration.  No hard
  budget; reported for scale.

Modes are interleaved across trials (off/light/full, off/light/full,
...) so clock drift and thermal effects hit all three equally, and the
per-mode *minimum* across trials is used — the minimum is the least
noisy estimator for a fixed workload.  Writes ``BENCH_telemetry.json``
(or ``--out``).  ``--check`` exits non-zero when the light mode blows
its budget.

Run::

    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.core.processor import QueryProcessor
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.data.workload import WorkloadSpec, make_workload
from repro.obs import flight, metrics, profiler
from repro.obs.resources import ResourceSampler
from repro.obs.timeseries import TimeSeriesRing

LIGHT_BUDGET_PCT = 5.0


def build(args):
    objects = synthetic_objects(args.objects, seed=args.seed)
    feature_sets = synthetic_feature_sets(
        args.sets, args.features, args.vocab, seed=args.seed + 1
    )
    processor = QueryProcessor.build(objects, feature_sets, index="srt")
    spec = WorkloadSpec(
        n_queries=args.queries, k=args.k, radius=args.radius,
        seed=args.seed + 7,
    )
    workload = make_workload(feature_sets, spec) * args.repeats
    return processor, workload


def run_workload(processor, workload, algorithm: str) -> float:
    t0 = time.perf_counter()
    for query in workload:
        processor.query(query, algorithm=algorithm)
    return time.perf_counter() - t0


class _Mode:
    """Telemetry configuration applied around one timed pass."""

    def __init__(self, name: str, sample_interval_s: float):
        self.name = name
        self.sample_interval_s = sample_interval_s
        self._sampler = None

    def __enter__(self):
        if self.name == "off":
            return self
        metrics.set_exemplars(True)
        ring = TimeSeriesRing(capacity=600)
        self._sampler = ResourceSampler(
            ring, interval_s=self.sample_interval_s
        )
        self._sampler.start()
        if self.name == "full":
            flight.configure(enabled_=True, latency_threshold_s=0.0)
            profiler.install(interval_s=0.01)
        return self

    def __exit__(self, *exc):
        if self.name == "off":
            return False
        if self.name == "full":
            profiler.uninstall()
            flight.configure(enabled_=False)
            flight.clear()
        self._sampler.stop()
        metrics.set_exemplars(False)
        return False


def bench(args) -> dict:
    processor, workload = build(args)
    modes = ["off", "light", "full"]
    timings: dict[str, list[float]] = {m: [] for m in modes}

    # Warm the caches off the clock so the first timed mode isn't
    # penalized for page faults the others never see.
    run_workload(processor, workload, args.algorithm)

    for _ in range(args.trials):
        for name in modes:
            with _Mode(name, args.sample_interval):
                timings[name].append(
                    run_workload(processor, workload, args.algorithm)
                )

    off_s = min(timings["off"])
    results = []
    for name in modes:
        best = min(timings[name])
        overhead_pct = (best / off_s - 1.0) * 100.0 if off_s > 0 else 0.0
        results.append(
            {
                "mode": name,
                "wall_s": round(best, 4),
                "wall_s_all_trials": [round(t, 4) for t in timings[name]],
                "throughput_qps": round(len(workload) / best, 1),
                "overhead_pct": round(overhead_pct, 2),
            }
        )

    light = next(r for r in results if r["mode"] == "light")
    return {
        "benchmark": "telemetry-overhead",
        "config": {
            "objects": args.objects,
            "features_per_set": args.features,
            "feature_sets": args.sets,
            "vocabulary": args.vocab,
            "queries": len(workload),
            "trials": args.trials,
            "algorithm": args.algorithm,
            "sample_interval_s": args.sample_interval,
            "python": platform.python_version(),
        },
        "results": results,
        "light_overhead_pct": light["overhead_pct"],
        "light_budget_pct": LIGHT_BUDGET_PCT,
        "light_within_budget": light["overhead_pct"] <= LIGHT_BUDGET_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="seconds-scale run")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when light mode exceeds its budget")
    parser.add_argument("--out", type=Path, default=Path("BENCH_telemetry.json"))
    parser.add_argument("--objects", type=int, default=8000)
    parser.add_argument("--features", type=int, default=4000)
    parser.add_argument("--sets", type=int, default=2)
    parser.add_argument("--vocab", type=int, default=64)
    parser.add_argument("--queries", type=int, default=10, help="distinct queries")
    parser.add_argument("--repeats", type=int, default=6)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--radius", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--sample-interval", type=float, default=0.25)
    parser.add_argument("--algorithm", default="stps", choices=["stps", "stds"])
    args = parser.parse_args(argv)
    if args.smoke:
        args.objects = min(args.objects, 3000)
        args.features = min(args.features, 1500)
        args.queries = min(args.queries, 6)
        args.repeats = min(args.repeats, 4)
        args.trials = min(args.trials, 3)

    payload = bench(args)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {args.out}")
    for row in payload["results"]:
        print(
            f"  {row['mode']:>5}: {row['wall_s']:.3f}s  "
            f"{row['throughput_qps']:.0f} q/s  "
            f"overhead {row['overhead_pct']:+.2f}%"
        )
    verdict = "within" if payload["light_within_budget"] else "OVER"
    print(
        f"  light mode {verdict} budget "
        f"({payload['light_overhead_pct']:+.2f}% vs "
        f"{payload['light_budget_pct']:.1f}% allowed)"
    )
    if args.check and not payload["light_within_budget"]:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
