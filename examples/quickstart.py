#!/usr/bin/env python3
"""Quickstart: the paper's motivating example.

A tourist looks for "hotels that have nearby a highly rated Italian
restaurant that serves pizza and a good coffeehouse that serves espresso
and muffins" (Section 1 / Figure 1 of the paper).

Run:  python examples/quickstart.py
"""

from repro import (
    DataObject,
    FeatureDataset,
    FeatureObject,
    ObjectDataset,
    PreferenceQuery,
    QueryProcessor,
    Vocabulary,
)

# ----------------------------------------------------------------------
# The feature objects of Figures 2 and 3, locations scaled into [0, 1].
# ----------------------------------------------------------------------
vocab = Vocabulary(
    [
        "chinese", "asian", "greek", "mediterranean", "italian", "spanish",
        "european", "buffet", "pizza", "sandwiches", "subs", "seafood",
        "american", "coffee", "tea", "bistro", "cake", "bread", "pastries",
        "cappuccino", "toast", "decaf", "donuts", "iced-coffee", "muffins",
        "croissants", "espresso", "macchiato",
    ]
)


def restaurant(fid, name, rating, x, y, *cuisine):
    return FeatureObject(
        fid, x / 10, y / 10, rating, vocab.encode(cuisine), name
    )


restaurants = FeatureDataset(
    [
        restaurant(1, "Beijing Restaurant", 0.6, 1, 2, "chinese", "asian"),
        restaurant(2, "Daphne's Restaurant", 0.5, 4, 1, "greek", "mediterranean"),
        restaurant(3, "Espanol Restaurant", 0.8, 5, 8, "italian", "spanish", "european"),
        restaurant(4, "Golden Wok", 0.8, 2, 3, "chinese", "buffet"),
        restaurant(5, "John's Pizza Plaza", 0.9, 8, 4, "pizza", "sandwiches", "subs"),
        restaurant(6, "Ontario's Pizza", 0.8, 7, 6, "pizza", "italian"),
        restaurant(7, "Oyster House", 0.8, 6, 10, "seafood", "mediterranean"),
        restaurant(8, "Small Bistro", 1.0, 3, 7, "american", "coffee", "tea", "bistro"),
    ],
    vocab,
    "restaurants",
)

coffeehouses = FeatureDataset(
    [
        restaurant(1, "Bakery & Cafe", 0.6, 4, 1, "cake", "bread", "pastries"),
        restaurant(2, "Coffee House", 0.5, 4, 7, "cappuccino", "toast", "decaf"),
        restaurant(3, "Coffe Time", 0.8, 3, 10, "cake", "toast", "donuts"),
        restaurant(4, "Cafe Ole", 0.6, 6, 2, "cappuccino", "iced-coffee", "tea"),
        restaurant(5, "Royal Coffe Shop", 0.9, 5, 5, "muffins", "croissants", "espresso"),
        restaurant(6, "Mocha Coffe House", 1.0, 10, 3, "macchiato", "espresso", "decaf"),
        restaurant(7, "The Terrace", 0.7, 6, 9, "muffins", "pastries", "espresso"),
        restaurant(8, "Espresso Bar", 0.4, 7, 6, "croissants", "decaf", "tea"),
    ],
    vocab,
    "coffeehouses",
)

# Ten hotels; p6, p9, p10 sit between Ontario's Pizza and Royal Coffe Shop
# (the setting of Figure 6).
hotels = ObjectDataset(
    [
        DataObject(1, 0.10, 0.90, "Hotel p1"),
        DataObject(2, 0.95, 0.10, "Hotel p2"),
        DataObject(3, 0.15, 0.15, "Hotel p3"),
        DataObject(4, 0.90, 0.90, "Hotel p4"),
        DataObject(5, 0.30, 0.55, "Hotel p5"),
        DataObject(6, 0.55, 0.55, "Hotel p6"),
        DataObject(7, 0.85, 0.25, "Hotel p7"),
        DataObject(8, 0.20, 0.75, "Hotel p8"),
        DataObject(9, 0.62, 0.48, "Hotel p9"),
        DataObject(10, 0.60, 0.52, "Hotel p10"),
    ]
)


def main() -> None:
    # Build the SRT-index (the paper's index) over both feature sets and
    # an R-tree over the hotels.
    processor = QueryProcessor.build(hotels, [restaurants, coffeehouses])

    # "k=3 hotels with, within r=0.35, a highly rated Italian restaurant
    # that serves pizza AND a good coffeehouse with espresso & muffins."
    query = PreferenceQuery.from_terms(
        k=3,
        radius=0.35,
        lam=0.5,
        keywords=[["italian", "pizza"], ["espresso", "muffins"]],
        feature_sets=[restaurants, coffeehouses],
    )

    result = processor.query(query)  # STPS by default

    print("Top hotels for the tourist of Section 1:")
    for rank, item in enumerate(result.items, start=1):
        hotel = hotels.get(item.oid)
        print(f"  {rank}. {hotel.name:10s}  score={item.score:.4f}")
    print()
    print(
        f"(answered with {result.stats.combinations} feature combination(s),"
        f" {result.stats.features_pulled} features pulled,"
        f" {result.stats.io_reads} physical page reads)"
    )
    # The paper's expected answer: p6, p9, p10 with score 1.6833.
    assert sorted(result.oids) == [6, 9, 10]
    assert all(abs(s - 1.68333) < 1e-3 for s in result.scores)
    print("Matches the worked example of Section 6.4 (p6, p9, p10).")


if __name__ == "__main__":
    main()
