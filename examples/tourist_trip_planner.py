#!/usr/bin/env python3
"""Tourist trip planner on a realistic city-scale dataset.

Generates the factual-like real-world bundle (hotels, restaurants,
coffeehouses across 13 state clusters — the substitute for the paper's
factual.com crawl), then answers preference queries with both algorithms
(STPS vs STDS) and both indexes (SRT vs IR²), reporting the cost gap the
paper's evaluation demonstrates.

Run:  python examples/tourist_trip_planner.py
"""

import time

from repro import PreferenceQuery, QueryProcessor
from repro.data import real_world


def run_query(processor, query, algorithm):
    t0 = time.perf_counter()
    result = processor.query(query, algorithm=algorithm)
    wall_ms = (time.perf_counter() - t0) * 1e3
    return result, wall_ms


def main() -> None:
    print("Generating real-like dataset (13 states, hotels+restaurants+cafes)...")
    data = real_world(scale=0.05, seed=11)
    print(
        f"  {len(data.hotels)} hotels, {len(data.restaurants)} restaurants, "
        f"{len(data.coffeehouses)} coffeehouses, "
        f"{data.restaurants.vocabulary.size}-term cuisine vocabulary"
    )

    processors = {}
    for index in ("srt", "ir2"):
        t0 = time.perf_counter()
        processors[index] = QueryProcessor.build(
            data.hotels, data.feature_sets, index=index
        )
        print(f"  built {index.upper()} indexes in {time.perf_counter()-t0:.2f}s")

    query = PreferenceQuery.from_terms(
        k=5,
        radius=0.03,
        lam=0.5,
        keywords=[["italian", "pizza", "pasta"], ["espresso", "muffins"]],
        feature_sets=data.feature_sets,
    )

    print(
        "\nQuery: top-5 hotels with a great Italian/pizza/pasta restaurant"
        " AND a good espresso+muffins cafe within r=0.03\n"
    )

    reference_scores = None
    for index, processor in processors.items():
        for algorithm in ("stps", "stds"):
            result, wall_ms = run_query(processor, query, algorithm)
            stats = result.stats
            print(
                f"  {algorithm.upper():4s} on {index.upper():3s}: "
                f"cpu {wall_ms:8.1f}ms + simulated io {stats.io_time_s*1e3:8.1f}ms "
                f"({stats.io_reads} physical reads)"
            )
            if reference_scores is None:
                reference_scores = result.scores
            else:
                assert all(
                    abs(a - b) < 1e-9
                    for a, b in zip(result.scores, reference_scores)
                ), "algorithms disagree!"

    print("\nAll four answer sets agree. Winning hotels (STPS on SRT):")
    result, _ = run_query(processors["srt"], query, "stps")
    for rank, item in enumerate(result.items, start=1):
        hotel = data.hotels.get(item.oid)
        print(
            f"  {rank}. {hotel.name:24s} at ({item.x:.3f}, {item.y:.3f})"
            f"  score={item.score:.4f}"
        )


if __name__ == "__main__":
    main()
