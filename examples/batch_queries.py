#!/usr/bin/env python3
"""Batch query execution: the hot path for repeated-query workloads.

Demonstrates the three layers this library stacks above the serial
:meth:`QueryProcessor.query` call for serving-style workloads where the
same queries arrive again and again:

1. the decoded-node cache (warm after the first pass — traversals stop
   paying the page-decode cost),
2. vectorized leaf scoring (numpy fast path, scalar fallback otherwise),
3. the :class:`~repro.core.executor.QueryExecutor` — a shared thread
   pool with batch deduplication: identical queries in a batch execute
   once and share their immutable result.

Run:  python examples/batch_queries.py
"""

import random
import time

from repro.core.executor import QueryExecutor
from repro.core.processor import QueryProcessor
from repro.data.synthetic import (
    make_vocabulary,
    synthetic_feature_sets,
    synthetic_objects,
)
from repro.data.workload import WorkloadSpec, make_workload


def main() -> None:
    # ------------------------------------------------------------------
    # A small synthetic world: 3000 hotels, 2 feature sets of 1500 each.
    # ------------------------------------------------------------------
    vocab = make_vocabulary(64)
    objects = synthetic_objects(3000, seed=7)
    feature_sets = synthetic_feature_sets(2, 1500, vocab, seed=8)
    processor = QueryProcessor.build(objects, feature_sets, index="srt")

    # A serving-style workload: 8 distinct queries, each arriving 5x.
    spec = WorkloadSpec(n_queries=8, k=5, radius=0.03, seed=9)
    distinct = make_workload(feature_sets, spec)
    workload = distinct * 5
    random.Random(10).shuffle(workload)

    # ------------------------------------------------------------------
    # One-shot convenience: results come back in input order.
    # ------------------------------------------------------------------
    results = processor.query_many(workload, max_workers=4)
    print(f"query_many answered {len(results)} queries")

    # ------------------------------------------------------------------
    # Reusable executor + workload-level accounting.
    # ------------------------------------------------------------------
    with QueryExecutor(processor, max_workers=4) as executor:
        executor.query_many(distinct)  # warm the decoded-node cache
        report = executor.run(workload)
        print(
            f"warm batch: {report.queries} queries in {report.wall_s:.3f}s "
            f"({report.throughput_qps:.0f} q/s, node-cache hit rate "
            f"{report.node_cache_hit_rate:.0%})"
        )

        # Batch dedup (on by default): the 5 copies of each distinct
        # query share one execution and the very same result object.
        first = workload.index(workload[-1])
        assert report.results[-1] is report.results[first]

        # ...and per-position answers are identical to a serial run.
        t0 = time.perf_counter()
        serial = [processor.query(q) for q in workload]
        serial_s = time.perf_counter() - t0
        for a, b in zip(serial, report.results):
            assert a.oids == b.oids and a.scores == b.scores
        print(
            f"serial loop: {serial_s:.3f}s -> batch identical answers "
            f"{serial_s / report.wall_s:.1f}x faster"
        )
    print("batch results match the serial run exactly")


if __name__ == "__main__":
    main()
