#!/usr/bin/env python3
"""Tracing a query: capture a Perfetto-loadable phase timeline.

Runs one STPS and one STDS query with the span tracer on
(:mod:`repro.obs.tracing`) and writes a Chrome trace-event JSON — open
it in https://ui.perfetto.dev or ``chrome://tracing`` to see where each
query spends its time:

* STPS: ``stps.feature_pull`` (Algorithm 3 stream pulls),
  ``stps.combination_assembly`` / ``stps.threshold_update``
  (Algorithm 4), ``stps.get_data_objects`` (range retrievals);
* STDS: ``stds.scan_objects`` and per-chunk ``stds.chunk_scan`` /
  ``stds.threshold_fold`` (the batched Algorithm 2);
* both: ``rtree.node_expand`` spans for every cold node decode.

The same timings come back numerically in
``result.stats.phase_times``, and the always-on metrics registry keeps
latency histograms — both are printed below.

Run:  python examples/trace_query.py [output.json]
"""

import sys

from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.data.workload import WorkloadSpec, make_workload
from repro.obs import export, metrics, tracing


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "trace_query.json"

    # A small synthetic world: 2000 hotels, 2 feature sets of 1000 each.
    objects = synthetic_objects(2000, seed=21)
    feature_sets = synthetic_feature_sets(2, 1000, 64, seed=22)
    processor = QueryProcessor.build(objects, feature_sets, index="srt")
    spec = WorkloadSpec(n_queries=1, k=5, radius=0.03, seed=23)
    query: PreferenceQuery = make_workload(feature_sets, spec)[0]

    # Start cold so the trace shows R-tree node expansion, then trace
    # one query per algorithm.  Tracing is off by default and costs one
    # branch per instrumented call while off.
    tracing.clear()
    tracing.set_enabled(True)
    try:
        results = {}
        for algorithm in ("stps", "stds"):
            processor.clear_buffers()
            results[algorithm] = processor.query(query, algorithm=algorithm)
    finally:
        tracing.set_enabled(False)

    path = tracing.write_chrome_trace(out_path)
    events = tracing.events()
    print(f"wrote {path} ({len(events)} events)")
    print("open it in https://ui.perfetto.dev or chrome://tracing\n")

    for algorithm, result in results.items():
        print(f"{algorithm}: top-{len(result)} -> oids {result.oids}")
        for phase, seconds in sorted(result.stats.phase_times.items()):
            print(f"    {phase:<32} {seconds * 1e3:8.2f} ms")

    # The always-on metrics side: per-algorithm latency histograms.
    family = metrics.registry().get("repro_query_seconds")
    print("\nrepro_query_seconds p95 by series:")
    for labelvalues, child in family.series():
        labels = dict(zip(family.labelnames, labelvalues))
        print(f"    {labels}  p95 {child.p95 * 1e3:.2f} ms")

    # Both queries are in the trace file and the Prometheus exposition.
    assert any(e.get("name") == "query.stps" for e in events)
    assert any(e.get("name") == "query.stds" for e in events)
    assert any(e.get("name") == "rtree.node_expand" for e in events)
    assert "repro_query_seconds_bucket{" in export.render_prometheus()
    print("\ntrace and metrics artifacts verified OK")


if __name__ == "__main__":
    main()
