#!/usr/bin/env python3
"""A tour of the three score variants (Sections 3 and 7).

The same tourist question answered under:

* the **range** score — the best relevant facility within distance r;
* the **influence** score — no hard cut-off, facilities count with
  exponential decay 2^(-dist/r);
* the **nearest-neighbor** score — the quality of the closest relevant
  facility, however far away.

Shows how the ranking changes and what each variant costs (the NN variant
pays for Voronoi-cell computations, as Figures 13-14 of the paper show).

Run:  python examples/score_variants_tour.py
"""

from repro import PreferenceQuery, QueryProcessor, Variant
from repro.data import synthetic_feature_sets, synthetic_objects


def main() -> None:
    objects = synthetic_objects(3000, seed=5)
    feature_sets = synthetic_feature_sets(2, 3000, vocabulary=64, seed=6)
    processor = QueryProcessor.build(objects, feature_sets)

    base = PreferenceQuery.from_terms(
        k=5,
        radius=0.05,
        lam=0.5,
        keywords=[["term0003", "term0007"], ["term0010", "term0021"]],
        feature_sets=feature_sets,
    )

    for variant in (Variant.RANGE, Variant.INFLUENCE, Variant.NEAREST):
        query = base.with_variant(variant)
        result = processor.query(query)
        stats = result.stats
        print(f"=== {variant.value} score ===")
        for rank, item in enumerate(result.items, start=1):
            print(f"  {rank}. object {item.oid:5d}  score={item.score:.4f}")
        line = (
            f"  cost: {stats.combinations} combinations, "
            f"{stats.features_pulled} features pulled, "
            f"{stats.io_reads + stats.buffer_hits} page accesses"
        )
        if variant is Variant.NEAREST:
            line += f", {stats.voronoi_cpu_s * 1e3:.1f}ms in Voronoi cells"
        print(line)
        print()

    print(
        "Note how the range and influence variants agree on dense areas\n"
        "while the NN variant can rank isolated objects highly: its score\n"
        "ignores distance as long as the nearest relevant facility is good."
    )


if __name__ == "__main__":
    main()
