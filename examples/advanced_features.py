#!/usr/bin/env python3
"""Advanced features tour: streaming results, index ablation, ISS.

Demonstrates the extensions this reproduction adds on top of the paper
(see DESIGN.md, Section 7):

1. **incremental streaming** — page through results without re-running
   the query;
2. **three-way index ablation** — SRT vs IR-tree vs IR² isolates what
   makes the SRT-index fast (clustering vs summary fidelity);
3. **ISS** — the combination-free influence algorithm vs the paper's
   Algorithm 5 as the number of feature sets grows.

Run:  python examples/advanced_features.py
"""

import itertools
import time

from repro import PreferenceQuery, QueryProcessor, Variant
from repro.data import synthetic_feature_sets, synthetic_objects


def main() -> None:
    objects = synthetic_objects(5000, seed=21)
    feature_sets = synthetic_feature_sets(3, 5000, vocabulary=64, seed=22)

    # ------------------------------------------------------------------
    # 1. streaming: take 3 results, then 3 more, from one execution
    # ------------------------------------------------------------------
    processor = QueryProcessor.build(objects, feature_sets[:2])
    query = PreferenceQuery.from_terms(
        k=3,
        radius=0.05,
        lam=0.5,
        keywords=[["term0001", "term0005"], ["term0002", "term0009"]],
        feature_sets=feature_sets[:2],
    )
    stream = processor.stream(query)
    first_page = list(itertools.islice(stream, 3))
    second_page = list(itertools.islice(stream, 3))
    print("1. streaming: first page ", [(i.oid, round(i.score, 3)) for i in first_page])
    print("   streaming: second page", [(i.oid, round(i.score, 3)) for i in second_page])

    # ------------------------------------------------------------------
    # 2. index ablation: same query on three indexes
    # ------------------------------------------------------------------
    print("\n2. index ablation (same query, logical page accesses):")
    for index in ("srt", "irtree", "ir2"):
        p = QueryProcessor.build(objects, feature_sets[:2], index=index)
        p.query(query)  # warm
        p.reset_stats()
        result = p.query(query)
        accesses = result.stats.io_reads + result.stats.buffer_hits
        print(
            f"   {index:7s}: {accesses:5d} page accesses, "
            f"{result.stats.features_pulled:4d} features pulled"
        )

    # ------------------------------------------------------------------
    # 3. ISS vs STPS for the influence variant at c = 3
    # ------------------------------------------------------------------
    print("\n3. influence algorithms at c=3 (exact, same answers):")
    processor3 = QueryProcessor.build(objects, feature_sets)
    q3 = PreferenceQuery.from_terms(
        k=5,
        radius=0.05,
        lam=0.5,
        keywords=[["term0001"], ["term0002"], ["term0003"]],
        feature_sets=feature_sets,
        variant=Variant.INFLUENCE,
    )
    reference = None
    for algorithm in ("stps", "iss"):
        processor3.clear_buffers()
        t0 = time.perf_counter()
        result = processor3.query(q3, algorithm=algorithm)
        wall = (time.perf_counter() - t0) * 1e3
        note = (
            f"{result.stats.combinations} combinations"
            if algorithm == "stps"
            else f"{result.stats.objects_scored} exact object evaluations"
        )
        print(f"   {algorithm.upper():4s}: {wall:8.1f}ms ({note})")
        if reference is None:
            reference = result.scores
        else:
            assert all(
                abs(a - b) < 1e-9 for a, b in zip(result.scores, reference)
            ), "algorithms disagree!"
    print("   identical top-k:", [round(s, 4) for s in reference])


if __name__ == "__main__":
    main()
