#!/usr/bin/env python3
"""Disk-resident indexes: persistence, buffers and I/O accounting.

Demonstrates the storage substrate of the reproduction:

1. datasets saved/loaded as JSON lines;
2. the SRT-index built directly on an on-disk page file and reopened in
   a new process-lifetime (via the metadata page);
3. the effect of the LRU buffer pool on physical page reads — the
   quantity behind the dark (I/O) bar segments in the paper's figures.

Run:  python examples/disk_resident_indexes.py
"""

import os
import tempfile

from repro import PreferenceQuery, QueryProcessor
from repro.core.stds import compute_score
from repro.data import (
    load_features,
    save_features,
    synthetic_features,
    synthetic_objects,
)
from repro.index.rtree_base import RTreeBase
from repro.index.srt import SRTIndex
from repro.storage.pagefile import DiskPageFile


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-demo-")
    print(f"working directory: {workdir}")

    # 1. dataset persistence ------------------------------------------
    features = synthetic_features(5000, vocabulary=64, seed=9, label="restaurants")
    dataset_path = os.path.join(workdir, "restaurants.jsonl")
    save_features(features, dataset_path)
    reloaded = load_features(dataset_path)
    size_kb = os.path.getsize(dataset_path) / 1024
    print(f"1. saved+reloaded {len(reloaded)} features ({size_kb:.0f} KiB)")

    # 2. on-disk index + reopen ----------------------------------------
    index_path = os.path.join(workdir, "restaurants.srt")
    tree = SRTIndex.build(reloaded, pagefile=DiskPageFile(index_path))
    tree.pagefile.flush()
    pages = tree.pagefile.page_count
    tree.pagefile.close()
    print(
        f"2. built SRT-index on disk: {pages} pages "
        f"({os.path.getsize(index_path) / 1024:.0f} KiB), reopening..."
    )

    pagefile = DiskPageFile(index_path)
    meta = RTreeBase.read_meta(pagefile)
    reopened = SRTIndex(meta["vocab_size"], pagefile)
    reopened.root_id = meta["root"]
    reopened.height = meta["height"]
    reopened.count = meta["count"]
    query = PreferenceQuery(k=3, radius=0.1, lam=0.5, keyword_masks=(0b111,))
    score = compute_score(reopened, query, 0b111, (0.5, 0.5))
    print(f"   reopened index answers: tau_i((0.5, 0.5)) = {score:.4f}")
    pagefile.close()

    # 3. buffer-pool effect --------------------------------------------
    objects = synthetic_objects(5000, seed=10)
    print("3. physical reads per query vs buffer size (same workload):")
    for buffer_pages in (8, 32, 128, 512):
        processor = QueryProcessor.build(
            objects, [features], buffer_pages=buffer_pages
        )
        q = PreferenceQuery(k=10, radius=0.05, lam=0.5, keyword_masks=(0b1011,))
        processor.reset_stats()
        for _ in range(5):
            processor.query(q)
        reads = processor.object_tree.stats.reads + sum(
            t.stats.reads for t in processor.feature_trees
        )
        hits = processor.object_tree.stats.buffer_hits + sum(
            t.stats.buffer_hits for t in processor.feature_trees
        )
        print(
            f"   buffer={buffer_pages:4d} pages: "
            f"{reads / 5:7.1f} physical reads/query "
            f"({hits / (reads + hits) * 100:5.1f}% hit rate)"
        )


if __name__ == "__main__":
    main()
