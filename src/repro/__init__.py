"""repro — reproduction of "On Processing Top-k Spatio-Textual Preference
Queries" (Tsatsanifos & Vlachou, EDBT 2015).

Public API highlights:

* :class:`~repro.core.processor.QueryProcessor` — build indexes and run
  queries (STPS / STDS, range / influence / nearest-neighbor variants);
* :class:`~repro.core.query.PreferenceQuery` — query definition;
* :class:`~repro.index.srt.SRTIndex` / :class:`~repro.index.ir2.IR2Tree`
  — the paper's index and the baseline;
* :mod:`repro.data` — synthetic and real-like dataset generators;
* :mod:`repro.bench` — the experiment harness regenerating every table
  and figure of the paper's evaluation.
"""

import logging as _logging

from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, ResultItem
from repro.errors import ReproError
from repro.index.ir2 import IR2Tree
from repro.index.object_rtree import ObjectRTree
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.model.objects import DataObject, FeatureObject
from repro.text.vocabulary import Vocabulary

__version__ = "1.0.0"

# Library-style logging: quiet unless the application configures handlers.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__all__ = [
    "DataObject",
    "FeatureDataset",
    "FeatureObject",
    "IR2Tree",
    "ObjectDataset",
    "ObjectRTree",
    "PreferenceQuery",
    "QueryProcessor",
    "QueryResult",
    "QueryStats",
    "ReproError",
    "ResultItem",
    "SRTIndex",
    "Variant",
    "Vocabulary",
    "__version__",
]
