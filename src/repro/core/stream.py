"""Sorted access to a feature index by decreasing preference score.

Implements the per-feature-set retrieval of Algorithm 4 (lines 3-7): a
best-first traversal of the spatio-textual index keyed on the node bound
``ŝ(e)``, yielding feature objects in non-increasing ``s(t)`` order.
Subtrees that cannot contain a relevant feature (``sim = 0``) are pruned.

Per Section 6.3 the stream ends with the *virtual feature object* ``∅``
(score 0, no location), which lets STPS form combinations in which a
feature set contributes nothing.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.index.feature_tree import FeatureScorer, FeatureTree
from repro.index.nodes import FeatureLeafEntry
from repro.obs import explain as _explain


@dataclass(frozen=True, slots=True)
class StreamedFeature:
    """A feature pulled from a stream, scored against the query.

    ``is_virtual`` marks the paper's ``∅`` object: ``s(∅) = 0`` and it
    imposes no distance constraint (``dist(·, ∅) = 0``).
    """

    fid: int
    x: float
    y: float
    score: float
    is_virtual: bool = False


VIRTUAL_FID = -1


def virtual_feature() -> StreamedFeature:
    """The ``∅`` sentinel of Section 6.1."""
    return StreamedFeature(VIRTUAL_FID, 0.0, 0.0, 0.0, is_virtual=True)


class FeatureStream:
    """Iterator over one feature set in decreasing ``s(t)`` order."""

    def __init__(
        self,
        tree: FeatureTree,
        query_mask: int,
        lam: float,
        emit_virtual: bool = True,
        collector=None,
        set_id: int = 0,
    ) -> None:
        self.tree = tree
        self.scorer: FeatureScorer = tree.make_scorer(query_mask, lam)
        self._heap: list[tuple[float, int, object]] = []
        self._counter = 0
        self._virtual_pending = emit_virtual
        self._exhausted = False
        self.pulled = 0
        # EXPLAIN collector (repro.obs.explain): per-set node accesses
        # and text prunes.  The null collector makes every call a no-op;
        # hot loops check ``active`` first to skip the call entirely.
        self.collector = _explain.resolve(collector)
        self.set_id = set_id
        if tree.root_id is not None and tree.count > 0:
            root = tree.read_node(tree.root_id)
            if self.collector.active:
                # The root carries no entry bound; 1.0 is the score cap.
                self.collector.node_visited(set_id, 1.0)
            self._push_children(root)

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def next(self) -> StreamedFeature | None:
        """The next feature by descending score; ``∅`` last; then None."""
        collector = self.collector
        while self._heap:
            neg_bound, _, entry = heapq.heappop(self._heap)
            if isinstance(entry, FeatureLeafEntry):
                self.pulled += 1
                if collector.active:
                    collector.feature_pulled(self.set_id)
                return StreamedFeature(entry.fid, entry.x, entry.y, -neg_bound)
            node = self.tree.read_node(entry.child)
            if collector.active:
                collector.node_visited(self.set_id, -neg_bound)
            self._push_children(node)
        if self._virtual_pending:
            self._virtual_pending = False
            return virtual_feature()
        self._exhausted = True
        return None

    @property
    def next_bound(self) -> float | None:
        """Best possible score of any not-yet-returned feature.

        This is the ``min_i`` of the paper's thresholding scheme: the heap
        top's bound while entries remain, ``0.0`` while only the virtual
        feature is pending, and ``None`` once fully exhausted.
        """
        if self._heap:
            return -self._heap[0][0]
        if self._virtual_pending:
            return 0.0
        return None

    @property
    def exhausted(self) -> bool:
        """True once :meth:`next` has returned None."""
        return self._exhausted or (not self._heap and not self._virtual_pending)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _push_children(self, node) -> None:
        scorer = self.scorer
        heap = self._heap
        collector = self.collector
        if node.is_leaf:
            arrays = self.tree.leaf_arrays(node)
            if arrays is not None:
                # Vectorized: score the whole leaf in one array pass
                # (repro.index.leafdata); push order and score values
                # are identical to the scalar loop below.
                scores, relevant = scorer.leaf_score_arrays(arrays)
                idx = relevant.nonzero()[0]
                if collector.active:
                    collector.entries_pruned(
                        self.set_id, len(node.entries) - int(idx.size)
                    )
                if idx.size:
                    entries = node.entries
                    values = scores[idx].tolist()
                    for i, value in zip(idx.tolist(), values):
                        self._counter += 1
                        heapq.heappush(
                            heap, (-value, self._counter, entries[i])
                        )
                return
            for entry in node.entries:
                if scorer.leaf_relevant(entry):
                    self._counter += 1
                    heapq.heappush(
                        heap, (-scorer.leaf_score(entry), self._counter, entry)
                    )
                elif collector.active:
                    collector.entries_pruned(self.set_id)
        else:
            for entry in node.entries:
                if scorer.node_relevant(entry):
                    self._counter += 1
                    heapq.heappush(
                        heap, (-scorer.node_bound(entry), self._counter, entry)
                    )
                elif collector.active:
                    # Text-irrelevant subtree (sim = 0): pruned without
                    # a bound value — ŝ(e) is not computed for it.
                    collector.node_pruned(self.set_id)
