"""Core algorithms: STDS, STPS and the score variants."""

from repro.core.bruteforce import brute_force, component_score, object_score
from repro.core.combinations import (
    PULL_PRIORITIZED,
    PULL_ROUND_ROBIN,
    Combination,
    CombinationIterator,
)
from repro.core.executor import BatchReport, QueryExecutor
from repro.core.influence import stps_influence
from repro.core.nearest import stps_nearest
from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, ResultItem
from repro.core.stds import (
    compute_score,
    compute_score_influence,
    compute_score_nearest,
    compute_scores_batch,
    stds,
)
from repro.core.stps import stps
from repro.core.stream import FeatureStream, StreamedFeature, virtual_feature
from repro.core.voronoi import clip_voronoi_cell, nearest_relevant, voronoi_cell

__all__ = [
    "PULL_PRIORITIZED",
    "PULL_ROUND_ROBIN",
    "BatchReport",
    "Combination",
    "CombinationIterator",
    "FeatureStream",
    "PreferenceQuery",
    "QueryExecutor",
    "QueryProcessor",
    "QueryResult",
    "QueryStats",
    "ResultItem",
    "StreamedFeature",
    "Variant",
    "brute_force",
    "clip_voronoi_cell",
    "component_score",
    "compute_score",
    "compute_score_influence",
    "compute_score_nearest",
    "compute_scores_batch",
    "nearest_relevant",
    "object_score",
    "stds",
    "stps",
    "stps_influence",
    "stps_nearest",
    "virtual_feature",
    "voronoi_cell",
]
