"""Spatio-Textual Preference Search (STPS) — range score (Section 6).

Algorithm 3: repeatedly take the next best valid combination of feature
objects (Algorithm 4, see :mod:`repro.core.combinations`) and fetch the
data objects lying within distance ``r`` of *all* its real members from
the object R-tree (Section 6.4).  Objects retrieved for the first time
have a spatio-textual preference score exactly equal to the combination's
score — so results stream out in rank order and the algorithm stops as
soon as ``k`` objects have been produced, without ever scoring the rest
of the dataset.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.combinations import PULL_PRIORITIZED, CombinationIterator
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, StatsTracker, rank_items
from repro.errors import QueryError
from repro.index.feature_tree import FeatureTree
from repro.index.object_rtree import ObjectRTree


def stps(
    object_tree: ObjectRTree,
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    pulling: str = PULL_PRIORITIZED,
) -> QueryResult:
    """Run STPS for the range score variant (Definition 2)."""
    if query.variant is not Variant.RANGE:
        raise QueryError(
            f"stps() handles the range variant; got {query.variant}. "
            "Use stps_influence() / stps_nearest() or the QueryProcessor."
        )
    tracker = StatsTracker(
        [object_tree.pagefile] + [t.pagefile for t in feature_trees]
    )
    stats = QueryStats()
    iterator = CombinationIterator(
        feature_trees, query, enforce_2r=True, pulling=pulling
    )
    seen: set[int] = set()
    collected: list[tuple[float, int, float, float]] = []

    while len(collected) < query.k:
        combo = iterator.next()
        if combo is None:
            break
        if combo.is_all_virtual:
            # Score-0 tail: any remaining object qualifies; take the
            # lowest ids for deterministic tie-breaking.
            remaining = sorted(
                (e.oid, e.x, e.y)
                for e in object_tree.all_entries()
                if e.oid not in seen
            )
            for oid, x, y in remaining[: query.k - len(collected)]:
                seen.add(oid)
                collected.append((0.0, oid, x, y))
            break
        batch = sorted(
            (e for e in object_tree.within_all(combo.anchors, query.radius)
             if e.oid not in seen),
            key=lambda e: e.oid,
        )
        for e in batch:
            seen.add(e.oid)
            collected.append((combo.score, e.oid, e.x, e.y))

    stats.combinations = iterator.combinations_released
    stats.features_pulled = iterator.features_pulled
    stats.objects_scored = len(collected)
    result = QueryResult(rank_items(collected, query.k), stats)
    tracker.finish(stats)
    return result
