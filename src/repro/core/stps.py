"""Spatio-Textual Preference Search (STPS) — range score (Section 6).

Algorithm 3: repeatedly take the next best valid combination of feature
objects (Algorithm 4, see :mod:`repro.core.combinations`) and fetch the
data objects lying within distance ``r`` of *all* its real members from
the object R-tree (Section 6.4).  Objects retrieved for the first time
have a spatio-textual preference score exactly equal to the combination's
score — so results stream out in rank order and the algorithm stops as
soon as ``k`` objects have been produced, without ever scoring the rest
of the dataset.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.combinations import PULL_PRIORITIZED, CombinationIterator
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, StatsTracker, rank_items
from repro.errors import QueryError
from repro.index.feature_tree import FeatureTree
from repro.index.object_rtree import ObjectRTree
from repro.obs import explain as _explain
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

#: Feature objects pulled from the per-set sorted streams (the paper's
#: "features pulled" cost metric, Section 8.1), labeled by feature set.
FEATURES_PULLED = _metrics.registry().counter(
    "repro_features_pulled_total",
    "Feature objects pulled from the sorted streams.",
    ("algorithm", "feature_set"),
)


def record_features_pulled(algorithm: str, streams) -> None:
    """Fold per-stream pull counts into :data:`FEATURES_PULLED`."""
    for i, stream in enumerate(streams):
        if stream.pulled:
            FEATURES_PULLED.labels(
                algorithm=algorithm, feature_set=str(i)
            ).inc(stream.pulled)


def stps(
    object_tree: ObjectRTree,
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    pulling: str = PULL_PRIORITIZED,
    floor: float = float("-inf"),
    collector=None,
) -> QueryResult:
    """Run STPS for the range score variant (Definition 2).

    ``floor`` is an externally known lower bound on the global k-th best
    score (the sharded engine's cross-shard threshold).  Combinations
    stream in descending score order, so the loop stops as soon as the
    next combination scores *strictly* below ``floor`` — objects at or
    above the floor are always reported exactly; objects strictly below
    it may be omitted.
    """
    if query.variant is not Variant.RANGE:
        raise QueryError(
            f"stps() handles the range variant; got {query.variant}. "
            "Use stps_influence() / stps_nearest() or the QueryProcessor."
        )
    tracker = StatsTracker(
        [object_tree.pagefile] + [t.pagefile for t in feature_trees]
    )
    stats = QueryStats()
    rec = _tracing.recorder()
    collector = _explain.resolve(collector)
    iterator = CombinationIterator(
        feature_trees, query, enforce_2r=True, pulling=pulling, recorder=rec,
        collector=collector,
    )
    seen: set[int] = set()
    collected: list[tuple[float, int, float, float]] = []

    while True:
        combo = iterator.next()
        if combo is None:
            break
        if combo.score < floor:
            # Scores are non-increasing: nothing below the external floor
            # can reach the caller's merged top-k (ties at the floor are
            # still processed).
            break
        # Tie-complete cutoff: once k objects are known, keep draining
        # combinations that *tie* the k-th score so rank_items can apply
        # the canonical (score desc, oid asc) tie-break over the full tie
        # set — stopping at len == k would keep an arbitrary
        # retrieval-order subset of the tied objects instead.
        if (
            len(collected) >= query.k
            and combo.score < collected[query.k - 1][0]
        ):
            break
        if combo.is_all_virtual:
            # Score-0 tail: any remaining object qualifies; take the
            # lowest ids (up to k — enough to cover every slot even when
            # the whole result ties at zero).
            with rec.span("stps.get_data_objects", tail=True):
                remaining = sorted(
                    (e.oid, e.x, e.y)
                    for e in object_tree.all_entries()
                    if e.oid not in seen
                )
            for oid, x, y in remaining[: query.k]:
                seen.add(oid)
                collected.append((0.0, oid, x, y))
            break
        with rec.span("stps.get_data_objects"):
            batch = sorted(
                (e for e in object_tree.within_all(combo.anchors, query.radius)
                 if e.oid not in seen),
                key=lambda e: e.oid,
            )
        for e in batch:
            seen.add(e.oid)
            collected.append((combo.score, e.oid, e.x, e.y))

    stats.combinations = iterator.combinations_released
    stats.features_pulled = iterator.features_pulled
    stats.objects_scored = len(collected)
    stats.phase_times = rec.totals()
    record_features_pulled("stps", iterator.streams)
    result = QueryResult(rank_items(collected, query.k), stats)
    tracker.finish(stats)
    return result
