"""Valid-combination retrieval — the heart of STPS (Section 6, Alg. 4).

Yields combinations ``C = (t_1, ..., t_c)``, one feature (or the virtual
``∅``) per feature set, in non-increasing combined score ``s(C) = Σ s(t_i)``,
pulling features from the per-set sorted streams only as needed:

* **thresholding scheme** — a combination is released only once its score
  reaches ``τ = max_j (max_1 + ... + min_j + ... + max_c)``, the best
  score any not-yet-formed combination could achieve (``max_l`` = best
  score in set ``l``, ``min_j`` = best score still obtainable from set
  ``j``'s stream);
* **pulling strategy** — either the paper's *prioritized* strategy
  (Definition 5: pull from the set responsible for the current threshold)
  or plain round-robin (the paper's "simple alternative", kept as an
  ablation);
* **validity** — for the range variant, combinations whose real members
  are pairwise farther than ``2r`` apart are discarded (Definition 4 /
  Lemma 1); the influence and NN variants disable that filter
  (``enforce_2r=False``), as Section 7 prescribes.

Combinations over the already-pulled features are enumerated lazily over
the product lattice of the per-set sorted lists (seed ``(0,...,0)``, pop a
tuple, push its ``c`` single-increment successors).  This produces exactly
the non-increasing score order of the paper's eager ``validCombinations``
while keeping the candidate heap linear in the number of pops.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.query import PreferenceQuery
from repro.core.stream import FeatureStream, StreamedFeature
from repro.errors import QueryError
from repro.index.feature_tree import FeatureTree
from repro.obs import explain as _explain
from repro.obs import tracing as _tracing

_EPS = 1e-12

PULL_PRIORITIZED = "prioritized"
PULL_ROUND_ROBIN = "round_robin"


@dataclass(frozen=True, slots=True)
class Combination:
    """A combination of feature objects with its combined score."""

    features: tuple[StreamedFeature, ...]
    score: float

    @property
    def anchors(self) -> tuple[tuple[float, float], ...]:
        """Locations of the real (non-virtual) members."""
        return tuple(
            (f.x, f.y) for f in self.features if not f.is_virtual
        )

    @property
    def is_all_virtual(self) -> bool:
        return all(f.is_virtual for f in self.features)


class CombinationIterator:
    """Iterator over combinations in non-increasing score order."""

    def __init__(
        self,
        feature_trees: Sequence[FeatureTree],
        query: PreferenceQuery,
        enforce_2r: bool = True,
        pulling: str = PULL_PRIORITIZED,
        recorder=None,
        collector=None,
    ) -> None:
        if len(feature_trees) != query.c:
            raise QueryError(
                f"query addresses {query.c} feature sets, got "
                f"{len(feature_trees)} trees"
            )
        if pulling not in (PULL_PRIORITIZED, PULL_ROUND_ROBIN):
            raise QueryError(f"unknown pulling strategy {pulling!r}")
        self.query = query
        self.enforce_2r = enforce_2r
        self.pulling = pulling
        # Phase recorder (repro.obs.tracing): times the feature pulls,
        # threshold updates and combination assembly separately so a
        # query's `phase_times` mirrors the anatomy of Algorithm 4.
        self.recorder = (
            recorder if recorder is not None else _tracing.NULL_RECORDER
        )
        # EXPLAIN collector: records pulling rounds with the τ value
        # that justified each pull (Definition 5) and every combination
        # accept/reject decision (Lemma 1).
        self.collector = _explain.resolve(collector)
        self.c = query.c
        self.streams = [
            FeatureStream(
                tree, mask, query.lam, collector=self.collector, set_id=i
            )
            for i, (tree, mask) in enumerate(
                zip(feature_trees, query.keyword_masks)
            )
        ]
        self.pulled: list[list[StreamedFeature]] = [[] for _ in range(self.c)]
        # Upper bound of each set's best score; tightened to the exact max
        # on the first pull (the paper sets max_i at first access).
        self.set_max: list[float] = [
            s.next_bound if s.next_bound is not None else 0.0
            for s in self.streams
        ]
        self._heap: list[tuple[float, int, tuple[int, ...]]] = []
        self._submitted: set[tuple[int, ...]] = set()
        self._blocked: list[list[tuple[int, ...]]] = [[] for _ in range(self.c)]
        self._counter = 0
        self._rr_next = 0
        self.combinations_released = 0
        # Seed: one pull per set guarantees every list is non-empty (a
        # stream always yields at least the virtual feature).
        for i in range(self.c):
            with self.recorder.span("stps.feature_pull", feature_set=i):
                self._pull(i)
        self._submit(tuple([0] * self.c))

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def next(self) -> Combination | None:
        """Next combination by descending score, or None when done."""
        rec = self.recorder
        collector = self.collector
        while True:
            with rec.span("stps.threshold_update"):
                threshold = self._threshold()
            if self._heap and -self._heap[0][0] >= threshold - _EPS:
                with rec.span("stps.combination_assembly"):
                    _, _, idx = heapq.heappop(self._heap)
                    self._expand(idx)
                    combo = self._materialize(idx)
                    valid = self._valid(combo)
                if collector.active:
                    collector.combination(combo.score, valid)
                if valid:
                    self.combinations_released += 1
                    return combo
                continue
            pull_from = self._next_feature_set()
            if pull_from is None:
                if self._heap:
                    continue  # threshold is -inf now; drain the heap
                return None
            if collector.active:
                bound = self.streams[pull_from].next_bound
                collector.pull(
                    pull_from,
                    threshold,
                    bound if bound is not None else 0.0,
                )
            with rec.span("stps.feature_pull", feature_set=pull_from):
                self._pull(pull_from)

    @property
    def features_pulled(self) -> int:
        """Real features retrieved from the streams so far."""
        return sum(s.pulled for s in self.streams)

    # ------------------------------------------------------------------
    # thresholding scheme
    # ------------------------------------------------------------------
    def _threshold(self) -> float:
        """Best score of any combination not yet formable (τ of Alg. 4)."""
        best = -math.inf
        total_max = sum(self.set_max)
        for j, stream in enumerate(self.streams):
            bound = stream.next_bound
            if bound is None:
                continue
            candidate = total_max - self.set_max[j] + bound
            if candidate > best:
                best = candidate
        return best

    def _next_feature_set(self) -> int | None:
        """Which stream to pull from next (Definition 5 or round-robin)."""
        pullable = [
            j for j, s in enumerate(self.streams) if s.next_bound is not None
        ]
        if not pullable:
            return None
        if self.pulling == PULL_ROUND_ROBIN:
            for _ in range(self.c):
                j = self._rr_next % self.c
                self._rr_next += 1
                if j in pullable:
                    return j
            return pullable[0]
        # Prioritized: the set responsible for the current threshold.
        total_max = sum(self.set_max)
        return max(
            pullable,
            key=lambda j: total_max - self.set_max[j] + self.streams[j].next_bound,
        )

    # ------------------------------------------------------------------
    # lattice enumeration
    # ------------------------------------------------------------------
    def _pull(self, i: int) -> bool:
        feature = self.streams[i].next()
        if feature is None:
            return False
        if not self.pulled[i]:
            self.set_max[i] = feature.score
        self.pulled[i].append(feature)
        ready = self._blocked[i]
        self._blocked[i] = []
        for idx in ready:
            self._push(idx)
        return True

    def _submit(self, idx: tuple[int, ...]) -> None:
        if idx in self._submitted:
            return
        self._submitted.add(idx)
        for j in range(self.c):
            if idx[j] >= len(self.pulled[j]):
                # At most one coordinate can be ahead (successors advance
                # one coordinate at a time); park until that list grows.
                self._blocked[j].append(idx)
                return
        self._push(idx)

    def _push(self, idx: tuple[int, ...]) -> None:
        score = sum(self.pulled[j][idx[j]].score for j in range(self.c))
        self._counter += 1
        heapq.heappush(self._heap, (-score, self._counter, idx))

    def _expand(self, idx: tuple[int, ...]) -> None:
        for j in range(self.c):
            if self.pulled[j][idx[j]].is_virtual:
                continue  # nothing ranks below the virtual feature
            successor = idx[:j] + (idx[j] + 1,) + idx[j + 1 :]
            self._submit(successor)

    def _materialize(self, idx: tuple[int, ...]) -> Combination:
        features = tuple(self.pulled[j][idx[j]] for j in range(self.c))
        score = sum(f.score for f in features)
        return Combination(features, score)

    def _valid(self, combo: Combination) -> bool:
        if not self.enforce_2r:
            return True
        diameter = 2.0 * self.query.radius
        real = [f for f in combo.features if not f.is_virtual]
        for a, b in itertools.combinations(real, 2):
            if math.hypot(a.x - b.x, a.y - b.y) > diameter:
                return False
        return True
