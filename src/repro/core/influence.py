"""STPS for the influence score variant (Section 7.1, Algorithm 5).

Definition 6 replaces the hard range predicate with exponential distance
decay: ``τ_i(p) = max s(t)·2^(-dist(p,t)/r)`` over relevant features.

Changes relative to range-score STPS, exactly as the paper prescribes:

* ``nextCombination`` no longer discards combinations by the ``2r`` rule;
* a combination's score ``s(C)`` is only an *upper bound* for data-object
  scores (attained at distance 0), so ``getDataObjects`` becomes a
  best-first top-k search on the object R-tree with the per-combination
  influence score, floored at the current k-th best score ``τ``;
* objects retrieved by several combinations keep their maximum score;
* the loop ends once ``k`` objects are known and the next combination's
  upper bound cannot beat the current k-th score.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence

from repro.core.combinations import (
    PULL_PRIORITIZED,
    Combination,
    CombinationIterator,
)
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, StatsTracker, rank_items
from repro.errors import QueryError
from repro.core.stps import record_features_pulled
from repro.geometry.rect import Rect
from repro.index.feature_tree import FeatureTree
from repro.index.object_rtree import ObjectRTree
from repro.obs import explain as _explain
from repro.obs import tracing as _tracing


def stps_influence(
    object_tree: ObjectRTree,
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    pulling: str = PULL_PRIORITIZED,
    floor: float = -math.inf,
    collector=None,
) -> QueryResult:
    """Run STPS for the influence score variant (Algorithm 5).

    ``floor`` — see :func:`repro.core.stps.stps`: the external lower
    bound on the caller's merged k-th score.  ``s(C)`` upper-bounds every
    object of this and all later combinations, so the loop ends once it
    drops *strictly* below the floor.
    """
    if query.variant is not Variant.INFLUENCE:
        raise QueryError(f"stps_influence() got variant {query.variant}")
    tracker = StatsTracker(
        [object_tree.pagefile] + [t.pagefile for t in feature_trees]
    )
    stats = QueryStats()
    rec = _tracing.recorder()
    collector = _explain.resolve(collector)
    iterator = CombinationIterator(
        feature_trees, query, enforce_2r=False, pulling=pulling, recorder=rec,
        collector=collector,
    )
    best: dict[int, tuple[float, float, float]] = {}  # oid -> (score, x, y)
    k = query.k
    radius = query.radius
    # The k-th best score so far is the pruning threshold; it only moves
    # when a retrieval updates `best`, so it is recomputed lazily instead
    # of per combination (Algorithm 5 examines a combination per loop
    # turn; the turns vastly outnumber the successful retrievals).
    threshold = -math.inf
    decay_cache: dict[tuple[int, int, int, int], float] = {}

    while True:
        combo = iterator.next()
        if combo is None:
            break
        # s(C) is the score of a hypothetical object at distance 0 from
        # every member, hence an upper bound for all unseen objects of
        # this and every later (lower-scored) combination.  Strict
        # comparisons throughout: an object can *attain* the bound
        # (distance 0 to every member), and an exact tie at the k-th
        # score must survive for the (score desc, oid asc) tie-break.
        if combo.score < floor:
            break
        if len(best) >= k and combo.score < threshold:
            break
        if combo.is_all_virtual:
            continue  # contributes score 0 to every object
        # Distance-aware refinement of the s(C) bound: the best influence
        # score any single point can collect from THIS combination.  Far
        # apart members cannot be reached simultaneously, so most
        # combinations are skipped without touching the object R-tree.
        # (Sound pruning only — results are identical; see DESIGN.md.)
        if len(best) >= k and (
            _combo_influence_bound_cached(
                combo.features, radius, decay_cache
            )
            < threshold
        ):
            if collector.active:
                collector.retrieval_skipped(combo.score)
            continue
        members = [
            (f.x, f.y, f.score) for f in combo.features if not f.is_virtual
        ]
        updated = False
        with rec.span("stps.get_data_objects"):
            # best_first keeps scores strictly above its floor; back the
            # threshold off by one ulp so exact ties are retained.
            retrieved = list(
                _influence_top_k_members(
                    object_tree,
                    members,
                    query,
                    math.nextafter(threshold, -math.inf)
                    if math.isfinite(threshold)
                    else threshold,
                )
            )
        for score, entry in retrieved:
            current = best.get(entry.oid)
            if current is None or score > current[0]:
                best[entry.oid] = (score, entry.x, entry.y)
                updated = True
        if updated and len(best) >= k:
            threshold = heapq.nlargest(
                k, (v[0] for v in best.values())
            )[-1]

    if len(best) < query.k:
        # Zero-score tail: objects influenced by no relevant feature at
        # all (the all-virtual combination contributes 0 to everyone).
        remaining = sorted(
            (e.oid, e.x, e.y)
            for e in object_tree.all_entries()
            if e.oid not in best
        )
        for oid, x, y in remaining[: query.k - len(best)]:
            best[oid] = (0.0, x, y)

    stats.combinations = iterator.combinations_released
    stats.features_pulled = iterator.features_pulled
    stats.objects_scored = len(best)
    stats.phase_times = rec.totals()
    record_features_pulled("stps_influence", iterator.streams)
    candidates = [
        (score, oid, x, y) for oid, (score, x, y) in best.items()
    ]
    result = QueryResult(rank_items(candidates, query.k), stats)
    tracker.finish(stats)
    return result


def _combo_influence_bound_cached(
    features, radius: float, decay_cache: dict
) -> float:
    """Fast path of :func:`_combo_influence_bound` over streamed features.

    Per-query cache of pairwise decay factors: combinations share members
    heavily, so each (slot_i, fid_i, slot_j, fid_j) pair is computed once.
    """
    real = [(i, f) for i, f in enumerate(features) if not f.is_virtual]
    if len(real) == 1:
        return real[0][1].score
    cache_get = decay_cache.get
    hypot = math.hypot
    best = math.inf
    for i, fi in real:
        fi_score = fi.score
        dists = []
        scores = []
        for j, fj in real:
            if j == i:
                continue
            key = (i, fi.fid, j, fj.fid)
            d = cache_get(key)
            if d is None:
                d = hypot(fi.x - fj.x, fi.y - fj.y)
                decay_cache[key] = d
            dists.append(d)
            scores.append(fj.score)
        g_max = 0.0
        for u in (0.0, *dists):
            g = fi_score * 2.0 ** (-u / radius)
            for d, sj in zip(dists, scores):
                diff = d - u
                if diff > 0.0:
                    g += sj * 2.0 ** (-diff / radius)
                else:
                    g += sj
            if g > g_max:
                g_max = g
        if g_max < best:
            best = g_max
        if best <= 0.0:
            break
    return best


def _influence_top_k(
    object_tree: ObjectRTree,
    combo: Combination,
    query: PreferenceQuery,
    floor: float,
):
    """Top-k data objects by this combination's influence score."""
    members = [(f.x, f.y, f.score) for f in combo.features if not f.is_virtual]
    return _influence_top_k_members(object_tree, members, query, floor)


def _influence_top_k_members(
    object_tree: ObjectRTree,
    members: list[tuple[float, float, float]],
    query: PreferenceQuery,
    floor: float,
):
    """Top-k data objects by the members' combined influence score."""
    radius = query.radius

    def node_bound(rect: Rect) -> float:
        return sum(
            s * 2.0 ** (-rect.mindist((x, y)) / radius) for x, y, s in members
        )

    def point_score(px: float, py: float) -> float:
        return sum(
            s * 2.0 ** (-math.hypot(px - x, py - y) / radius)
            for x, y, s in members
        )

    return object_tree.best_first(
        node_bound, point_score, limit=query.k, floor=floor, ties=True
    )


def _combo_influence_bound(
    members: list[tuple[float, float, float]], radius: float
) -> float:
    """Max influence score any point can collect from these members.

    For each anchor member ``i`` and any point ``p`` at distance ``u``
    from it, ``dist(p, t_j) >= max(0, d_ij - u)``, so the combination's
    influence score is bounded by

        g_i(u) = s_i 2^{-u/r} + Σ_j s_j 2^{-max(0, d_ij - u)/r}.

    On each interval between breakpoints ``u ∈ {0, d_ij...}`` the function
    is convex, so its maximum over ``u`` is attained at a breakpoint; the
    overall bound is the minimum over anchors.  Far-apart members thus
    bound to ~max(s_i) instead of Σ s_i.
    """
    if len(members) == 1:
        return members[0][2]
    best = math.inf
    for i, (xi, yi, si) in enumerate(members):
        pairs = [
            (math.hypot(xi - xj, yi - yj), sj)
            for j, (xj, yj, sj) in enumerate(members)
            if j != i
        ]
        g_max = 0.0
        for u in [0.0] + [d for d, _ in pairs]:
            g = si * 2.0 ** (-u / radius) + sum(
                sj * 2.0 ** (-max(0.0, d - u) / radius) for d, sj in pairs
            )
            if g > g_max:
                g_max = g
        if g_max < best:
            best = g_max
    return best


def _kth_score(best: dict[int, tuple[float, float, float]], k: int) -> float:
    if len(best) < k:
        return -math.inf
    scores = sorted((v[0] for v in best.values()), reverse=True)
    return scores[k - 1]
