"""Query results and per-query cost accounting.

Mirrors the paper's metrics (Section 8.1): execution time split into I/O
time (number of page reads x per-page cost) and CPU time, plus the
algorithm-specific counters the paper discusses (combinations examined,
Voronoi-cell cost for the NN variant).
"""

from __future__ import annotations

import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.storage.pagefile import PageFile


@dataclass(frozen=True, slots=True)
class ResultItem:
    """One ranked data object."""

    oid: int
    score: float
    x: float
    y: float


@dataclass(slots=True)
class QueryStats:
    """Cost counters for a single query execution."""

    wall_s: float = 0.0
    io_reads: int = 0
    buffer_hits: int = 0
    node_cache_hits: int = 0
    node_cache_misses: int = 0
    io_time_s: float = 0.0
    combinations: int = 0
    features_pulled: int = 0
    objects_scored: int = 0
    heap_pops: int = 0
    nodes_expanded: int = 0
    voronoi_io_reads: int = 0
    voronoi_cpu_s: float = 0.0
    voronoi_io_time_s: float = 0.0
    #: Per-query trace id minted by the processor (see
    #: :mod:`repro.obs.tracing`): the join key across Chrome-trace spans,
    #: flight-recorder records, and structured logs.  Empty until the
    #: processor stamps it.
    trace_id: str = ""
    #: Per-phase wall seconds (span name -> total), populated when
    #: tracing is enabled (see :mod:`repro.obs.tracing`); empty otherwise.
    #: Phase names follow the span taxonomy of DESIGN.md §9.
    phase_times: dict[str, float] = field(default_factory=dict)

    @property
    def cpu_time_s(self) -> float:
        """Wall time minus nothing — in a simulated-disk build, all wall
        time is CPU time; the I/O charge is additive on top."""
        return self.wall_s

    @property
    def total_time_s(self) -> float:
        """CPU time plus simulated I/O time (what the paper's bars show)."""
        return self.wall_s + self.io_time_s

    @property
    def node_cache_hit_rate(self) -> float:
        """Decoded-node cache hits / lookups; 0.0 when unused."""
        total = self.node_cache_hits + self.node_cache_misses
        return self.node_cache_hits / total if total else 0.0


@dataclass(slots=True)
class QueryResult:
    """Ranked items plus the cost of producing them."""

    items: list[ResultItem] = field(default_factory=list)
    stats: QueryStats = field(default_factory=QueryStats)

    @property
    def scores(self) -> list[float]:
        """Scores in rank order (the comparable part across algorithms)."""
        return [item.score for item in self.items]

    @property
    def oids(self) -> list[int]:
        return [item.oid for item in self.items]

    def __len__(self) -> int:
        return len(self.items)


class StatsTracker:
    """Accumulates I/O deltas across a set of page files during a query."""

    def __init__(self, pagefiles: Iterable[PageFile]) -> None:
        self.pagefiles = list(pagefiles)
        self._before = [pf.stats.snapshot() for pf in self.pagefiles]
        self._t0 = time.perf_counter()

    def finish(self, stats: QueryStats) -> QueryStats:
        """Fill ``stats`` with elapsed time and I/O deltas."""
        stats.wall_s = time.perf_counter() - self._t0
        for pf, before in zip(self.pagefiles, self._before):
            delta = pf.stats.delta_since(before)
            stats.io_reads += delta.reads
            stats.buffer_hits += delta.buffer_hits
            stats.node_cache_hits += delta.node_cache_hits
            stats.node_cache_misses += delta.node_cache_misses
            stats.io_time_s += delta.io_time_s
        return stats

    def io_snapshot(self) -> list:
        """Snapshot used to attribute a sub-phase (e.g. Voronoi) I/O."""
        return [pf.stats.snapshot() for pf in self.pagefiles]

    def io_since(self, snapshot: list) -> tuple[int, float]:
        """(reads, io_time_s) accumulated since ``snapshot``."""
        reads = 0
        io_time = 0.0
        for pf, before in zip(self.pagefiles, snapshot):
            delta = pf.stats.delta_since(before)
            reads += delta.reads
            io_time += delta.io_time_s
        return reads, io_time


def rank_items(
    candidates: Iterable[tuple[float, int, float, float]], k: int
) -> list[ResultItem]:
    """Top-k by (score desc, oid asc) from (score, oid, x, y) tuples."""
    ordered = sorted(candidates, key=lambda t: (-t[0], t[1]))
    return [ResultItem(oid, score, x, y) for score, oid, x, y in ordered[:k]]
