"""Uniform spatial grid for the batched STDS score computation.

The batched variant of Algorithm 2 ("Performance improvements",
Section 5) expands an index entry when *at least one* pending data object
is within range, and assigns scores to every in-range pending object when
a feature pops.  Both tests need "which pending objects are near this
rectangle/point" — a uniform grid with cell size ``r`` answers them in
expected O(1) per candidate.

The query methods are hand-inlined (no intermediate ``Rect``, no
generator machinery, flat candidate loops): they sit on the hottest STDS
path — one ``near_point`` per popped feature, one ``any_near_rect`` per
index entry considered for expansion.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.errors import QueryError
from repro.geometry.rect import Rect


class SpatialGrid:
    """Hash grid of points in the unit square, keyed by integer cells."""

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0.0:
            raise QueryError(f"cell size must be positive, got {cell_size}")
        self.cell_size = cell_size
        # All cell computations use the same floor(x * inv) mapping, so
        # insert/remove/query agree on the cell of every point.
        self._inv = 1.0 / cell_size
        self._cells: dict[tuple[int, int], dict[int, tuple[float, float]]] = {}
        self._count = 0
        # Conservative bounding box over every point ever inserted; it is
        # never shrunk on removal, so all live points always lie inside.
        # ``any_near_rect`` uses it to answer big-rectangle probes in O(1).
        self._minx = math.inf
        self._miny = math.inf
        self._maxx = -math.inf
        self._maxy = -math.inf

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    def insert(self, oid: int, x: float, y: float) -> None:
        """Add a point (ids must be unique; re-insertion is an error)."""
        cell = (math.floor(x * self._inv), math.floor(y * self._inv))
        bucket = self._cells.get(cell)
        if bucket is None:
            self._cells[cell] = {oid: (x, y)}
        elif oid in bucket:
            raise QueryError(f"object {oid} already in grid")
        else:
            bucket[oid] = (x, y)
        self._count += 1
        if x < self._minx:
            self._minx = x
        if x > self._maxx:
            self._maxx = x
        if y < self._miny:
            self._miny = y
        if y > self._maxy:
            self._maxy = y

    def remove(self, oid: int, x: float, y: float) -> None:
        """Remove a previously inserted point."""
        cell = (math.floor(x * self._inv), math.floor(y * self._inv))
        bucket = self._cells.get(cell)
        if bucket is None or oid not in bucket:
            raise QueryError(f"object {oid} not in grid")
        del bucket[oid]
        if not bucket:
            del self._cells[cell]
        self._count -= 1

    def discard(self, oid: int, x: float, y: float) -> bool:
        """Remove a point if present; returns whether it was there."""
        cell = (math.floor(x * self._inv), math.floor(y * self._inv))
        bucket = self._cells.get(cell)
        if bucket is None or oid not in bucket:
            return False
        del bucket[oid]
        if not bucket:
            del self._cells[cell]
        self._count -= 1
        return True

    def bulk_insert(self, points: Iterable[tuple[int, float, float]]) -> None:
        cells = self._cells
        inv = self._inv
        floor = math.floor
        added = 0
        minx, miny = self._minx, self._miny
        maxx, maxy = self._maxx, self._maxy
        for oid, x, y in points:
            cell = (floor(x * inv), floor(y * inv))
            bucket = cells.get(cell)
            if bucket is None:
                cells[cell] = {oid: (x, y)}
            elif oid in bucket:
                raise QueryError(f"object {oid} already in grid")
            else:
                bucket[oid] = (x, y)
            added += 1
            if x < minx:
                minx = x
            if x > maxx:
                maxx = x
            if y < miny:
                miny = y
            if y > maxy:
                maxy = y
        self._count += added
        self._minx, self._miny = minx, miny
        self._maxx, self._maxy = maxx, maxy

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def near_rect(
        self, rect: Rect, radius: float
    ) -> list[tuple[int, float, float]]:
        """Points whose distance to ``rect`` is at most ``radius``."""
        (lx, ly), (hx, hy) = rect.low, rect.high
        inv = self._inv
        floor = math.floor
        cx0 = floor((lx - radius) * inv)
        cx1 = floor((hx + radius) * inv)
        cy0 = floor((ly - radius) * inv)
        cy1 = floor((hy + radius) * inv)
        cells = self._cells
        r2 = radius * radius
        out: list[tuple[int, float, float]] = []
        # Large rects cover more cells than exist — walk the occupied
        # cells instead of the (mostly empty) cell range.
        if (cx1 - cx0 + 1) * (cy1 - cy0 + 1) > len(cells):
            buckets = [
                bucket
                for (cx, cy), bucket in cells.items()
                if cx0 <= cx <= cx1 and cy0 <= cy <= cy1
            ]
        else:
            buckets = [
                bucket
                for cx in range(cx0, cx1 + 1)
                for cy in range(cy0, cy1 + 1)
                if (bucket := cells.get((cx, cy)))
            ]
        for bucket in buckets:
            for oid, (x, y) in bucket.items():
                dx = lx - x if x < lx else (x - hx if x > hx else 0.0)
                dy = ly - y if y < ly else (y - hy if y > hy else 0.0)
                if dx * dx + dy * dy <= r2:
                    out.append((oid, x, y))
        return out

    def any_near_rect(self, rect: Rect, radius: float) -> bool:
        """True when at least one point is within ``radius`` of ``rect``."""
        if self._count == 0:
            return False
        (lx, ly), (hx, hy) = rect.low, rect.high
        # O(1) fast path: the rectangle itself contains the (conservative)
        # bounding box of all points, hence some live point at distance 0.
        # High-level index entries — whose rectangles span most of the
        # space — hit this constantly; the cell walk below costs
        # O(occupied cells) for them.  (The *undilated* rect keeps the
        # test exact: dilating by ``radius`` in L∞ would over-approximate
        # the Euclidean distance near corners.)
        if (
            lx <= self._minx
            and ly <= self._miny
            and self._maxx <= hx
            and self._maxy <= hy
        ):
            return True
        inv = self._inv
        floor = math.floor
        cx0 = floor((lx - radius) * inv)
        cx1 = floor((hx + radius) * inv)
        cy0 = floor((ly - radius) * inv)
        cy1 = floor((hy + radius) * inv)
        cells = self._cells
        r2 = radius * radius
        if (cx1 - cx0 + 1) * (cy1 - cy0 + 1) > len(cells):
            candidates = (
                bucket
                for (cx, cy), bucket in cells.items()
                if cx0 <= cx <= cx1 and cy0 <= cy <= cy1
            )
        else:
            candidates = (
                bucket
                for cx in range(cx0, cx1 + 1)
                for cy in range(cy0, cy1 + 1)
                if (bucket := cells.get((cx, cy)))
            )
        for bucket in candidates:
            for x, y in bucket.values():
                dx = lx - x if x < lx else (x - hx if x > hx else 0.0)
                dy = ly - y if y < ly else (y - hy if y > hy else 0.0)
                if dx * dx + dy * dy <= r2:
                    return True
        return False

    def pop_within(self, x: float, y: float, radius: float) -> list[int]:
        """Remove and return the ids of all points within ``radius``.

        Fused variant of ``near_point`` + per-hit ``remove`` for the
        batched STDS scan: one bucket pass finds and deletes the hits.
        """
        inv = self._inv
        floor = math.floor
        cx1 = floor((x + radius) * inv)
        cy0 = floor((y - radius) * inv)
        cy1 = floor((y + radius) * inv)
        cells = self._cells
        r2 = radius * radius
        out: list[int] = []
        for cx in range(floor((x - radius) * inv), cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                cell = (cx, cy)
                bucket = cells.get(cell)
                if not bucket:
                    continue
                hits = None
                for oid, (px, py) in bucket.items():
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy <= r2:
                        if hits is None:
                            hits = [oid]
                        else:
                            hits.append(oid)
                if hits:
                    for oid in hits:
                        del bucket[oid]
                    if not bucket:
                        del cells[cell]
                    self._count -= len(hits)
                    out += hits
        return out

    def near_point(
        self, x: float, y: float, radius: float
    ) -> list[tuple[int, float, float]]:
        """Points within Euclidean ``radius`` of ``(x, y)``."""
        inv = self._inv
        floor = math.floor
        cx1 = floor((x + radius) * inv)
        cy0 = floor((y - radius) * inv)
        cy1 = floor((y + radius) * inv)
        cells = self._cells
        r2 = radius * radius
        out: list[tuple[int, float, float]] = []
        for cx in range(floor((x - radius) * inv), cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                bucket = cells.get((cx, cy))
                if not bucket:
                    continue
                for oid, (px, py) in bucket.items():
                    dx = px - x
                    dy = py - y
                    if dx * dx + dy * dy <= r2:
                        out.append((oid, px, py))
        return out
