"""Uniform spatial grid for the batched STDS score computation.

The batched variant of Algorithm 2 ("Performance improvements",
Section 5) expands an index entry when *at least one* pending data object
is within range, and assigns scores to every in-range pending object when
a feature pops.  Both tests need "which pending objects are near this
rectangle/point" — a uniform grid with cell size ``r`` answers them in
expected O(1) per candidate.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator

from repro.errors import QueryError
from repro.geometry.rect import Rect


class SpatialGrid:
    """Hash grid of points in the unit square, keyed by integer cells."""

    def __init__(self, cell_size: float) -> None:
        if cell_size <= 0.0:
            raise QueryError(f"cell size must be positive, got {cell_size}")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], dict[int, tuple[float, float]]] = {}
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    def insert(self, oid: int, x: float, y: float) -> None:
        """Add a point (ids must be unique; re-insertion is an error)."""
        cell = self._cell_of(x, y)
        bucket = self._cells.setdefault(cell, {})
        if oid in bucket:
            raise QueryError(f"object {oid} already in grid")
        bucket[oid] = (x, y)
        self._count += 1

    def remove(self, oid: int, x: float, y: float) -> None:
        """Remove a previously inserted point."""
        cell = self._cell_of(x, y)
        bucket = self._cells.get(cell)
        if bucket is None or oid not in bucket:
            raise QueryError(f"object {oid} not in grid")
        del bucket[oid]
        if not bucket:
            del self._cells[cell]
        self._count -= 1

    def bulk_insert(self, points: Iterable[tuple[int, float, float]]) -> None:
        for oid, x, y in points:
            self.insert(oid, x, y)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def near_rect(
        self, rect: Rect, radius: float
    ) -> Iterator[tuple[int, float, float]]:
        """Points whose distance to ``rect`` is at most ``radius``."""
        expanded = Rect(
            (rect.low[0] - radius, rect.low[1] - radius),
            (rect.high[0] + radius, rect.high[1] + radius),
        )
        for oid, x, y in self._candidates(expanded):
            if rect.mindist((x, y)) <= radius:
                yield oid, x, y

    def any_near_rect(self, rect: Rect, radius: float) -> bool:
        """True when at least one point is within ``radius`` of ``rect``."""
        for _ in self.near_rect(rect, radius):
            return True
        return False

    def near_point(
        self, x: float, y: float, radius: float
    ) -> Iterator[tuple[int, float, float]]:
        """Points within Euclidean ``radius`` of ``(x, y)``."""
        expanded = Rect((x - radius, y - radius), (x + radius, y + radius))
        r2 = radius * radius
        for oid, px, py in self._candidates(expanded):
            if (px - x) ** 2 + (py - y) ** 2 <= r2:
                yield oid, px, py

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        return (math.floor(x / self.cell_size), math.floor(y / self.cell_size))

    def _candidates(self, rect: Rect) -> Iterator[tuple[int, float, float]]:
        cx0, cy0 = self._cell_of(rect.low[0], rect.low[1])
        cx1, cy1 = self._cell_of(rect.high[0], rect.high[1])
        cells = self._cells
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                bucket = cells.get((cx, cy))
                if bucket:
                    for oid, (x, y) in list(bucket.items()):
                        yield oid, x, y
