"""Incremental (streaming) result delivery for STPS.

Section 6.2: "the remaining data objects p have a score τ(p) = s(C) and
can be returned to the user incrementally."  This module exposes exactly
that: a generator that yields ranked results one by one, reading no more
of the indexes than needed for the results actually consumed — useful
for pagination ("show 10 more") without re-running the query.

Supported for the range and nearest-neighbor variants, whose combination
order delivers exact final scores immediately.  The influence variant is
not streamable this way (an object's score can improve when later
combinations are examined), so it raises :class:`QueryError`.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.core.combinations import PULL_PRIORITIZED, CombinationIterator
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import ResultItem
from repro.core.voronoi import DATA_SPACE, clip_voronoi_cell
from repro.errors import QueryError
from repro.geometry.polygon import ConvexPolygon
from repro.index.feature_tree import FeatureTree
from repro.index.object_rtree import ObjectRTree


def stps_stream(
    object_tree: ObjectRTree,
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    pulling: str = PULL_PRIORITIZED,
) -> Iterator[ResultItem]:
    """Yield results in rank order, lazily; ignores ``query.k``.

    Iteration ends when every data object has been emitted.  Ties within
    one combination are emitted in ascending object id.
    """
    if query.variant is Variant.INFLUENCE:
        raise QueryError(
            "the influence variant cannot stream exact ranks incrementally; "
            "use QueryProcessor.query() instead"
        )
    if len(feature_trees) != query.c:
        raise QueryError(
            f"query addresses {query.c} feature sets, processor has "
            f"{len(feature_trees)}"
        )
    if query.variant is Variant.RANGE:
        yield from _stream_range(object_tree, feature_trees, query, pulling)
    else:
        yield from _stream_nearest(object_tree, feature_trees, query, pulling)


def _stream_range(object_tree, feature_trees, query, pulling):
    iterator = CombinationIterator(
        feature_trees, query, enforce_2r=True, pulling=pulling
    )
    seen: set[int] = set()
    while True:
        combo = iterator.next()
        if combo is None:
            return
        if combo.is_all_virtual:
            yield from _zero_tail(object_tree, seen)
            return
        batch = sorted(
            (
                e
                for e in object_tree.within_all(combo.anchors, query.radius)
                if e.oid not in seen
            ),
            key=lambda e: e.oid,
        )
        for e in batch:
            seen.add(e.oid)
            yield ResultItem(e.oid, combo.score, e.x, e.y)


def _stream_nearest(object_tree, feature_trees, query, pulling):
    iterator = CombinationIterator(
        feature_trees, query, enforce_2r=False, pulling=pulling
    )
    scorers = [
        tree.make_scorer(mask, query.lam)
        for tree, mask in zip(feature_trees, query.keyword_masks)
    ]
    unit_region = ConvexPolygon.from_rect(DATA_SPACE)
    cell_caches: list[dict[int, ConvexPolygon]] = [{} for _ in feature_trees]
    seen: set[int] = set()
    while True:
        combo = iterator.next()
        if combo is None:
            return
        if combo.is_all_virtual:
            yield from _zero_tail(object_tree, seen)
            return
        region = unit_region
        for i, feature in enumerate(combo.features):
            if feature.is_virtual:
                continue
            cell = cell_caches[i].get(feature.fid)
            if cell is None:
                cell = clip_voronoi_cell(
                    feature_trees[i],
                    scorers[i],
                    (feature.x, feature.y),
                    feature.fid,
                    unit_region,
                )
                cell_caches[i][feature.fid] = cell
            region = region.intersection(cell)
            if region.is_empty:
                break
        if region.is_empty:
            continue
        batch = sorted(
            (e for e in object_tree.in_polygon(region) if e.oid not in seen),
            key=lambda e: e.oid,
        )
        for e in batch:
            seen.add(e.oid)
            yield ResultItem(e.oid, combo.score, e.x, e.y)


def _zero_tail(object_tree, seen):
    remaining = sorted(
        (e.oid, e.x, e.y)
        for e in object_tree.all_entries()
        if e.oid not in seen
    )
    for oid, x, y in remaining:
        seen.add(oid)
        yield ResultItem(oid, 0.0, x, y)
