"""Incremental (streaming) result delivery for STPS.

Section 6.2: "the remaining data objects p have a score τ(p) = s(C) and
can be returned to the user incrementally."  This module exposes exactly
that: a generator that yields ranked results one by one, reading no more
of the indexes than needed for the results actually consumed — useful
for pagination ("show 10 more") without re-running the query.

Supported for the range and nearest-neighbor variants, whose combination
order delivers exact final scores immediately.  The influence variant is
not streamable this way (an object's score can improve when later
combinations are examined), so it raises :class:`QueryError`.

The second half of the module is the dual problem — a *standing* query
over changing data instead of a changing cursor over standing data:
:class:`TopKMonitor` keeps one query's top-k current while a live
dataset (:mod:`repro.live`) absorbs a mutation stream, reporting entry /
exit / rescore deltas after each refresh (the continuous-monitoring
workload of *Efficient Top-K Temporal Spatial Keyword Search*,
PAPERS.md).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.combinations import PULL_PRIORITIZED, CombinationIterator
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import ResultItem
from repro.core.voronoi import DATA_SPACE, clip_voronoi_cell
from repro.errors import QueryError
from repro.geometry.polygon import ConvexPolygon
from repro.index.feature_tree import FeatureTree
from repro.index.object_rtree import ObjectRTree
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing


def stps_stream(
    object_tree: ObjectRTree,
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    pulling: str = PULL_PRIORITIZED,
) -> Iterator[ResultItem]:
    """Yield results in rank order, lazily; ignores ``query.k``.

    Iteration ends when every data object has been emitted.  Ties within
    one combination are emitted in ascending object id.
    """
    if query.variant is Variant.INFLUENCE:
        raise QueryError(
            "the influence variant cannot stream exact ranks incrementally; "
            "use QueryProcessor.query() instead"
        )
    if len(feature_trees) != query.c:
        raise QueryError(
            f"query addresses {query.c} feature sets, processor has "
            f"{len(feature_trees)}"
        )
    if query.variant is Variant.RANGE:
        yield from _stream_range(object_tree, feature_trees, query, pulling)
    else:
        yield from _stream_nearest(object_tree, feature_trees, query, pulling)


def _stream_range(object_tree, feature_trees, query, pulling):
    iterator = CombinationIterator(
        feature_trees, query, enforce_2r=True, pulling=pulling
    )
    seen: set[int] = set()
    while True:
        combo = iterator.next()
        if combo is None:
            return
        if combo.is_all_virtual:
            yield from _zero_tail(object_tree, seen)
            return
        batch = sorted(
            (
                e
                for e in object_tree.within_all(combo.anchors, query.radius)
                if e.oid not in seen
            ),
            key=lambda e: e.oid,
        )
        for e in batch:
            seen.add(e.oid)
            yield ResultItem(e.oid, combo.score, e.x, e.y)


def _stream_nearest(object_tree, feature_trees, query, pulling):
    iterator = CombinationIterator(
        feature_trees, query, enforce_2r=False, pulling=pulling
    )
    scorers = [
        tree.make_scorer(mask, query.lam)
        for tree, mask in zip(feature_trees, query.keyword_masks)
    ]
    unit_region = ConvexPolygon.from_rect(DATA_SPACE)
    cell_caches: list[dict[int, ConvexPolygon]] = [{} for _ in feature_trees]
    seen: set[int] = set()
    while True:
        combo = iterator.next()
        if combo is None:
            return
        if combo.is_all_virtual:
            yield from _zero_tail(object_tree, seen)
            return
        region = unit_region
        for i, feature in enumerate(combo.features):
            if feature.is_virtual:
                continue
            cell = cell_caches[i].get(feature.fid)
            if cell is None:
                cell = clip_voronoi_cell(
                    feature_trees[i],
                    scorers[i],
                    (feature.x, feature.y),
                    feature.fid,
                    unit_region,
                )
                cell_caches[i][feature.fid] = cell
            region = region.intersection(cell)
            if region.is_empty:
                break
        if region.is_empty:
            continue
        batch = sorted(
            (e for e in object_tree.in_polygon(region) if e.oid not in seen),
            key=lambda e: e.oid,
        )
        for e in batch:
            seen.add(e.oid)
            yield ResultItem(e.oid, combo.score, e.x, e.y)


def _zero_tail(object_tree, seen):
    remaining = sorted(
        (e.oid, e.x, e.y)
        for e in object_tree.all_entries()
        if e.oid not in seen
    )
    for oid, x, y in remaining:
        seen.add(oid)
        yield ResultItem(oid, 0.0, x, y)


# ----------------------------------------------------------------------
# continuous monitoring over a live dataset
# ----------------------------------------------------------------------
def monitor_refreshes_metric() -> "_metrics.MetricFamily":
    """Monitor refreshes that actually re-ran the standing query.

    Lazily resolved against the current default registry (same pattern
    as :func:`repro.shard.sharded_processor.shard_queries_metric`).
    """
    return _metrics.registry().counter(
        "repro_live_monitor_refreshes_total",
        "Standing-query re-executions by a TopKMonitor.",
        (),
    )


def monitor_changes_metric() -> "_metrics.MetricFamily":
    """Top-k membership changes observed, by kind."""
    return _metrics.registry().counter(
        "repro_live_monitor_changes_total",
        "Top-k deltas reported by TopKMonitor refreshes.",
        ("kind",),
    )


@dataclass(frozen=True, slots=True)
class TopKDelta:
    """What one :meth:`TopKMonitor.refresh` changed in the top-k.

    ``entered``/``exited`` are items that joined/left the top-k;
    ``rescored`` pairs ``(before, after)`` for objects that stayed but
    whose item changed (score or reported position).  ``version`` is the
    live dataset's mutation counter at refresh time.
    """

    version: int
    entered: tuple[ResultItem, ...] = ()
    exited: tuple[ResultItem, ...] = ()
    rescored: tuple[tuple[ResultItem, ResultItem], ...] = field(default=())

    @property
    def changed(self) -> bool:
        return bool(self.entered or self.exited or self.rescored)


class TopKMonitor:
    """A standing top-k query kept current over a mutating live dataset.

    ``live`` is any object with the live-dataset surface —
    ``query(query, **kwargs)``, ``apply(mutation)``, and a monotone
    ``version`` counter (:class:`~repro.live.LiveDataset` /
    :class:`~repro.live.LiveShardedDataset`)::

        monitor = TopKMonitor(live, query)          # runs the baseline
        live.move_feature(0, fid, x, y)
        delta = monitor.refresh()                    # entered/exited/rescored
        monitor.results                              # current top-k items

    Construction runs the baseline query (its items are *not* reported
    as entries — deltas describe changes after the monitor started).
    :meth:`refresh` skips the query entirely when ``version`` has not
    moved, so polling an idle dataset is free; :meth:`drain` folds a
    batch of :class:`~repro.live.Mutation` events and refreshes once —
    the continuous-query loop over a feature stream.
    """

    def __init__(self, live, query: PreferenceQuery, **query_kwargs) -> None:
        self.live = live
        self.query = query
        self.query_kwargs = query_kwargs
        self._version: int = -1
        self._current: tuple[ResultItem, ...] = ()
        self._baseline()

    @property
    def results(self) -> tuple[ResultItem, ...]:
        """The top-k as of the last refresh (rank order)."""
        return self._current

    @property
    def version(self) -> int:
        """Dataset mutation version the current results reflect."""
        return self._version

    def _baseline(self) -> None:
        self._version = self.live.version
        self._current = tuple(
            self.live.query(self.query, **self.query_kwargs).items
        )
        monitor_refreshes_metric().inc()

    def refresh(self, force: bool = False) -> TopKDelta:
        """Re-run the standing query if the dataset moved; report deltas."""
        version = self.live.version
        if version == self._version and not force:
            return TopKDelta(version)
        with _tracing.span(
            "live.monitor.refresh", cat="live", version=version
        ):
            items = tuple(
                self.live.query(self.query, **self.query_kwargs).items
            )
        monitor_refreshes_metric().inc()
        before = {item.oid: item for item in self._current}
        after = {item.oid: item for item in items}
        entered = tuple(i for i in items if i.oid not in before)
        exited = tuple(i for i in self._current if i.oid not in after)
        rescored = tuple(
            (before[oid], after[oid])
            for oid in sorted(before.keys() & after.keys())
            if before[oid] != after[oid]
        )
        self._version = version
        self._current = items
        changes = monitor_changes_metric()
        if entered:
            changes.labels(kind="entered").inc(len(entered))
        if exited:
            changes.labels(kind="exited").inc(len(exited))
        if rescored:
            changes.labels(kind="rescored").inc(len(rescored))
        return TopKDelta(version, entered, exited, rescored)

    def drain(self, mutations: Iterable) -> TopKDelta:
        """Apply a stream of mutation events, then refresh once."""
        for mutation in mutations:
            self.live.apply(mutation)
        return self.refresh()
