"""Query definitions for top-k spatio-textual preference queries.

Problem 1 of the paper: a query is defined by an integer ``k``, a radius
``r``, a smoothing parameter ``λ`` and one keyword set ``W_i`` per feature
set.  Section 7 adds two score variants (influence, nearest neighbor) that
reuse the same query shape; the variant is part of the query here.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.errors import QueryError
from repro.model.dataset import FeatureDataset


class Variant(enum.Enum):
    """Score variant (Definitions 2, 6 and 7)."""

    RANGE = "range"
    INFLUENCE = "influence"
    NEAREST = "nearest"


@dataclass(frozen=True, slots=True)
class PreferenceQuery:
    """A top-k spatio-textual preference query.

    ``keyword_masks`` holds one keyword bit mask per feature set, aligned
    with the processor's feature-tree list; build it from strings with
    :meth:`from_terms`.
    """

    k: int
    radius: float
    lam: float
    keyword_masks: tuple[int, ...]
    variant: Variant = Variant.RANGE

    def __post_init__(self) -> None:
        if self.k < 0:
            raise QueryError(f"k must be >= 0, got {self.k}")
        if self.radius <= 0.0:
            raise QueryError(f"radius must be positive, got {self.radius}")
        if not 0.0 <= self.lam <= 1.0:
            raise QueryError(f"lambda must be in [0, 1], got {self.lam}")
        if not self.keyword_masks:
            raise QueryError("query needs at least one feature set")
        if any(m < 0 for m in self.keyword_masks):
            raise QueryError("negative keyword mask")
        if any(m == 0 for m in self.keyword_masks):
            raise QueryError(
                "every feature set needs at least one query keyword "
                "(Definition 2 requires sim > 0, so an empty keyword set "
                "makes the feature set unsatisfiable)"
            )

    @property
    def c(self) -> int:
        """Number of feature sets addressed by the query."""
        return len(self.keyword_masks)

    @classmethod
    def from_terms(
        cls,
        k: int,
        radius: float,
        lam: float,
        keywords: Sequence[Iterable[str]],
        feature_sets: Sequence[FeatureDataset],
        variant: Variant = Variant.RANGE,
    ) -> "PreferenceQuery":
        """Build a query from keyword strings.

        ``keywords[i]`` is resolved against ``feature_sets[i]``'s
        vocabulary; unknown terms are dropped (they can never match), and
        a feature set whose keywords are all unknown raises
        :class:`QueryError`.
        """
        if len(keywords) != len(feature_sets):
            raise QueryError(
                f"{len(keywords)} keyword sets for {len(feature_sets)} "
                "feature sets"
            )
        masks = []
        for i, (terms, dataset) in enumerate(zip(keywords, feature_sets)):
            terms = list(terms)
            mask = 0
            for term_id in dataset.vocabulary.encode(terms):
                mask |= 1 << term_id
            if mask == 0:
                raise QueryError(
                    f"feature set {i}: none of the keywords {terms!r} are "
                    "in the vocabulary"
                )
            masks.append(mask)
        return cls(k, radius, lam, tuple(masks), variant)

    def with_variant(self, variant: Variant) -> "PreferenceQuery":
        """Copy of this query under a different score variant."""
        return PreferenceQuery(
            self.k, self.radius, self.lam, self.keyword_masks, variant
        )
