"""Unified query processor — the library's main entry point.

Couples one object R-tree with one feature index per feature set and
dispatches a :class:`~repro.core.query.PreferenceQuery` to the right
algorithm/variant implementation (the "unified framework" of Section 7).

Typical use::

    processor = QueryProcessor.build(objects, [restaurants, cafes])
    result = processor.query(
        PreferenceQuery.from_terms(
            k=10, radius=0.01, lam=0.5,
            keywords=[["italian", "pizza"], ["espresso", "muffins"]],
            feature_sets=[restaurants, cafes],
        )
    )
"""

from __future__ import annotations

import logging
import time
from collections.abc import Sequence

from repro.core.combinations import PULL_PRIORITIZED
from repro.core.influence import stps_influence
from repro.core.nearest import stps_nearest
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats
from repro.core.stds import DEFAULT_BATCH_SIZE, stds
from repro.core.stps import stps
from repro.errors import QueryError
from repro.index.feature_tree import FeatureTree
from repro.index.ir2 import IR2Tree
from repro.index.irtree import IRTree
from repro.index.object_rtree import ObjectRTree
from repro.index.srt import SRTIndex
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.obs import explain as _explain
from repro.obs import flight as _flight
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

logger = logging.getLogger(__name__)

ALGORITHM_STPS = "stps"
ALGORITHM_STDS = "stds"
ALGORITHM_ISS = "iss"

INDEX_CLASSES = {"srt": SRTIndex, "ir2": IR2Tree, "irtree": IRTree}

_QUERY_LABELS = ("algorithm", "variant", "pulling")
#: Query latency histogram (log buckets) — one series per
#: algorithm/variant/pulling combination.  Always on: one observe per
#: query, independent of the tracing flag.
QUERY_SECONDS = _metrics.registry().histogram(
    "repro_query_seconds", "End-to-end query latency.", _QUERY_LABELS
)
QUERIES_TOTAL = _metrics.registry().counter(
    "repro_queries_total", "Queries executed.", _QUERY_LABELS
)
COMBINATIONS_TOTAL = _metrics.registry().counter(
    "repro_combinations_total",
    "Valid combinations released (Algorithm 4).",
    _QUERY_LABELS,
)
OBJECTS_SCORED_TOTAL = _metrics.registry().counter(
    "repro_objects_scored_total",
    "Data objects scored or retrieved.",
    _QUERY_LABELS,
)


class QueryProcessor:
    """Runs preference queries over a fixed set of indexes."""

    def __init__(
        self,
        object_tree: ObjectRTree,
        feature_trees: Sequence[FeatureTree],
    ) -> None:
        if not feature_trees:
            raise QueryError("need at least one feature index")
        self.object_tree = object_tree
        self.feature_trees = list(feature_trees)

    @classmethod
    def build(
        cls,
        objects: ObjectDataset,
        feature_sets: Sequence[FeatureDataset],
        index: str = "srt",
        page_size: int = 4096,
        buffer_pages: int = 256,
        method: str = "bulk",
    ) -> "QueryProcessor":
        """Build all indexes from raw datasets.

        ``index`` selects the feature index: ``"srt"`` (the paper's
        SRT-index, default), ``"ir2"`` (the modified IR²-tree baseline)
        or ``"irtree"`` (IR-tree-style extension baseline: spatial
        clustering with exact summaries).
        """
        if index not in INDEX_CLASSES:
            raise QueryError(
                f"unknown index {index!r}; choose from {sorted(INDEX_CLASSES)}"
            )
        from repro.storage.pagefile import MemoryPageFile

        object_tree = ObjectRTree.build(
            objects,
            pagefile=MemoryPageFile(page_size),
            buffer_pages=buffer_pages,
            method="hilbert" if method == "bulk" else method,
        )
        tree_cls = INDEX_CLASSES[index]
        feature_trees = [
            tree_cls.build(
                fs,
                pagefile=MemoryPageFile(page_size),
                buffer_pages=buffer_pages,
                method=method if method in ("bulk", "insert") else "bulk",
            )
            for fs in feature_sets
        ]
        return cls(object_tree, feature_trees)

    def trees(self):
        """Every index this processor reads: object tree + feature trees.

        Duck-typed accessor shared with
        :class:`~repro.shard.ShardedQueryProcessor` so the executor can
        attribute I/O without knowing the processor flavour.
        """
        return [self.object_tree, *self.feature_trees]

    def query(
        self,
        query: PreferenceQuery,
        algorithm: str = ALGORITHM_STPS,
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        floor: float = float("-inf"),
        collector=None,
    ) -> QueryResult:
        """Execute a query with the chosen algorithm.

        ``algorithm`` is ``"stps"`` (default), ``"stds"``, or ``"iss"``
        (Influence Score Search, the combination-free extension algorithm
        for the influence variant); the score variant comes from the
        query itself.

        ``batch_size`` and ``parallelism`` tune the STDS scan (chunk size
        of the batched Algorithm 2 and the number of threads scoring a
        chunk against the feature sets concurrently); they are ignored by
        the other algorithms.  Results never depend on either knob.

        ``floor`` is an externally known lower bound on the caller's
        merged k-th best score (the sharded engine's cross-shard
        threshold; see :mod:`repro.shard`).  Items scoring strictly below
        it may be omitted; items at or above it are always exact.  The
        default (``-inf``) disables the cut.  ISS ignores the hint.

        Every call observes the latency histogram
        ``repro_query_seconds{algorithm,variant,pulling}`` in the default
        metrics registry and, when tracing is on (see
        :mod:`repro.obs.tracing`), wraps the execution in a
        ``query.<algorithm>`` span; ``result.stats.phase_times`` then
        carries the per-phase breakdown.

        Each call runs under a *trace id* (a fresh one, or the ambient
        id when called inside an active trace scope — the sharded
        fan-out relies on this) stamped onto ``result.stats.trace_id``,
        every trace span, any flight-recorder entry, and structured
        logs, so all diagnostics for one query join on one key.

        ``collector`` (a
        :class:`~repro.obs.explain.DiagnosticsCollector`) turns on
        EXPLAIN mode: the algorithm records per-feature-set node
        accesses and prunes, combination accept/reject decisions, and
        threshold trajectories into it.  Prefer :meth:`explain`, which
        wraps this.  When None, the shared no-op collector is used and
        the hot paths pay one attribute check.
        """
        t0 = time.perf_counter()
        trace_id = _tracing.current_trace_id() or _tracing.new_trace_id()
        col = _explain.resolve(collector)
        with _tracing.trace_scope(trace_id):
            with _tracing.span(
                f"query.{algorithm}",
                variant=query.variant.value,
                k=query.k,
                c=query.c,
            ):
                try:
                    result = self._dispatch(
                        query, algorithm, pulling, batch_size, parallelism,
                        floor, col,
                    )
                except Exception as exc:
                    if _flight.enabled:
                        _flight.record_error(
                            query, algorithm, pulling, trace_id,
                            time.perf_counter() - t0, exc,
                        )
                    raise
            # Still inside the trace scope: the histogram observation
            # must see the query's trace id so exemplars can attach.
            elapsed = time.perf_counter() - t0
            labels = {
                "algorithm": algorithm,
                "variant": query.variant.value,
                "pulling": pulling,
            }
            QUERY_SECONDS.labels(**labels).observe(elapsed)
        QUERIES_TOTAL.labels(**labels).inc()
        if result.stats.combinations:
            COMBINATIONS_TOTAL.labels(**labels).inc(result.stats.combinations)
        if result.stats.objects_scored:
            OBJECTS_SCORED_TOTAL.labels(**labels).inc(
                result.stats.objects_scored
            )
        result.stats.trace_id = trace_id
        if col.active:
            col.finalize(
                query, algorithm, pulling, trace_id, elapsed, result.stats
            )
        if _flight.enabled:
            _flight.maybe_record(
                query, algorithm, pulling, trace_id, elapsed,
                stats=result.stats,
                plan=col.plan() if col.active else None,
            )
        return result

    def explain(
        self,
        query: PreferenceQuery,
        algorithm: str = ALGORITHM_STPS,
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        floor: float = float("-inf"),
    ) -> "_explain.ExplainReport":
        """EXPLAIN ANALYZE: execute the query and return plan + result.

        The returned :class:`~repro.obs.explain.ExplainReport` carries a
        :class:`~repro.obs.explain.QueryPlan` — per-feature-set node
        accesses vs. prunes with the ``ŝ(e)`` bound values, combinations
        assembled vs. rejected by Lemma 1, the τ threshold trajectory
        per pulling round — and the ordinary :class:`QueryResult` (the
        query really executes; items are identical to :meth:`query`).
        Render with ``report.plan.render()`` or ``report.plan.to_json()``.
        """
        collector = _explain.DiagnosticsCollector()
        result = self.query(
            query,
            algorithm=algorithm,
            pulling=pulling,
            batch_size=batch_size,
            parallelism=parallelism,
            floor=floor,
            collector=collector,
        )
        return _explain.ExplainReport(plan=collector.plan(), result=result)

    def _dispatch(
        self,
        query: PreferenceQuery,
        algorithm: str,
        pulling: str,
        batch_size: int,
        parallelism: int | None,
        floor: float = float("-inf"),
        collector=_explain.NULL_COLLECTOR,
    ) -> QueryResult:
        """Route to the algorithm/variant implementation (uninstrumented)."""
        if algorithm not in (ALGORITHM_STPS, ALGORITHM_STDS, ALGORITHM_ISS):
            raise QueryError(
                f"unknown algorithm {algorithm!r}; choose 'stps', 'stds' "
                "or 'iss'"
            )
        if query.k == 0:
            # k=0 asks for nothing: the empty result is exact and
            # (vacuously) tie-complete for every engine.  Short-circuit
            # here so no engine has to reason about an empty top-k heap.
            return QueryResult([], QueryStats())
        if algorithm == ALGORITHM_STDS:
            return stds(
                self.object_tree,
                self.feature_trees,
                query,
                batch_size=batch_size,
                parallelism=parallelism,
                floor=floor,
                collector=collector,
            )
        if algorithm == ALGORITHM_ISS:
            from repro.core.influence_search import influence_search

            return influence_search(
                self.object_tree, self.feature_trees, query,
                collector=collector,
            )
        if query.variant is Variant.RANGE:
            return stps(
                self.object_tree, self.feature_trees, query, pulling,
                floor=floor, collector=collector,
            )
        if query.variant is Variant.INFLUENCE:
            return stps_influence(
                self.object_tree, self.feature_trees, query, pulling,
                floor=floor, collector=collector,
            )
        return stps_nearest(
            self.object_tree, self.feature_trees, query, pulling, floor=floor,
            collector=collector,
        )

    def query_many(
        self,
        queries,
        algorithm: str = ALGORITHM_STPS,
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        max_workers: int = 4,
        dedup: bool = True,
        on_error: str = "raise",
    ) -> list[QueryResult]:
        """Execute many queries concurrently; results in input order.

        Convenience wrapper around
        :class:`~repro.core.executor.QueryExecutor` for one-shot batches;
        construct the executor directly to reuse its thread pool across
        batches.  Each result's items are identical to a serial
        :meth:`query` call for the same query.  ``dedup`` (default on)
        executes duplicate queries once and shares the result object.
        ``on_error="return"`` isolates failing queries as ``None``
        positions instead of raising (see
        :meth:`QueryExecutor.query_many`).
        """
        from repro.core.executor import QueryExecutor

        with QueryExecutor(self, max_workers=max_workers) as executor:
            return executor.query_many(
                queries,
                algorithm=algorithm,
                pulling=pulling,
                batch_size=batch_size,
                parallelism=parallelism,
                dedup=dedup,
                on_error=on_error,
            )

    def stream(
        self,
        query: PreferenceQuery,
        pulling: str = PULL_PRIORITIZED,
    ):
        """Yield results in rank order, lazily (range / NN variants).

        Unlike :meth:`query`, iteration is unbounded by ``k``: keep
        consuming for "next page" semantics.  See
        :mod:`repro.core.streaming`.
        """
        from repro.core.streaming import stps_stream

        return stps_stream(self.object_tree, self.feature_trees, query, pulling)

    def clear_buffers(self) -> dict[str, int]:
        """Drop all cached pages and decoded nodes (cold-cache runs).

        Returns what was dropped: ``{"pages": ..., "nodes": ...}`` summed
        over the object tree and every feature tree.
        """
        dropped = {"pages": 0, "nodes": 0}
        for tree in (self.object_tree, *self.feature_trees):
            tree_dropped = tree.clear_cache()
            dropped["pages"] += tree_dropped["pages"]
            dropped["nodes"] += tree_dropped["nodes"]
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "clear_buffers dropped %d pages, %d decoded nodes",
                dropped["pages"], dropped["nodes"],
            )
        return dropped

    def reset_stats(self, metrics: bool = True) -> None:
        """Zero every per-index counter so the next run starts cold.

        Resets the page-file I/O counters *and* the decoded-node-cache
        hit/miss counters of every tree (the latter were previously left
        behind, so "cold" runs started with stale hit rates).  With
        ``metrics`` (default), the process-wide metrics registry is also
        zeroed — registrations survive, series go to zero.
        """
        for tree in (self.object_tree, *self.feature_trees):
            tree.stats.reset()
            tree.node_cache.reset_counters()
        if metrics:
            _metrics.registry().reset()
