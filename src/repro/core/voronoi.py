"""Incremental Voronoi cells over relevant feature objects (Section 7.2).

The nearest-neighbor STPS variant needs, for each feature ``t_i`` of a
combination, the region whose points have ``t_i`` as their nearest
*relevant* feature in ``F_i`` — the Voronoi cell of ``t_i`` with respect
to the relevant subset of ``F_i`` (see DESIGN.md on the relevance
reading of Definition 7).  Cells are built incrementally:

1. retrieve competing relevant features in increasing distance from the
   site via a best-first traversal of the feature index;
2. clip the running convex region by the perpendicular bisector of
   (site, competitor);
3. stop once the next competitor is farther than twice the site's
   distance to the farthest region vertex — no later competitor can clip
   the region (triangle inequality), so the cell is exact.

Starting the clipping from the intersection computed so far (instead of
the whole data space) yields the paper's "incrementally ... discard early
combinations for which the intersection becomes empty" behaviour for
free: an empty running region aborts the remaining cells.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterator

from repro.geometry.halfplane import EPS, bisector_halfplane
from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.index.feature_tree import FeatureScorer, FeatureTree
from repro.index.nodes import FeatureLeafEntry

DATA_SPACE = Rect((0.0, 0.0), (1.0, 1.0))


def nearest_relevant(
    tree: FeatureTree,
    scorer: FeatureScorer,
    site: tuple[float, float],
) -> Iterator[tuple[float, FeatureLeafEntry]]:
    """Relevant features by increasing distance from ``site``.

    Best-first traversal ordered by MINDIST with ``sim = 0`` subtrees
    pruned — the same adaptation the paper applies to Algorithm 2 for the
    NN variant.
    """
    if tree.root_id is None or tree.count == 0:
        return
    heap: list[tuple[float, int, object]] = []
    counter = 0

    def push(entries, is_leaf: bool) -> None:
        nonlocal counter
        for e in entries:
            if not scorer.relevant(e):
                continue
            d = (
                math.hypot(e.x - site[0], e.y - site[1])
                if is_leaf
                else e.rect.mindist(site)
            )
            counter += 1
            heapq.heappush(heap, (d, counter, e))

    root = tree.read_node(tree.root_id)
    push(root.entries, root.is_leaf)
    while heap:
        d, _, entry = heapq.heappop(heap)
        if isinstance(entry, FeatureLeafEntry):
            yield d, entry
        else:
            node = tree.read_node(entry.child)
            push(node.entries, node.is_leaf)


def clip_voronoi_cell(
    tree: FeatureTree,
    scorer: FeatureScorer,
    site: tuple[float, float],
    site_fid: int,
    region: ConvexPolygon,
) -> ConvexPolygon:
    """Intersect ``region`` with the relevant-Voronoi cell of ``site``.

    Returns the (possibly empty) convex intersection.  Exact: competitors
    are consumed in increasing distance and retrieval stops only when the
    remaining ones provably cannot clip the region.
    """
    if region.is_empty:
        return region
    for d, competitor in nearest_relevant(tree, scorer, site):
        if competitor.fid == site_fid:
            continue
        if region.is_empty:
            break
        if d > 2.0 * region.max_distance_from(site):
            break
        dx = competitor.x - site[0]
        dy = competitor.y - site[1]
        if abs(dx) < EPS and abs(dy) < EPS:
            # Coincident competitor: the bisector is undefined and the
            # tie is broken in the site's favour (stable by feature id).
            continue
        region = region.clip(
            bisector_halfplane(site, (competitor.x, competitor.y))
        )
    return region


def voronoi_cell(
    tree: FeatureTree,
    scorer: FeatureScorer,
    site: tuple[float, float],
    site_fid: int,
    data_space: Rect = DATA_SPACE,
) -> ConvexPolygon:
    """Full relevant-Voronoi cell of a feature within the data space."""
    return clip_voronoi_cell(
        tree, scorer, site, site_fid, ConvexPolygon.from_rect(data_space)
    )
