"""STPS for the nearest-neighbor score variant (Section 7.2).

Definition 7: each feature set contributes the score of the data object's
nearest relevant feature.  STPS consequently retrieves, for each
combination ``C``, the data objects whose per-set nearest relevant
neighbor is exactly the corresponding member of ``C`` — the intersection
of the members' Voronoi cells (built incrementally, with early abort on
an empty intersection; see :mod:`repro.core.voronoi`).

Because the relevant-Voronoi cells of each feature set partition the data
space, every data object belongs to exactly one combination, so the
objects of each popped combination carry its exact score and the loop
stops once ``k`` objects are collected.

Per the paper's evaluation (Figures 13-14), the I/O and CPU spent on
Voronoi-cell computation are tracked separately in the query stats (the
striped bar segments).
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from repro.core.combinations import PULL_PRIORITIZED, CombinationIterator
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, StatsTracker, rank_items
from repro.core.voronoi import DATA_SPACE, clip_voronoi_cell
from repro.errors import QueryError
from repro.core.stps import record_features_pulled
from repro.geometry.polygon import ConvexPolygon
from repro.index.feature_tree import FeatureTree
from repro.index.object_rtree import ObjectRTree
from repro.obs import explain as _explain
from repro.obs import tracing as _tracing


def stps_nearest(
    object_tree: ObjectRTree,
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    pulling: str = PULL_PRIORITIZED,
    floor: float = float("-inf"),
    collector=None,
) -> QueryResult:
    """Run STPS for the nearest-neighbor score variant.

    ``floor`` — see :func:`repro.core.stps.stps`: combinations scoring
    strictly below it are never expanded (their objects cannot reach the
    caller's merged top-k); ties at the floor are still processed.
    """
    if query.variant is not Variant.NEAREST:
        raise QueryError(f"stps_nearest() got variant {query.variant}")
    tracker = StatsTracker(
        [object_tree.pagefile] + [t.pagefile for t in feature_trees]
    )
    stats = QueryStats()
    rec = _tracing.recorder()
    collector = _explain.resolve(collector)
    iterator = CombinationIterator(
        feature_trees, query, enforce_2r=False, pulling=pulling, recorder=rec,
        collector=collector,
    )
    scorers = [
        tree.make_scorer(mask, query.lam)
        for tree, mask in zip(feature_trees, query.keyword_masks)
    ]
    unit_region = ConvexPolygon.from_rect(DATA_SPACE)
    cell_caches: list[dict[int, ConvexPolygon]] = [{} for _ in feature_trees]
    seen: set[int] = set()
    collected: list[tuple[float, int, float, float]] = []

    while True:
        combo = iterator.next()
        if combo is None:
            break
        if combo.score < floor:
            break  # descending scores: nothing below the floor can rank
        # Tie-complete cutoff (see repro.core.stps.stps): drain every
        # combination tying the k-th collected score so rank_items sees
        # the full tie set and can break ties canonically by oid.
        if (
            len(collected) >= query.k
            and combo.score < collected[query.k - 1][0]
        ):
            break
        if combo.is_all_virtual:
            remaining = sorted(
                (e.oid, e.x, e.y)
                for e in object_tree.all_entries()
                if e.oid not in seen
            )
            for oid, x, y in remaining[: query.k]:
                seen.add(oid)
                collected.append((0.0, oid, x, y))
            break

        # Voronoi intersection (cost tracked separately).  Cells depend
        # only on the feature, not the combination, so they are cached
        # per feature across combinations — the query-time analogue of
        # the precomputation the paper suggests for static data.
        vor_snapshot = tracker.io_snapshot()
        vor_t0 = time.perf_counter()
        vor_span = rec.span("stps.voronoi_cells")
        vor_span.__enter__()
        region = unit_region
        for i, feature in enumerate(combo.features):
            if feature.is_virtual:
                continue
            cell = cell_caches[i].get(feature.fid)
            if cell is None:
                cell = clip_voronoi_cell(
                    feature_trees[i],
                    scorers[i],
                    (feature.x, feature.y),
                    feature.fid,
                    unit_region,
                )
                cell_caches[i][feature.fid] = cell
                if collector.active:
                    collector.voronoi_cell(cache_hit=False)
            elif collector.active:
                collector.voronoi_cell(cache_hit=True)
            region = region.intersection(cell)
            if region.is_empty:
                if collector.active:
                    collector.voronoi_empty()
                break
        vor_span.__exit__(None, None, None)
        stats.voronoi_cpu_s += time.perf_counter() - vor_t0
        vor_reads, vor_io_time = tracker.io_since(vor_snapshot)
        stats.voronoi_io_reads += vor_reads
        stats.voronoi_io_time_s += vor_io_time
        if region.is_empty:
            continue

        with rec.span("stps.get_data_objects"):
            batch = sorted(
                (e for e in object_tree.in_polygon(region)
                 if e.oid not in seen),
                key=lambda e: e.oid,
            )
        for e in batch:
            seen.add(e.oid)
            collected.append((combo.score, e.oid, e.x, e.y))

    stats.combinations = iterator.combinations_released
    stats.features_pulled = iterator.features_pulled
    stats.objects_scored = len(collected)
    stats.phase_times = rec.totals()
    record_features_pulled("stps_nearest", iterator.streams)
    result = QueryResult(rank_items(collected, query.k), stats)
    tracker.finish(stats)
    return result
