"""Influence Score Search (ISS) — an exact extension algorithm.

Algorithm 5 (STPS for the influence score) must examine *every*
combination of feature objects whose summed score exceeds the running
k-th object score, because without the ``2r`` validity filter the
combination space does not shrink; its cost therefore grows with the
product of the per-set candidate counts (painful for ``c >= 3``).

ISS avoids combinations altogether: it runs one best-first search over
the *object* R-tree, bounding every object-tree entry ``e`` by

    bound(e) = Σ_i  max_t∈F_i  s(t) · 2^(−mindist(e, t)/r)

where each per-set term is obtained by a nested best-first probe of that
feature index (priority ``ŝ(e_f)·2^(−mindist(e_o, e_f)/r)``; the first
feature object popped realizes the max).  Object-tree leaves evaluate the
exact score ``τ(p)``, so popping leaves in bound order yields the exact
top-k — the same answers as Algorithm 5, verified in the tests.

Cost: at most ``|O|·c`` probes (a batched scan) and usually fewer — the
bounds prune whole subtrees when the object tree's leaf MBRs are fine
relative to the influence field (small pages / tight clusters).  Either
way it is linear in ``c``, whereas Algorithm 5's combination count grows
with the product of the per-set candidate list sizes.

This is *not* an algorithm of the paper; DESIGN.md lists it as an
extension, and ``ablation_influence_algo`` measures it against the
paper's STPS.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence

from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, StatsTracker, rank_items
from repro.errors import QueryError
from repro.index.feature_tree import FeatureTree
from repro.index.nodes import FeatureLeafEntry, ObjectLeafEntry
from repro.index.object_rtree import ObjectRTree
from repro.obs import explain as _explain
from repro.obs import tracing as _tracing


def influence_search(
    object_tree: ObjectRTree,
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    collector=None,
) -> QueryResult:
    """Exact top-k influence query without combination enumeration."""
    if query.variant is not Variant.INFLUENCE:
        raise QueryError(f"influence_search() got variant {query.variant}")
    if len(feature_trees) != query.c:
        raise QueryError(
            f"query addresses {query.c} feature sets, processor has "
            f"{len(feature_trees)}"
        )
    tracker = StatsTracker(
        [object_tree.pagefile] + [t.pagefile for t in feature_trees]
    )
    stats = QueryStats()
    collector = _explain.resolve(collector)
    scorers = [
        tree.make_scorer(mask, query.lam)
        for tree, mask in zip(feature_trees, query.keyword_masks)
    ]
    radius = query.radius

    def entry_bound(rect_or_point, is_point: bool) -> float:
        total = 0.0
        for tree, scorer in zip(feature_trees, scorers):
            total += _set_influence_bound(
                tree, scorer, rect_or_point, is_point, radius
            )
        return total

    # Lazy-refinement best-first search: entries enter the heap with
    # their parent's bound (free) and are re-pushed with their own bound
    # only when they reach the top, so exact per-point evaluations happen
    # only for actual top-k contenders.
    rec = _tracing.recorder()
    collected: list[tuple[float, int, float, float]] = []
    if object_tree.root_id is not None and object_tree.count > 0:
        heap: list[tuple[float, int, bool, object]] = []
        counter = 0
        rec_active = rec.active
        root_bound = sum(
            (1.0 - query.lam) + query.lam for _ in feature_trees
        )  # trivially >= c; refined on first pop

        def push(entry, bound: float, refined: bool) -> None:
            nonlocal counter
            counter += 1
            heapq.heappush(heap, (-bound, counter, refined, entry))

        with rec.span("iss.search"):
            for e in object_tree.root_node().entries:
                push(e, root_bound, False)
            while heap:
                # Tie-complete cutoff: keep draining entries whose bound
                # ties the k-th exact score so rank_items can break the
                # full tie set canonically by oid (heap order is
                # insertion order, not oid order).
                if len(collected) >= query.k and (
                    -heap[0][0] < collected[query.k - 1][0]
                ):
                    break
                neg_bound, _, refined, entry = heapq.heappop(heap)
                is_point = isinstance(entry, ObjectLeafEntry)
                if not refined:
                    if rec_active:
                        with rec.span("iss.bound_probe", point=is_point):
                            bound = entry_bound(
                                (entry.x, entry.y) if is_point else entry.rect,
                                is_point,
                            )
                    else:
                        bound = entry_bound(
                            (entry.x, entry.y) if is_point else entry.rect,
                            is_point,
                        )
                    if collector.active:
                        collector.iss_probe(is_point)
                    if is_point:
                        stats.objects_scored += 1
                    push(entry, bound, True)
                    continue
                if is_point:
                    # Refined point priorities are exact scores, so pops
                    # are in final rank order.
                    collected.append(
                        (-neg_bound, entry.oid, entry.x, entry.y)
                    )
                else:
                    for child_entry in object_tree.read_node(
                        entry.child
                    ).entries:
                        push(child_entry, -neg_bound, False)

    stats.phase_times = rec.totals()
    result = QueryResult(rank_items(collected, query.k), stats)
    tracker.finish(stats)
    return result


def _set_influence_bound(
    tree: FeatureTree,
    scorer,
    rect_or_point,
    is_point: bool,
    radius: float,
) -> float:
    """``max_t s(t)·2^(−mindist(target, t)/r)`` over one feature set.

    Best-first on the feature index with influence-bound priorities; the
    first feature object popped attains the set maximum (for a rect
    target, of the optimistic mindist bound — still an upper bound for
    every point in the rect, which is what the caller needs).
    """
    if tree.root_id is None or tree.count == 0:
        return 0.0
    heap: list[tuple[float, int, object]] = []
    counter = 0

    if is_point:
        px, py = rect_or_point

        def dist_to(entry, leaf: bool) -> float:
            if leaf:
                return math.hypot(entry.x - px, entry.y - py)
            return entry.rect.mindist((px, py))

    else:
        rect = rect_or_point

        def dist_to(entry, leaf: bool) -> float:
            if leaf:
                return rect.mindist((entry.x, entry.y))
            return rect.mindist_rect(entry.rect)

    def push(node) -> None:
        nonlocal counter
        for e in node.entries:
            if not scorer.relevant(e):
                continue
            base = (
                scorer.leaf_score(e) if node.is_leaf else scorer.node_bound(e)
            )
            value = base * 2.0 ** (-dist_to(e, node.is_leaf) / radius)
            counter += 1
            heapq.heappush(heap, (-value, counter, e))

    push(tree.read_node(tree.root_id))
    while heap:
        neg_value, _, entry = heapq.heappop(heap)
        if isinstance(entry, FeatureLeafEntry):
            return -neg_value
        push(tree.read_node(entry.child))
    return 0.0
