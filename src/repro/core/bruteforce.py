"""Brute-force reference implementation, straight from the definitions.

Computes ``τ(p)`` for every data object with nested loops over the raw
datasets — no indexes, no pruning.  Quadratic and only meant as the
correctness oracle for the tests and as a sanity baseline in examples.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, rank_items
from repro.errors import QueryError
from repro.model.dataset import FeatureDataset, ObjectDataset
from repro.text.similarity import jaccard


def brute_force(
    objects: ObjectDataset,
    feature_sets: Sequence[FeatureDataset],
    query: PreferenceQuery,
) -> QueryResult:
    """Top-k by exhaustive evaluation of the chosen score variant."""
    if len(feature_sets) != query.c:
        raise QueryError(
            f"query addresses {query.c} feature sets, got {len(feature_sets)}"
        )
    candidates = [
        (
            object_score(p.x, p.y, feature_sets, query),
            p.oid,
            p.x,
            p.y,
        )
        for p in objects
    ]
    return QueryResult(rank_items(candidates, query.k), QueryStats())


def object_score(
    x: float,
    y: float,
    feature_sets: Sequence[FeatureDataset],
    query: PreferenceQuery,
) -> float:
    """``τ(p)`` for a location, by definition (Definitions 2, 3, 6, 7)."""
    return sum(
        component_score(x, y, fs, mask, query)
        for fs, mask in zip(feature_sets, query.keyword_masks)
    )


def component_score(
    x: float,
    y: float,
    feature_set: FeatureDataset,
    mask: int,
    query: PreferenceQuery,
) -> float:
    """``τ_i(p)`` for one feature set, by definition."""
    lam = query.lam
    best = 0.0
    if query.variant is Variant.NEAREST:
        # Definition 7 leaves equidistant nearest features unspecified;
        # the library's convention (matching STPS-NN, which pops
        # combinations in descending score order and therefore resolves a
        # shared Voronoi boundary in favour of the better feature) is to
        # break distance ties by the *maximum* preference score.
        nearest_d = math.inf
        nearest_score = 0.0
        for t in feature_set:
            t_mask = t.keyword_mask()
            if (t_mask & mask) == 0:
                continue
            d = math.hypot(t.x - x, t.y - y)
            s = (1.0 - lam) * t.score + lam * jaccard(t_mask, mask)
            if d < nearest_d or (d == nearest_d and s > nearest_score):
                nearest_d = d
                nearest_score = s
        return nearest_score
    for t in feature_set:
        t_mask = t.keyword_mask()
        if (t_mask & mask) == 0:
            continue
        d = math.hypot(t.x - x, t.y - y)
        s = (1.0 - lam) * t.score + lam * jaccard(t_mask, mask)
        if query.variant is Variant.RANGE:
            if d <= query.radius and s > best:
                best = s
        else:  # influence
            value = s * 2.0 ** (-d / query.radius)
            if value > best:
                best = value
    return best
