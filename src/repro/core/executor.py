"""Concurrent batch-query execution over shared read-only indexes.

A :class:`QueryExecutor` couples a :class:`~repro.core.processor.QueryProcessor`
with a thread pool and runs many :class:`~repro.core.query.PreferenceQuery`s
against the *same* index objects.  The indexes are treated as read-only:
the buffer pool and the decoded-node cache take internal locks around
their LRU bookkeeping (see :mod:`repro.storage.buffer` and
:mod:`repro.storage.node_cache`), so concurrent traversals are safe and
every thread benefits from nodes decoded by the others — a repeated-query
workload runs almost entirely out of the decoded-node cache.

Each query is executed by exactly the same code path the serial
:meth:`QueryProcessor.query` uses, so per-query *results* are identical
to a serial run.  Per-query *I/O counters* are attributed from shared
page-file statistics and therefore include activity of concurrently
running queries; use :meth:`BatchReport.aggregate` (or the per-tree
``IOStats``) for workload-level accounting instead.

Within a single STDS query, ``parallelism`` additionally scores every
chunk against all feature sets concurrently (see
:func:`repro.core.stds.stds` — results stay byte-identical to the serial
fold).

Batches are deduplicated by default: identical queries (``PreferenceQuery``
is hashable by value) execute once and share their immutable result, so
repeated-query workloads pay for each distinct query only.  Disable with
``dedup=False`` when per-entry execution matters.

Typical use::

    with QueryExecutor(processor, max_workers=4) as executor:
        results = executor.query_many(queries)          # STPS, in order
        report = executor.run(queries, algorithm="stds")
        print(report.throughput_qps, report.node_cache_hit_rate)
"""

from __future__ import annotations

import logging
import math
import threading
import time
import weakref
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.combinations import PULL_PRIORITIZED
from repro.core.query import PreferenceQuery
from repro.core.results import QueryResult
from repro.core.stds import DEFAULT_BATCH_SIZE
from repro.errors import QueryError
from repro.obs import metrics as _metrics
from repro.obs import tracing as _tracing

logger = logging.getLogger(__name__)

DEFAULT_MAX_WORKERS = 4

#: Time a query spends in the executor queue before a worker picks it up.
QUEUE_WAIT_SECONDS = _metrics.registry().histogram(
    "repro_executor_queue_wait_seconds",
    "Time between submission and execution start.",
    ("algorithm",),
)
#: Whole-batch wall time per ``QueryExecutor.run`` call.
BATCH_SECONDS = _metrics.registry().histogram(
    "repro_executor_batch_seconds",
    "Wall time of one batch run.",
    ("algorithm",),
)
#: Worker exceptions, labeled by algorithm and exception class name.
EXECUTOR_FAILURES = _metrics.registry().counter(
    "repro_executor_failures_total",
    "Queries that raised inside an executor worker.",
    ("algorithm", "error"),
)

ON_ERROR_MODES = ("raise", "return")

#: All live executors (weak refs); the resource sampler
#: (:mod:`repro.obs.resources`) sums their queue depth and in-flight
#: counts into backpressure gauges.
_live_executors: "weakref.WeakSet[QueryExecutor]" = weakref.WeakSet()


def live_executors() -> list["QueryExecutor"]:
    """Live QueryExecutor instances (weakly tracked)."""
    return [e for e in _live_executors if not e._closed]


def _percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence.

    An empty sample has no percentiles: returns NaN rather than a
    made-up 0.0 (an all-failures batch with ``on_error="return"``
    produces exactly this case — 0.0 would read as "instant queries").
    """
    if not sorted_values:
        return math.nan
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(slots=True)
class QueryFailure:
    """One query that raised inside an executor worker.

    ``index`` is the position of the query's *first occurrence* in the
    input batch (deduplicated batches execute each distinct query once;
    every duplicate position shares this failure).  ``error`` is the
    original exception object, ``message`` its rendered text.
    ``trace_id`` is the id the failed execution ran under — grep it in
    the Chrome trace, the flight-recorder dump, and the structured logs
    to see everything the query did before dying.  ``shard_id`` is
    filled from :class:`~repro.errors.ShardError` when the failure came
    out of the sharded fan-out.
    """

    index: int
    query: PreferenceQuery
    error: BaseException
    message: str
    trace_id: str = ""

    @property
    def shard_id(self) -> int | None:
        """Failing shard for sharded-engine errors, else None."""
        return getattr(self.error, "shard_id", None)

    def describe(self) -> dict:
        """JSON-friendly summary for logs and batch reports."""
        out = {
            "index": self.index,
            "error": type(self.error).__name__,
            "message": self.message,
            "trace_id": self.trace_id,
        }
        if self.shard_id is not None:
            out["shard_id"] = self.shard_id
        return out


@dataclass(slots=True)
class BatchReport:
    """Results of a batch run plus workload-level cost accounting.

    ``latencies_s`` / ``queue_waits_s`` hold one sample per *executed*
    query (deduplicated batches execute each distinct query once):
    execution wall time and time spent waiting in the pool queue before
    a worker picked the query up.  The ``latency_p*`` / ``queue_wait_p*``
    properties are nearest-rank percentiles over those samples.
    """

    results: list[QueryResult | None] = field(default_factory=list)
    wall_s: float = 0.0
    queries: int = 0
    failures: list[QueryFailure] = field(default_factory=list)
    node_cache_hits: int = 0
    node_cache_misses: int = 0
    io_reads: int = 0
    buffer_hits: int = 0
    latencies_s: list[float] = field(default_factory=list)
    queue_waits_s: list[float] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of wall time."""
        return self.queries / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def node_cache_hit_rate(self) -> float:
        """Decoded-node cache hits / lookups across the whole batch."""
        total = self.node_cache_hits + self.node_cache_misses
        return self.node_cache_hits / total if total else 0.0

    def latency_percentiles(self) -> dict[str, float]:
        """{"p50": ..., "p95": ..., "p99": ...} of per-query latency.

        All values are NaN when no query executed successfully (e.g. an
        all-failures batch under ``on_error="return"``).
        """
        ordered = sorted(self.latencies_s)
        return {
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
        }

    def queue_wait_percentiles(self) -> dict[str, float]:
        """{"p50": ..., "p95": ..., "p99": ...} of queue wait."""
        ordered = sorted(self.queue_waits_s)
        return {
            "p50": _percentile(ordered, 0.50),
            "p95": _percentile(ordered, 0.95),
            "p99": _percentile(ordered, 0.99),
        }

    @property
    def latency_p50_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.50)

    @property
    def latency_p95_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.95)

    @property
    def latency_p99_s(self) -> float:
        return _percentile(sorted(self.latencies_s), 0.99)

    @property
    def queue_wait_p50_s(self) -> float:
        return _percentile(sorted(self.queue_waits_s), 0.50)

    @property
    def queue_wait_p95_s(self) -> float:
        return _percentile(sorted(self.queue_waits_s), 0.95)

    @property
    def queue_wait_p99_s(self) -> float:
        return _percentile(sorted(self.queue_waits_s), 0.99)

    def aggregate_phase_times(self) -> dict[str, float]:
        """Per-phase wall seconds summed over the batch's distinct results.

        Empty unless tracing was enabled during the run (see
        :mod:`repro.obs.tracing`).
        """
        totals: dict[str, float] = {}
        seen: set[int] = set()
        for result in self.results:
            if result is None:  # failed position (on_error="return")
                continue
            if id(result) in seen:  # dedup'd batches share result objects
                continue
            seen.add(id(result))
            for phase, seconds in result.stats.phase_times.items():
                totals[phase] = totals.get(phase, 0.0) + seconds
        return totals


class QueryExecutor:
    """Runs batches of preference queries on a shared thread pool."""

    def __init__(
        self,
        processor,
        max_workers: int = DEFAULT_MAX_WORKERS,
        profile: bool = False,
    ) -> None:
        if max_workers < 1:
            raise QueryError(f"max_workers must be >= 1, got {max_workers}")
        self.processor = processor
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._closed = False
        # Backpressure accounting: queries submitted to the pool but not
        # yet picked up, and queries currently executing.  Sampled by the
        # resource sampler; a growing queue depth is the serving layer's
        # admission-control signal.
        self._depth_lock = threading.Lock()
        self._queued = 0
        self._running = 0
        # ``profile=True`` arms the continuous sampling profiler for this
        # executor's lifetime (the flight recorder can then resolve slow
        # queries to stacks); close() disarms it if we armed it.
        self._profiling = False
        if profile:
            from repro.obs import profiler as _profiler

            self._profiling = _profiler.install()
        _live_executors.add(self)

    @property
    def queue_depth(self) -> int:
        """Queries submitted to the pool but not yet picked up."""
        return self._queued

    @property
    def running_count(self) -> int:
        """Queries currently executing on pool threads."""
        return self._running

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down; subsequent submissions raise."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)
            if self._profiling:
                from repro.obs import profiler as _profiler

                _profiler.uninstall()
                self._profiling = False

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        # Safety net for executors abandoned without close(): without
        # it the pool threads (non-daemon) outlive the object and keep
        # the interpreter alive.  close() remains the real API.
        try:
            if not self._closed:
                self._closed = True
                self._pool.shutdown(wait=False)
        except Exception:  # pragma: no cover - interpreter shutdown
            pass

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _trees(self):
        """Every index the processor reads (duck-typed).

        Prefers the processor's ``trees()`` accessor (both
        :class:`~repro.core.processor.QueryProcessor` and
        :class:`~repro.shard.ShardedQueryProcessor` provide it) and falls
        back to the classic ``object_tree``/``feature_trees`` attributes
        for processor-shaped test doubles.
        """
        trees = getattr(self.processor, "trees", None)
        if callable(trees):
            return list(trees())
        return [self.processor.object_tree, *self.processor.feature_trees]

    def query_many(
        self,
        queries: Sequence[PreferenceQuery],
        algorithm: str = "stps",
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        dedup: bool = True,
        on_error: str = "raise",
        _timings: list[tuple[float, float]] | None = None,
        _failures: list[QueryFailure] | None = None,
    ) -> list[QueryResult | None]:
        """Execute many queries concurrently; results in input order.

        Every query runs the exact serial code path, so each
        :class:`QueryResult`'s items match a serial
        :meth:`QueryProcessor.query` call for the same query.

        ``dedup`` (default on) executes each *distinct* query in the
        batch exactly once and shares the :class:`QueryResult` across its
        duplicates — the batch-level analogue of common-subexpression
        elimination.  Query evaluation is deterministic and results are
        immutable, so the answer at every position is identical to a
        serial run; only the attributed per-query stats collapse onto the
        shared object.  Pass ``dedup=False`` to force one execution per
        entry (e.g. when measuring per-query costs).

        ``on_error`` decides what a worker exception does to the batch.
        Either way every submitted future is awaited first, so one bad
        query can never wedge or abandon the rest of the batch:

        * ``"raise"`` (default) — re-raise the first failure (by input
          order) after the whole batch has settled;
        * ``"return"`` — succeed with ``None`` at each failed position
          and record one :class:`QueryFailure` per failed execution
          (surfaced as :attr:`BatchReport.failures` via :meth:`run`).

        Failures also increment
        ``repro_executor_failures_total{algorithm,error}``.

        ``_timings`` / ``_failures`` (internal, used by :meth:`run`)
        collect per-executed-query ``(queue_wait_s, latency_s)`` samples
        and structured failures; ``list.append`` is atomic, so workers
        share the lists freely.
        """
        if self._closed:
            raise QueryError("executor is closed")
        if on_error not in ON_ERROR_MODES:
            raise QueryError(
                f"unknown on_error {on_error!r}; choose from {ON_ERROR_MODES}"
            )
        if dedup:
            # PreferenceQuery is a frozen dataclass — hashable by value.
            distinct: dict[PreferenceQuery, int] = {}
            first_pos: dict[PreferenceQuery, int] = {}
            for pos, query in enumerate(queries):
                distinct.setdefault(query, len(distinct))
                first_pos.setdefault(query, pos)
            to_run: Sequence[PreferenceQuery] = list(distinct)
            positions = [first_pos[query] for query in to_run]
        else:
            to_run = queries
            positions = list(range(len(queries)))

        queue_wait_metric = QUEUE_WAIT_SECONDS.labels(algorithm=algorithm)
        # Trace ids are minted *here*, before submission, so a failed
        # execution's id is known even though the processor never got to
        # return.  An ambient id (a served request entering through
        # execute_one under trace_scope) is inherited instead of minted,
        # so the HTTP-level trace and the engine-level spans join on one
        # id.  The worker closure re-enters the scope — and the caller's
        # per-request span sink — explicitly: ThreadPoolExecutor does
        # not propagate contextvars to workers.
        ambient = _tracing.current_trace_id()
        trace_ids = [ambient or _tracing.new_trace_id() for _ in to_run]
        sink = _tracing.current_sink()

        def run_one(
            query: PreferenceQuery, submitted: float, trace_id: str
        ) -> QueryResult:
            started = time.perf_counter()
            with self._depth_lock:
                self._queued -= 1
                self._running += 1
            try:
                with _tracing.trace_scope(trace_id), _tracing.sink_scope(
                    sink
                ), _tracing.span(
                    "executor.query", cat="executor", algorithm=algorithm
                ):
                    result = self.processor.query(
                        query,
                        algorithm=algorithm,
                        pulling=pulling,
                        batch_size=batch_size,
                        parallelism=parallelism,
                    )
            finally:
                with self._depth_lock:
                    self._running -= 1
            finished = time.perf_counter()
            queue_wait_metric.observe(started - submitted)
            if _timings is not None:
                _timings.append((started - submitted, finished - started))
            return result

        with self._depth_lock:
            self._queued += len(to_run)
        futures = [
            self._pool.submit(run_one, query, time.perf_counter(), trace_id)
            for query, trace_id in zip(to_run, trace_ids)
        ]
        # Settle *every* future before deciding how to react: a failure
        # must not abandon (or cancel) the rest of the batch.
        results: list[QueryResult | None] = []
        failures: list[QueryFailure] = []
        for pos, query, trace_id, future in zip(
            positions, to_run, trace_ids, futures
        ):
            exc = future.exception()
            if exc is None:
                results.append(future.result())
                continue
            results.append(None)
            EXECUTOR_FAILURES.labels(
                algorithm=algorithm, error=type(exc).__name__
            ).inc()
            failures.append(
                QueryFailure(
                    index=pos, query=query, error=exc, message=str(exc),
                    trace_id=trace_id,
                )
            )
        if failures:
            failures.sort(key=lambda f: f.index)
            logger.warning(
                "batch: %d of %d queries failed (first: %s)",
                len(failures), len(to_run), failures[0].message,
            )
            if on_error == "raise":
                raise failures[0].error
            if _failures is not None:
                _failures.extend(failures)
        if not dedup:
            return results
        return [results[distinct[query]] for query in queries]

    def execute_one(
        self,
        query: PreferenceQuery,
        algorithm: str = "stps",
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
    ) -> tuple[QueryResult, float, float]:
        """Run one query through the pool; ``(result, queue_wait_s, latency_s)``.

        The serving layer's entry point: a request-at-a-time analogue of
        :meth:`query_many` that surfaces the two numbers admission
        control needs — how long the query waited for a worker and how
        long it executed.  Failures raise (the caller owns per-request
        error mapping; there is no batch to isolate them from).
        """
        timings: list[tuple[float, float]] = []
        result = self.query_many(
            [query],
            algorithm=algorithm,
            pulling=pulling,
            batch_size=batch_size,
            parallelism=parallelism,
            dedup=False,
            on_error="raise",
            _timings=timings,
        )[0]
        queue_wait_s, latency_s = timings[0] if timings else (0.0, 0.0)
        return result, queue_wait_s, latency_s

    def run(
        self,
        queries: Sequence[PreferenceQuery],
        algorithm: str = "stps",
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        dedup: bool = True,
        on_error: str = "raise",
    ) -> BatchReport:
        """Like :meth:`query_many` but with workload-level accounting.

        The I/O and cache counters reflect the work actually performed —
        with ``dedup`` on, duplicated queries execute once, so counters
        cover the distinct executions while ``queries``/``throughput_qps``
        count every answered position.

        With ``on_error="return"``, failed positions hold ``None`` in
        :attr:`BatchReport.results` and each failed execution is recorded
        as a :class:`QueryFailure` in :attr:`BatchReport.failures`.
        """
        trees = self._trees()
        before = [t.pagefile.stats.snapshot() for t in trees]
        timings: list[tuple[float, float]] = []
        failures: list[QueryFailure] = []
        t0 = time.perf_counter()
        results = self.query_many(
            queries,
            algorithm=algorithm,
            pulling=pulling,
            batch_size=batch_size,
            parallelism=parallelism,
            dedup=dedup,
            on_error=on_error,
            _timings=timings,
            _failures=failures,
        )
        wall_s = time.perf_counter() - t0
        BATCH_SECONDS.labels(algorithm=algorithm).observe(wall_s)
        report = BatchReport(
            results=results,
            wall_s=wall_s,
            queries=len(results),
            failures=failures,
            queue_waits_s=[w for w, _ in timings],
            latencies_s=[lat for _, lat in timings],
        )
        for tree, snap in zip(trees, before):
            delta = tree.pagefile.stats.delta_since(snap)
            report.node_cache_hits += delta.node_cache_hits
            report.node_cache_misses += delta.node_cache_misses
            report.io_reads += delta.reads
            report.buffer_hits += delta.buffer_hits
        return report
