"""Concurrent batch-query execution over shared read-only indexes.

A :class:`QueryExecutor` couples a :class:`~repro.core.processor.QueryProcessor`
with a thread pool and runs many :class:`~repro.core.query.PreferenceQuery`s
against the *same* index objects.  The indexes are treated as read-only:
the buffer pool and the decoded-node cache take internal locks around
their LRU bookkeeping (see :mod:`repro.storage.buffer` and
:mod:`repro.storage.node_cache`), so concurrent traversals are safe and
every thread benefits from nodes decoded by the others — a repeated-query
workload runs almost entirely out of the decoded-node cache.

Each query is executed by exactly the same code path the serial
:meth:`QueryProcessor.query` uses, so per-query *results* are identical
to a serial run.  Per-query *I/O counters* are attributed from shared
page-file statistics and therefore include activity of concurrently
running queries; use :meth:`BatchReport.aggregate` (or the per-tree
``IOStats``) for workload-level accounting instead.

Within a single STDS query, ``parallelism`` additionally scores every
chunk against all feature sets concurrently (see
:func:`repro.core.stds.stds` — results stay byte-identical to the serial
fold).

Batches are deduplicated by default: identical queries (``PreferenceQuery``
is hashable by value) execute once and share their immutable result, so
repeated-query workloads pay for each distinct query only.  Disable with
``dedup=False`` when per-entry execution matters.

Typical use::

    with QueryExecutor(processor, max_workers=4) as executor:
        results = executor.query_many(queries)          # STPS, in order
        report = executor.run(queries, algorithm="stds")
        print(report.throughput_qps, report.node_cache_hit_rate)
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.combinations import PULL_PRIORITIZED
from repro.core.query import PreferenceQuery
from repro.core.results import QueryResult
from repro.core.stds import DEFAULT_BATCH_SIZE
from repro.errors import QueryError

DEFAULT_MAX_WORKERS = 4


@dataclass(slots=True)
class BatchReport:
    """Results of a batch run plus workload-level cost accounting."""

    results: list[QueryResult] = field(default_factory=list)
    wall_s: float = 0.0
    queries: int = 0
    node_cache_hits: int = 0
    node_cache_misses: int = 0
    io_reads: int = 0
    buffer_hits: int = 0

    @property
    def throughput_qps(self) -> float:
        """Completed queries per second of wall time."""
        return self.queries / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def node_cache_hit_rate(self) -> float:
        """Decoded-node cache hits / lookups across the whole batch."""
        total = self.node_cache_hits + self.node_cache_misses
        return self.node_cache_hits / total if total else 0.0


class QueryExecutor:
    """Runs batches of preference queries on a shared thread pool."""

    def __init__(self, processor, max_workers: int = DEFAULT_MAX_WORKERS) -> None:
        if max_workers < 1:
            raise QueryError(f"max_workers must be >= 1, got {max_workers}")
        self.processor = processor
        self.max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-query"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down; subsequent submissions raise."""
        if not self._closed:
            self._closed = True
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "QueryExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def query_many(
        self,
        queries: Sequence[PreferenceQuery],
        algorithm: str = "stps",
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        dedup: bool = True,
    ) -> list[QueryResult]:
        """Execute many queries concurrently; results in input order.

        Every query runs the exact serial code path, so each
        :class:`QueryResult`'s items match a serial
        :meth:`QueryProcessor.query` call for the same query.

        ``dedup`` (default on) executes each *distinct* query in the
        batch exactly once and shares the :class:`QueryResult` across its
        duplicates — the batch-level analogue of common-subexpression
        elimination.  Query evaluation is deterministic and results are
        immutable, so the answer at every position is identical to a
        serial run; only the attributed per-query stats collapse onto the
        shared object.  Pass ``dedup=False`` to force one execution per
        entry (e.g. when measuring per-query costs).
        """
        if self._closed:
            raise QueryError("executor is closed")
        if dedup:
            # PreferenceQuery is a frozen dataclass — hashable by value.
            distinct: dict[PreferenceQuery, int] = {}
            for query in queries:
                distinct.setdefault(query, len(distinct))
            to_run: Sequence[PreferenceQuery] = list(distinct)
        else:
            to_run = queries
        futures = [
            self._pool.submit(
                self.processor.query,
                query,
                algorithm=algorithm,
                pulling=pulling,
                batch_size=batch_size,
                parallelism=parallelism,
            )
            for query in to_run
        ]
        results = [f.result() for f in futures]
        if not dedup:
            return results
        return [results[distinct[query]] for query in queries]

    def run(
        self,
        queries: Sequence[PreferenceQuery],
        algorithm: str = "stps",
        pulling: str = PULL_PRIORITIZED,
        batch_size: int = DEFAULT_BATCH_SIZE,
        parallelism: int | None = None,
        dedup: bool = True,
    ) -> BatchReport:
        """Like :meth:`query_many` but with workload-level accounting.

        The I/O and cache counters reflect the work actually performed —
        with ``dedup`` on, duplicated queries execute once, so counters
        cover the distinct executions while ``queries``/``throughput_qps``
        count every answered position.
        """
        trees = [self.processor.object_tree] + list(self.processor.feature_trees)
        before = [t.pagefile.stats.snapshot() for t in trees]
        t0 = time.perf_counter()
        results = self.query_many(
            queries,
            algorithm=algorithm,
            pulling=pulling,
            batch_size=batch_size,
            parallelism=parallelism,
            dedup=dedup,
        )
        report = BatchReport(
            results=results,
            wall_s=time.perf_counter() - t0,
            queries=len(results),
        )
        for tree, snap in zip(trees, before):
            delta = tree.pagefile.stats.delta_since(snap)
            report.node_cache_hits += delta.node_cache_hits
            report.node_cache_misses += delta.node_cache_misses
            report.io_reads += delta.reads
            report.buffer_hits += delta.buffer_hits
        return report
