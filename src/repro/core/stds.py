"""Spatio-Textual Data Scan (STDS) — the paper's baseline (Section 5).

Algorithm 1: scan every data object, compute its score ``τ_i(p)`` against
each feature set with Algorithm 2, keep the top-k.  An upper bound
``τ̂(p)`` (known partial scores + 1 per unknown set) lets the scan skip
remaining feature sets once an object can no longer reach the top-k.

Algorithm 2 (``compute_score``): best-first traversal of the feature
index ordered by ``ŝ(e)``; prune entries out of range or textually
irrelevant; the first feature object popped within range is the answer —
the sorted access plus the upper-bound property make that maximal.

The paper's evaluation uses the *batched* improvement (end of Section 5):
one traversal per feature set serves a whole set of pending objects; an
entry is expanded when at least one pending object is in range, and a
popped feature resolves every pending object in its range.  We batch in
chunks so Algorithm 1's threshold pruning still kicks in between chunks.

Section 7 adaptations (influence / nearest-neighbor) re-prioritize the
same traversal and drop the range predicate, exactly as described.

Performance notes (not part of the paper's algorithms):

* leaf nodes are scored through the columnar numpy fast path when
  available (:mod:`repro.index.leafdata`) — one array pass per leaf
  instead of one Python iteration per entry, with bit-identical scores;
* ``stds(..., parallelism=n)`` scores a chunk against all feature sets
  concurrently on a thread pool and then *replays* the serial
  threshold fold over the precomputed scores, so results are exactly
  those of the serial path (``compute_scores_batch`` values depend only
  on the object and the tree, never on the rest of the batch).
"""

from __future__ import annotations

import heapq
import logging
import math
from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor

try:  # optional fast path; see repro.index.leafdata
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.core.grid import SpatialGrid
from repro.core.query import PreferenceQuery, Variant
from repro.index.leafdata import object_leaf_arrays, vectorized_enabled
from repro.core.results import QueryResult, QueryStats, StatsTracker, rank_items
from repro.errors import QueryError
from repro.index.feature_tree import FeatureTree
from repro.index.nodes import FeatureLeafEntry
from repro.index.object_rtree import ObjectRTree
from repro.obs import explain as _explain
from repro.obs import tracing as _tracing

logger = logging.getLogger(__name__)

DEFAULT_BATCH_SIZE = 1024


# ----------------------------------------------------------------------
# Algorithm 2 and its variant adaptations: single-object score
# ----------------------------------------------------------------------
def compute_score(
    tree: FeatureTree,
    query: PreferenceQuery,
    mask: int,
    point: tuple[float, float],
    stats: QueryStats | None = None,
) -> float:
    """``τ_i(p)`` for one object and one feature set (range variant)."""
    scorer = tree.make_scorer(mask, query.lam)
    radius = query.radius
    r2 = radius * radius
    px, py = point
    heap: list[tuple[float, int, object]] = []
    counter = 0

    def push_node(node) -> None:
        nonlocal counter
        if node.is_leaf:
            arrays = tree.leaf_arrays(node)
            if arrays is not None:
                # Vectorized: score + filter the whole leaf at once and
                # push only its best valid entry — any other entry of
                # this leaf is dominated, so the traversal result is
                # unchanged.
                scores, relevant = scorer.leaf_score_arrays(arrays)
                dx = arrays.xs - px
                dy = arrays.ys - py
                valid = relevant & (dx * dx + dy * dy <= r2)
                if valid.any():
                    best = int(np.argmax(np.where(valid, scores, -np.inf)))
                    counter += 1
                    heapq.heappush(
                        heap,
                        (-float(scores[best]), counter, node.entries[best]),
                    )
                return
            for e in node.entries:
                if (
                    scorer.leaf_relevant(e)
                    and _dist2(point, (e.x, e.y)) <= r2
                ):
                    counter += 1
                    heapq.heappush(heap, (-scorer.leaf_score(e), counter, e))
        else:
            for e in node.entries:
                if scorer.node_relevant(e) and e.rect.mindist(point) <= radius:
                    counter += 1
                    heapq.heappush(heap, (-scorer.node_bound(e), counter, e))

    if tree.root_id is None or tree.count == 0:
        return 0.0
    push_node(tree.read_node(tree.root_id))
    while heap:
        neg_bound, _, entry = heapq.heappop(heap)
        if stats is not None:
            stats.heap_pops += 1
        if isinstance(entry, FeatureLeafEntry):
            return -neg_bound
        node = tree.read_node(entry.child)
        if stats is not None:
            stats.nodes_expanded += 1
        push_node(node)
    return 0.0


def compute_score_influence(
    tree: FeatureTree,
    query: PreferenceQuery,
    mask: int,
    point: tuple[float, float],
    stats: QueryStats | None = None,
) -> float:
    """Influence ``τ_i(p)`` (Definition 6): no range cut-off, the
    priority of each entry is its influence bound ``ŝ(e)·2^(-mindist/r)``."""
    scorer = tree.make_scorer(mask, query.lam)
    radius = query.radius
    heap: list[tuple[float, int, object]] = []
    counter = 0

    def push(entries, is_leaf: bool) -> None:
        nonlocal counter
        for e in entries:
            if not scorer.relevant(e):
                continue
            if is_leaf:
                score = scorer.leaf_score(e) * 2.0 ** (
                    -_dist(point, (e.x, e.y)) / radius
                )
            else:
                score = scorer.node_bound(e) * 2.0 ** (
                    -e.rect.mindist(point) / radius
                )
            counter += 1
            heapq.heappush(heap, (-score, counter, e))

    if tree.root_id is None or tree.count == 0:
        return 0.0
    root = tree.read_node(tree.root_id)
    push(root.entries, root.is_leaf)
    while heap:
        neg_bound, _, entry = heapq.heappop(heap)
        if stats is not None:
            stats.heap_pops += 1
        if isinstance(entry, FeatureLeafEntry):
            return -neg_bound
        node = tree.read_node(entry.child)
        if stats is not None:
            stats.nodes_expanded += 1
        push(node.entries, node.is_leaf)
    return 0.0


def compute_score_nearest(
    tree: FeatureTree,
    query: PreferenceQuery,
    mask: int,
    point: tuple[float, float],
    stats: QueryStats | None = None,
) -> float:
    """Nearest-neighbor ``τ_i(p)`` (Definition 7): the score of the
    closest *relevant* feature — best-first by minimum distance with the
    ``sim > 0`` pruning retained."""
    scorer = tree.make_scorer(mask, query.lam)
    heap: list[tuple[float, int, object]] = []
    counter = 0

    def push(entries, is_leaf: bool) -> None:
        nonlocal counter
        for e in entries:
            if not scorer.relevant(e):
                continue
            d = (
                _dist(point, (e.x, e.y))
                if is_leaf
                else e.rect.mindist(point)
            )
            counter += 1
            heapq.heappush(heap, (d, counter, e))

    if tree.root_id is None or tree.count == 0:
        return 0.0
    root = tree.read_node(tree.root_id)
    push(root.entries, root.is_leaf)
    while heap:
        _, _, entry = heapq.heappop(heap)
        if stats is not None:
            stats.heap_pops += 1
        if isinstance(entry, FeatureLeafEntry):
            return scorer.leaf_score(entry)
        node = tree.read_node(entry.child)
        if stats is not None:
            stats.nodes_expanded += 1
        push(node.entries, node.is_leaf)
    return 0.0


# ----------------------------------------------------------------------
# batched Algorithm 2 (range variant)
# ----------------------------------------------------------------------
#: Safety margin for the early-drop rule in :func:`compute_scores_batch`.
#: Must exceed the worst-case rounding error of a ``c``-term partial-sum
#: (≈ ``c`` ulps of 1.0 ≈ 1e-15) by a wide margin.
_DROP_EPS = 1e-9


def compute_scores_batch(
    tree: FeatureTree,
    query: PreferenceQuery,
    mask: int,
    pending: dict[int, tuple[float, float]],
    stats: QueryStats | None = None,
    partial: dict[int, float] | None = None,
    threshold: float = -math.inf,
    remaining_sets: int = 0,
    collector=_explain.NULL_COLLECTOR,
    set_id: int = 0,
) -> dict[int, float]:
    """``τ_i(p)`` for a batch of objects in one index traversal.

    ``pending`` maps oid -> (x, y).  Returns oid -> score; objects with no
    relevant in-range feature get 0.0.  Scores depend only on the object
    location and the tree, never on the other batch members — the batch
    only shares traversal work.

    When the caller's threshold fold state (``partial``, ``threshold``,
    ``remaining_sets``) is supplied, the drain additionally drops pending
    objects that can no longer reach the top-k: best-first pop bounds are
    non-increasing, so once the popped bound ``b`` satisfies
    ``partial[p] + b + remaining_sets < threshold`` (strictly), object
    ``p``'s final aggregate is strictly below the final k-th score no
    matter how it resolves, and every later candidate filter discards it
    either way — dropping it early changes only work, never results.
    """
    scores = {oid: 0.0 for oid in pending}
    if tree.root_id is None or tree.count == 0 or not pending:
        return scores
    radius = query.radius
    scorer = tree.make_scorer(mask, query.lam)
    # The pending set lives in a uniform grid (cell size ``r``): both hot
    # membership tests — "who is within range of this popped feature" and
    # "is any pending object near this rectangle" — run in expected O(1)
    # per candidate.  Both scoring paths (vectorized and scalar) share
    # this structure, so traversal decisions are trivially identical.
    grid = SpatialGrid(max(radius, 1e-6))
    grid.bulk_insert((oid, x, y) for oid, (x, y) in pending.items())
    pop_within = grid.pop_within
    any_near_rect = grid.any_near_rect
    grid_discard = grid.discard

    # Max-heap of (-needed, oid): object ``oid`` is doomed once the pop
    # bound falls strictly below ``needed = threshold - remaining - τ̂``.
    # ``_DROP_EPS`` keeps the test conservative under floating point:
    # rearranged sums differ from the fold's own accumulation by ~1e-16,
    # so backing the cut off by 1e-9 can only *shrink* the drop set —
    # never drop an object whose exact aggregate ties the k-th score.
    drops: list[tuple[float, int]] = []
    if partial is not None and threshold > -math.inf:
        slack = threshold - remaining_sets - _DROP_EPS
        for oid in pending:
            needed = slack - partial[oid]
            if needed > 0.0:
                drops.append((-needed, oid))
        heapq.heapify(drops)

    heap: list[tuple[float, int, object]] = []
    counter = 0

    def push_node(node) -> None:
        nonlocal counter
        if node.is_leaf:
            arrays = tree.leaf_arrays(node)
            if arrays is not None:
                # Vectorized: one array pass scores the leaf; only the
                # relevant entries reach the heap (bulk-converted to
                # Python floats — ``tolist`` is far cheaper than
                # per-element indexing).
                leaf_scores, relevant = scorer.leaf_score_arrays(arrays)
                idx = relevant.nonzero()[0]
                if idx.size:
                    entries = node.entries
                    values = leaf_scores[idx].tolist()
                    for i, value in zip(idx.tolist(), values):
                        counter += 1
                        heapq.heappush(heap, (-value, counter, entries[i]))
                return
            for e in node.entries:
                if scorer.leaf_relevant(e):
                    counter += 1
                    heapq.heappush(heap, (-scorer.leaf_score(e), counter, e))
        else:
            for e in node.entries:
                if scorer.node_relevant(e):
                    counter += 1
                    heapq.heappush(heap, (-scorer.node_bound(e), counter, e))

    push_node(tree.read_node(tree.root_id))
    heappop = heapq.heappop
    while heap and len(grid):
        neg_bound, _, entry = heappop(heap)
        if stats is not None:
            stats.heap_pops += 1
        while drops and drops[0][0] < neg_bound:
            # needed > bound (both negated): the object is out of reach.
            _, oid = heappop(drops)
            x, y = pending[oid]
            grid_discard(oid, x, y)
        if isinstance(entry, FeatureLeafEntry):
            for oid in pop_within(entry.x, entry.y, radius):
                scores[oid] = -neg_bound
        else:
            # Expand only when some pending object is within range of the
            # entry (the batched expansion rule of Section 5).
            if any_near_rect(entry.rect, radius):
                node = tree.read_node(entry.child)
                if stats is not None:
                    stats.nodes_expanded += 1
                if collector.active:
                    collector.node_visited(set_id, -neg_bound)
                push_node(node)
            elif collector.active:
                # The bound-prune of the batched expansion rule: the
                # subtree's ŝ(e) is known (= -neg_bound) but no pending
                # object is near its rectangle.
                collector.node_pruned(set_id, -neg_bound)
    return scores


# ----------------------------------------------------------------------
# Algorithm 1: the full scan
# ----------------------------------------------------------------------
def stds(
    object_tree: ObjectRTree,
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    batch_size: int = DEFAULT_BATCH_SIZE,
    parallelism: int | None = None,
    floor: float = -math.inf,
    collector=None,
) -> QueryResult:
    """Run STDS for any score variant.

    The range variant uses the batched score computation; the influence
    and nearest-neighbor variants use the per-object adaptations of
    Section 7 (they are evaluated in the paper only through STPS, but are
    provided for completeness and as a correctness oracle).

    ``batch_size`` controls the chunking of the scan (threshold pruning
    kicks in between chunks).  ``parallelism`` > 1 scores each chunk
    against all feature sets concurrently (range variant only; results
    are identical to the serial path, see module docstring).

    ``floor`` is an externally known lower bound on the global k-th best
    score (used by the sharded engine, which feeds each shard the merged
    k-th score collected so far).  Objects whose score is *strictly*
    below ``floor`` may be omitted from the result; objects scoring
    ``>= floor`` are always reported exactly, so a caller that only
    consumes items at or above its own floor sees unchanged answers.
    """
    if len(feature_trees) != query.c:
        raise QueryError(
            f"query addresses {query.c} feature sets, processor has "
            f"{len(feature_trees)}"
        )
    if batch_size < 1:
        raise QueryError(f"batch size must be >= 1, got {batch_size}")
    if parallelism is not None and parallelism < 1:
        raise QueryError(f"parallelism must be >= 1, got {parallelism}")
    tracker = StatsTracker(
        [object_tree.pagefile] + [t.pagefile for t in feature_trees]
    )
    stats = QueryStats()
    rec = _tracing.recorder()
    collector = _explain.resolve(collector)

    with rec.span("stds.scan_objects"):
        objects = _scan_objects(object_tree)
    stats.objects_scored = len(objects)

    if query.variant is Variant.RANGE:
        workers = 0 if parallelism is None else min(parallelism, query.c)
        if workers > 1:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                candidates = _stds_range_batched(
                    feature_trees, query, objects, batch_size, stats, pool,
                    rec=rec, floor=floor, collector=collector,
                )
        else:
            candidates = _stds_range_batched(
                feature_trees, query, objects, batch_size, stats, rec=rec,
                floor=floor, collector=collector,
            )
    else:
        with rec.span("stds.score_objects"):
            candidates = _stds_per_object(
                feature_trees, query, objects, stats, floor=floor,
                collector=collector,
            )

    stats.phase_times = rec.totals()
    result = QueryResult(rank_items(candidates, query.k), stats)
    tracker.finish(stats)
    return result


def _scan_objects(object_tree: ObjectRTree) -> list[tuple[int, float, float]]:
    """Sequential scan of all data objects as ``(oid, x, y)`` tuples.

    Uses the columnar leaf views when available (bulk ``tolist`` beats
    per-entry attribute walks); the leaf order matches the scalar scan,
    so chunking — and therefore every downstream result — is identical.
    """
    if np is not None and vectorized_enabled():
        out: list[tuple[int, float, float]] = []
        for node in object_tree.iter_leaves():
            arrays = object_leaf_arrays(node)
            if arrays is None:
                out.extend((e.oid, e.x, e.y) for e in node.entries)
            else:
                out.extend(
                    zip(
                        arrays.oids.tolist(),
                        arrays.xs.tolist(),
                        arrays.ys.tolist(),
                    )
                )
        return out
    return [(e.oid, e.x, e.y) for e in object_tree.all_entries()]


def _stds_range_batched(
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    objects: list[tuple[int, float, float]],
    batch_size: int,
    stats: QueryStats | None = None,
    pool: ThreadPoolExecutor | None = None,
    rec=_tracing.NULL_RECORDER,
    floor: float = -math.inf,
    collector=_explain.NULL_COLLECTOR,
) -> list[tuple[float, int, float, float]]:
    top: list[tuple[float, int]] = []  # min-heap by score
    threshold = floor
    candidates: list[tuple[float, int, float, float]] = []
    c = query.c
    debug = logger.isEnabledFor(logging.DEBUG)
    trace_id = _tracing.current_trace_id()

    for start in range(0, len(objects), batch_size):
        chunk = objects[start : start + batch_size]
        chunk_id = start // batch_size
        pending = {oid: (x, y) for oid, x, y in chunk}
        precomputed: list[dict[int, float]] | None = None
        if pool is not None and c > 1:
            # Score the chunk against every feature set concurrently,
            # then replay the serial threshold fold below over the
            # precomputed values — the fold sees exactly the numbers the
            # serial path would have computed.  The worker re-enters the
            # caller's trace scope: ThreadPoolExecutor does not carry
            # context across threads, and the spans recorded inside must
            # join the query's trace id.
            def _scored(i, tree, pending=pending):
                if trace_id is None:
                    with rec.span(
                        "stds.chunk_scan", feature_set=i, chunk=chunk_id
                    ):
                        return compute_scores_batch(
                            tree, query, query.keyword_masks[i], pending,
                            stats, collector=collector, set_id=i,
                        )
                with _tracing.trace_scope(trace_id):
                    with rec.span(
                        "stds.chunk_scan", feature_set=i, chunk=chunk_id
                    ):
                        return compute_scores_batch(
                            tree, query, query.keyword_masks[i], pending,
                            stats, collector=collector, set_id=i,
                        )

            futures = [
                pool.submit(_scored, i, tree)
                for i, tree in enumerate(feature_trees)
            ]
            precomputed = [f.result() for f in futures]
        partial = {oid: 0.0 for oid, _, _ in chunk}
        for i, tree in enumerate(feature_trees):
            if not pending:
                break
            remaining_sets = c - i - 1
            if precomputed is not None:
                scores = precomputed[i]
            else:
                with rec.span(
                    "stds.chunk_scan", feature_set=i, chunk=chunk_id
                ):
                    scores = compute_scores_batch(
                        tree,
                        query,
                        query.keyword_masks[i],
                        pending,
                        stats,
                        partial=partial,
                        threshold=threshold,
                        remaining_sets=remaining_sets,
                        collector=collector,
                        set_id=i,
                    )
            if remaining_sets == 0:
                # Last feature set: no survivor set to build.
                for oid in pending:
                    partial[oid] += scores[oid]
                break
            survivors: dict[int, tuple[float, float]] = {}
            drop_cut = threshold - _DROP_EPS
            for oid, loc in pending.items():
                total = partial[oid] + scores[oid]
                partial[oid] = total
                # τ̂(p): known partials + 1 per unknown set (Section 5).
                # Drop only when *strictly* below the cut (with the same
                # epsilon guard as compute_scores_batch): an object whose
                # exact aggregate ties the k-th score must survive so the
                # (score desc, oid asc) tie-break sees it.
                if total + remaining_sets > drop_cut:
                    survivors[oid] = loc
            if collector.active:
                collector.objects_dropped(len(pending) - len(survivors))
            pending = survivors
        with rec.span("stds.threshold_fold", chunk=chunk_id):
            for oid, x, y in chunk:
                score = partial[oid]
                candidates.append((score, oid, x, y))
                if len(top) < query.k:
                    heapq.heappush(top, (score, -oid))
                elif score > top[0][0]:
                    heapq.heapreplace(top, (score, -oid))
                if len(top) == query.k and top[0][0] > threshold:
                    threshold = top[0][0]
        if collector.active:
            collector.chunk(chunk_id, len(chunk), threshold)
        if debug:
            logger.debug(
                "stds chunk %d: %d objects, threshold now %.6f",
                chunk_id, len(chunk), threshold,
            )
    return _prune_candidates(candidates, top, query.k)


def _prune_candidates(
    candidates: list[tuple[float, int, float, float]],
    top: list[tuple[float, int]],
    k: int,
) -> list[tuple[float, int, float, float]]:
    """Drop candidates that can no longer rank (score below the k-th).

    Keeps every candidate at the cut-off score, so ``rank_items``'
    (score desc, oid asc) tie-breaking sees everything it needs and the
    top-k is exactly that of the unpruned list.
    """
    if len(top) < k:
        return candidates
    cutoff = top[0][0]
    return [cand for cand in candidates if cand[0] >= cutoff]


def _stds_per_object(
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    objects: list[tuple[int, float, float]],
    stats: QueryStats | None = None,
    floor: float = -math.inf,
    collector=_explain.NULL_COLLECTOR,
) -> list[tuple[float, int, float, float]]:
    score_fn = {
        Variant.INFLUENCE: compute_score_influence,
        Variant.NEAREST: compute_score_nearest,
        Variant.RANGE: compute_score,
    }[query.variant]
    threshold = floor
    top: list[tuple[float, int]] = []
    candidates: list[tuple[float, int, float, float]] = []
    c = query.c
    for oid, x, y in objects:
        total = 0.0
        for i, tree in enumerate(feature_trees):
            if total + (c - i) < threshold - _DROP_EPS:
                # τ̂(p) strictly below the k-th score (epsilon-guarded so
                # an exact tie at the cut always survives for the
                # (score desc, oid asc) tie-break).
                if collector.active:
                    collector.early_termination()
                    collector.objects_dropped()
                break
            total += score_fn(tree, query, query.keyword_masks[i], (x, y), stats)
        else:
            candidates.append((total, oid, x, y))
            if len(top) < query.k:
                heapq.heappush(top, (total, -oid))
            elif total > top[0][0]:
                heapq.heapreplace(top, (total, -oid))
            if len(top) == query.k and top[0][0] > threshold:
                threshold = top[0][0]
    if collector.active:
        # The per-object scan is a single logical chunk.
        collector.chunk(0, len(objects), threshold)
    return candidates


def _dist(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])


def _dist2(a: tuple[float, float], b: tuple[float, float]) -> float:
    """Squared distance — the same predicate the vectorized path uses."""
    dx = a[0] - b[0]
    dy = a[1] - b[1]
    return dx * dx + dy * dy
