"""Spatio-Textual Data Scan (STDS) — the paper's baseline (Section 5).

Algorithm 1: scan every data object, compute its score ``τ_i(p)`` against
each feature set with Algorithm 2, keep the top-k.  An upper bound
``τ̂(p)`` (known partial scores + 1 per unknown set) lets the scan skip
remaining feature sets once an object can no longer reach the top-k.

Algorithm 2 (``compute_score``): best-first traversal of the feature
index ordered by ``ŝ(e)``; prune entries out of range or textually
irrelevant; the first feature object popped within range is the answer —
the sorted access plus the upper-bound property make that maximal.

The paper's evaluation uses the *batched* improvement (end of Section 5):
one traversal per feature set serves a whole set of pending objects; an
entry is expanded when at least one pending object is in range, and a
popped feature resolves every pending object in its range.  We batch in
chunks so Algorithm 1's threshold pruning still kicks in between chunks.

Section 7 adaptations (influence / nearest-neighbor) re-prioritize the
same traversal and drop the range predicate, exactly as described.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Sequence

from repro.core.grid import SpatialGrid
from repro.core.query import PreferenceQuery, Variant
from repro.core.results import QueryResult, QueryStats, StatsTracker, rank_items
from repro.errors import QueryError
from repro.index.feature_tree import FeatureTree
from repro.index.nodes import FeatureLeafEntry
from repro.index.object_rtree import ObjectRTree

DEFAULT_BATCH_SIZE = 1024


# ----------------------------------------------------------------------
# Algorithm 2 and its variant adaptations: single-object score
# ----------------------------------------------------------------------
def compute_score(
    tree: FeatureTree,
    query: PreferenceQuery,
    mask: int,
    point: tuple[float, float],
) -> float:
    """``τ_i(p)`` for one object and one feature set (range variant)."""
    scorer = tree.make_scorer(mask, query.lam)
    radius = query.radius
    heap: list[tuple[float, int, object]] = []
    counter = 0

    def push(entries, is_leaf: bool) -> None:
        nonlocal counter
        for e in entries:
            if is_leaf:
                if (
                    scorer.leaf_relevant(e)
                    and _dist(point, (e.x, e.y)) <= radius
                ):
                    counter += 1
                    heapq.heappush(heap, (-scorer.leaf_score(e), counter, e))
            else:
                if scorer.node_relevant(e) and e.rect.mindist(point) <= radius:
                    counter += 1
                    heapq.heappush(heap, (-scorer.node_bound(e), counter, e))

    if tree.root_id is None or tree.count == 0:
        return 0.0
    root = tree.read_node(tree.root_id)
    push(root.entries, root.is_leaf)
    while heap:
        neg_bound, _, entry = heapq.heappop(heap)
        if isinstance(entry, FeatureLeafEntry):
            return -neg_bound
        node = tree.read_node(entry.child)
        push(node.entries, node.is_leaf)
    return 0.0


def compute_score_influence(
    tree: FeatureTree,
    query: PreferenceQuery,
    mask: int,
    point: tuple[float, float],
) -> float:
    """Influence ``τ_i(p)`` (Definition 6): no range cut-off, the
    priority of each entry is its influence bound ``ŝ(e)·2^(-mindist/r)``."""
    scorer = tree.make_scorer(mask, query.lam)
    radius = query.radius
    heap: list[tuple[float, int, object]] = []
    counter = 0

    def push(entries, is_leaf: bool) -> None:
        nonlocal counter
        for e in entries:
            if not scorer.relevant(e):
                continue
            if is_leaf:
                score = scorer.leaf_score(e) * 2.0 ** (
                    -_dist(point, (e.x, e.y)) / radius
                )
            else:
                score = scorer.node_bound(e) * 2.0 ** (
                    -e.rect.mindist(point) / radius
                )
            counter += 1
            heapq.heappush(heap, (-score, counter, e))

    if tree.root_id is None or tree.count == 0:
        return 0.0
    root = tree.read_node(tree.root_id)
    push(root.entries, root.is_leaf)
    while heap:
        neg_bound, _, entry = heapq.heappop(heap)
        if isinstance(entry, FeatureLeafEntry):
            return -neg_bound
        node = tree.read_node(entry.child)
        push(node.entries, node.is_leaf)
    return 0.0


def compute_score_nearest(
    tree: FeatureTree,
    query: PreferenceQuery,
    mask: int,
    point: tuple[float, float],
) -> float:
    """Nearest-neighbor ``τ_i(p)`` (Definition 7): the score of the
    closest *relevant* feature — best-first by minimum distance with the
    ``sim > 0`` pruning retained."""
    scorer = tree.make_scorer(mask, query.lam)
    heap: list[tuple[float, int, object]] = []
    counter = 0

    def push(entries, is_leaf: bool) -> None:
        nonlocal counter
        for e in entries:
            if not scorer.relevant(e):
                continue
            d = (
                _dist(point, (e.x, e.y))
                if is_leaf
                else e.rect.mindist(point)
            )
            counter += 1
            heapq.heappush(heap, (d, counter, e))

    if tree.root_id is None or tree.count == 0:
        return 0.0
    root = tree.read_node(tree.root_id)
    push(root.entries, root.is_leaf)
    while heap:
        _, _, entry = heapq.heappop(heap)
        if isinstance(entry, FeatureLeafEntry):
            return scorer.leaf_score(entry)
        node = tree.read_node(entry.child)
        push(node.entries, node.is_leaf)
    return 0.0


# ----------------------------------------------------------------------
# batched Algorithm 2 (range variant)
# ----------------------------------------------------------------------
def compute_scores_batch(
    tree: FeatureTree,
    query: PreferenceQuery,
    mask: int,
    pending: dict[int, tuple[float, float]],
) -> dict[int, float]:
    """``τ_i(p)`` for a batch of objects in one index traversal.

    ``pending`` maps oid -> (x, y).  Returns oid -> score; objects with no
    relevant in-range feature get 0.0.
    """
    scores = {oid: 0.0 for oid in pending}
    if tree.root_id is None or tree.count == 0 or not pending:
        return scores
    radius = query.radius
    scorer = tree.make_scorer(mask, query.lam)
    grid = SpatialGrid(max(radius, 1e-6))
    grid.bulk_insert((oid, x, y) for oid, (x, y) in pending.items())

    heap: list[tuple[float, int, object]] = []
    counter = 0

    def push(entries, is_leaf: bool) -> None:
        nonlocal counter
        for e in entries:
            if not scorer.relevant(e):
                continue
            counter += 1
            if is_leaf:
                heapq.heappush(heap, (-scorer.leaf_score(e), counter, e))
            else:
                heapq.heappush(heap, (-scorer.node_bound(e), counter, e))

    root = tree.read_node(tree.root_id)
    push(root.entries, root.is_leaf)
    while heap and not grid.is_empty:
        neg_bound, _, entry = heapq.heappop(heap)
        if isinstance(entry, FeatureLeafEntry):
            resolved = list(grid.near_point(entry.x, entry.y, radius))
            for oid, x, y in resolved:
                scores[oid] = -neg_bound
                grid.remove(oid, x, y)
        else:
            # Expand only when some pending object is within range of the
            # entry (the batched expansion rule of Section 5).
            if grid.any_near_rect(entry.rect, radius):
                node = tree.read_node(entry.child)
                push(node.entries, node.is_leaf)
    return scores


# ----------------------------------------------------------------------
# Algorithm 1: the full scan
# ----------------------------------------------------------------------
def stds(
    object_tree: ObjectRTree,
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> QueryResult:
    """Run STDS for any score variant.

    The range variant uses the batched score computation; the influence
    and nearest-neighbor variants use the per-object adaptations of
    Section 7 (they are evaluated in the paper only through STPS, but are
    provided for completeness and as a correctness oracle).
    """
    if len(feature_trees) != query.c:
        raise QueryError(
            f"query addresses {query.c} feature sets, processor has "
            f"{len(feature_trees)}"
        )
    tracker = StatsTracker(
        [object_tree.pagefile] + [t.pagefile for t in feature_trees]
    )
    stats = QueryStats()

    objects = [(e.oid, e.x, e.y) for e in object_tree.all_entries()]
    stats.objects_scored = len(objects)

    if query.variant is Variant.RANGE:
        candidates = _stds_range_batched(
            feature_trees, query, objects, batch_size
        )
    else:
        candidates = _stds_per_object(feature_trees, query, objects)

    result = QueryResult(rank_items(candidates, query.k), stats)
    tracker.finish(stats)
    return result


def _stds_range_batched(
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    objects: list[tuple[int, float, float]],
    batch_size: int,
) -> list[tuple[float, int, float, float]]:
    top: list[tuple[float, int, float, float]] = []  # min-heap by score
    threshold = -math.inf
    candidates: list[tuple[float, int, float, float]] = []
    c = query.c

    for start in range(0, len(objects), batch_size):
        chunk = objects[start : start + batch_size]
        partial = {oid: 0.0 for oid, _, _ in chunk}
        pending = {oid: (x, y) for oid, x, y in chunk}
        for i, tree in enumerate(feature_trees):
            if not pending:
                break
            scores = compute_scores_batch(
                tree, query, query.keyword_masks[i], pending
            )
            remaining_sets = c - i - 1
            survivors: dict[int, tuple[float, float]] = {}
            for oid, loc in pending.items():
                partial[oid] += scores[oid]
                # τ̂(p): known partials + 1 per unknown set (Section 5).
                if partial[oid] + remaining_sets > threshold:
                    survivors[oid] = loc
            pending = survivors
        locations = {oid: (x, y) for oid, x, y in chunk}
        for oid, score in partial.items():
            x, y = locations[oid]
            candidates.append((score, oid, x, y))
            if len(top) < query.k:
                heapq.heappush(top, (score, -oid))
            elif score > top[0][0]:
                heapq.heapreplace(top, (score, -oid))
            if len(top) == query.k:
                threshold = top[0][0]
    return candidates


def _stds_per_object(
    feature_trees: Sequence[FeatureTree],
    query: PreferenceQuery,
    objects: list[tuple[int, float, float]],
) -> list[tuple[float, int, float, float]]:
    score_fn = {
        Variant.INFLUENCE: compute_score_influence,
        Variant.NEAREST: compute_score_nearest,
        Variant.RANGE: compute_score,
    }[query.variant]
    threshold = -math.inf
    top: list[tuple[float, int]] = []
    candidates: list[tuple[float, int, float, float]] = []
    c = query.c
    for oid, x, y in objects:
        total = 0.0
        for i, tree in enumerate(feature_trees):
            if total + (c - i) <= threshold:
                break  # τ̂(p) can no longer reach the top-k
            total += score_fn(tree, query, query.keyword_masks[i], (x, y))
        else:
            candidates.append((total, oid, x, y))
            if len(top) < query.k:
                heapq.heappush(top, (total, -oid))
            elif total > top[0][0]:
                heapq.heapreplace(top, (total, -oid))
            if len(top) == query.k:
                threshold = top[0][0]
    return candidates


def _dist(a: tuple[float, float], b: tuple[float, float]) -> float:
    return math.hypot(a[0] - b[0], a[1] - b[1])
