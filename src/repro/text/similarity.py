"""Textual similarity functions and their node-level upper bounds.

The paper fixes ``sim(t, W)`` to the Jaccard similarity between the
feature's keywords and the query keywords (Section 3).  Keyword sets are
represented as bit masks throughout the hot path, so the implementations
below are popcount-based.

For index entries the paper uses the relaxed bound (Section 4.2)::

    sim_ub(e, W) = |e.W ∩ W| / |W|   >=   J(t.W, W)  for every t under e

which holds because ``|t.W ∩ W| <= |e.W ∩ W|`` and ``|t.W ∪ W| >= |W|``.
"""

from __future__ import annotations

from collections.abc import Iterable


def mask_of(term_ids: Iterable[int]) -> int:
    """Bit mask with bit ``i`` set for every id ``i`` in ``term_ids``."""
    mask = 0
    for term_id in term_ids:
        mask |= 1 << term_id
    return mask


def mask_to_ids(mask: int) -> frozenset[int]:
    """Inverse of :func:`mask_of`."""
    ids = set()
    bit = 0
    while mask:
        if mask & 1:
            ids.add(bit)
        mask >>= 1
        bit += 1
    return frozenset(ids)


def jaccard(mask_a: int, mask_b: int) -> float:
    """Jaccard similarity |A∩B| / |A∪B| of two keyword bit masks.

    Defined as 0.0 when both sets are empty (no evidence of similarity).
    """
    union = mask_a | mask_b
    if union == 0:
        return 0.0
    inter = mask_a & mask_b
    return inter.bit_count() / union.bit_count()


def jaccard_sets(a: frozenset[int], b: frozenset[int]) -> float:
    """Jaccard similarity of two term-id sets."""
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


def overlap_ratio(node_mask: int, query_mask: int) -> float:
    """Node-level similarity upper bound ``|e.W ∩ W| / |W|``.

    ``node_mask`` is the union of all keywords below the node; the result
    upper-bounds the Jaccard similarity of every descendant feature.
    Returns 0.0 for an empty query.
    """
    query_size = query_mask.bit_count()
    if query_size == 0:
        return 0.0
    return (node_mask & query_mask).bit_count() / query_size
