"""Superimposed-coding signatures for the IR²-tree baseline.

The IR²-tree of Felipe et al. [8] attaches a fixed-width bit signature to
every node: each keyword hashes to ``bits_per_term`` positions in an
``F``-bit signature, a node's signature is the OR of its children's, and a
keyword *may* be present under a node iff all its hash bits are set.  The
scheme admits false positives (which cost extra traversal) but never false
negatives (which would break correctness) — exactly the property the
query-processing bounds rely on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import IndexError_

DEFAULT_BITS_PER_TERM = 3


@dataclass(frozen=True, slots=True)
class SignatureScheme:
    """Hashing parameters shared by every node of one IR²-tree."""

    signature_bits: int
    bits_per_term: int = DEFAULT_BITS_PER_TERM

    def __post_init__(self) -> None:
        if self.signature_bits < 8:
            raise IndexError_(
                f"signature width {self.signature_bits} is too small"
            )
        if not 1 <= self.bits_per_term <= self.signature_bits:
            raise IndexError_(
                f"bits per term {self.bits_per_term} incompatible with "
                f"{self.signature_bits}-bit signatures"
            )

    @classmethod
    def for_vocabulary(cls, vocab_size: int) -> "SignatureScheme":
        """Default sizing: half the vocabulary width, at least 32 bits.

        Keeps the IR²-tree's per-entry byte cost comparable to (slightly
        below) the SRT-index's exact bitmap, mirroring the trade-off the
        paper discusses: smaller summaries, fuzzier pruning.
        """
        return cls(signature_bits=max(32, vocab_size // 2))

    def term_signature(self, term_id: int) -> int:
        """Signature bits contributed by a single term."""
        return _term_signature(term_id, self.signature_bits, self.bits_per_term)

    def make(self, term_ids) -> int:
        """Signature of a keyword set (OR of per-term signatures)."""
        sig = 0
        for term_id in term_ids:
            sig |= self.term_signature(term_id)
        return sig

    def from_mask(self, keyword_mask: int) -> int:
        """Signature of a keyword bit mask."""
        sig = 0
        bit = 0
        mask = keyword_mask
        while mask:
            if mask & 1:
                sig |= self.term_signature(bit)
            mask >>= 1
            bit += 1
        return sig

    def may_contain(self, signature: int, term_id: int) -> bool:
        """True when the term *may* appear below a node with ``signature``."""
        term_sig = self.term_signature(term_id)
        return signature & term_sig == term_sig

    def matching_terms(self, signature: int, query_ids) -> int:
        """How many query terms may appear under the node (>= the truth)."""
        return sum(1 for t in query_ids if self.may_contain(signature, t))

    @property
    def byte_length(self) -> int:
        """Bytes needed to store one signature."""
        return (self.signature_bits + 7) // 8


@lru_cache(maxsize=65536)
def _term_signature(term_id: int, signature_bits: int, bits_per_term: int) -> int:
    """Deterministic per-term bit pattern derived from SHA-256."""
    sig = 0
    payload = term_id.to_bytes(8, "little")
    counter = 0
    while sig.bit_count() < bits_per_term:
        digest = hashlib.sha256(payload + counter.to_bytes(4, "little")).digest()
        position = int.from_bytes(digest[:8], "little") % signature_bits
        sig |= 1 << position
        counter += 1
    return sig
