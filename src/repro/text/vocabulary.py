"""Keyword vocabulary: string terms <-> dense integer ids.

The paper represents each feature's keyword set as a binary vector over the
``w`` distinct vocabulary terms (Section 4.2).  Term ids here are exactly
the bit positions of that vector.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import VocabularyError


class Vocabulary:
    """A bidirectional mapping between keyword strings and term ids."""

    def __init__(self, terms: Iterable[str] = ()) -> None:
        self._terms: list[str] = []
        self._ids: dict[str, int] = {}
        for term in terms:
            self.add(term)

    @property
    def size(self) -> int:
        """Number of distinct terms (the ``w`` of the paper)."""
        return len(self._terms)

    def add(self, term: str) -> int:
        """Register a term (idempotent) and return its id."""
        normalized = self._normalize(term)
        existing = self._ids.get(normalized)
        if existing is not None:
            return existing
        term_id = len(self._terms)
        self._terms.append(normalized)
        self._ids[normalized] = term_id
        return term_id

    def term_id(self, term: str) -> int | None:
        """Id of a term, or None when out of vocabulary."""
        return self._ids.get(self._normalize(term))

    def require_id(self, term: str) -> int:
        """Id of a term; raises :class:`VocabularyError` when unknown."""
        term_id = self.term_id(term)
        if term_id is None:
            raise VocabularyError(f"unknown term {term!r}")
        return term_id

    def term(self, term_id: int) -> str:
        """String for a term id."""
        if not 0 <= term_id < len(self._terms):
            raise VocabularyError(f"term id {term_id} out of range")
        return self._terms[term_id]

    def encode(self, terms: Iterable[str]) -> frozenset[int]:
        """Term ids for the known strings among ``terms`` (adds nothing)."""
        ids = (self.term_id(t) for t in terms)
        return frozenset(i for i in ids if i is not None)

    def encode_adding(self, terms: Iterable[str]) -> frozenset[int]:
        """Term ids for ``terms``, registering any new terms."""
        return frozenset(self.add(t) for t in terms)

    def decode(self, term_ids: Iterable[int]) -> frozenset[str]:
        """Strings for a set of term ids."""
        return frozenset(self.term(i) for i in term_ids)

    def mask_of(self, terms: Iterable[str]) -> int:
        """Bit mask with one bit per known term in ``terms``."""
        mask = 0
        for term in terms:
            term_id = self.term_id(term)
            if term_id is not None:
                mask |= 1 << term_id
        return mask

    def __iter__(self) -> Iterator[str]:
        return iter(self._terms)

    def __contains__(self, term: str) -> bool:
        return self._normalize(term) in self._ids

    def __len__(self) -> int:
        return len(self._terms)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocabulary):
            return NotImplemented
        return self._terms == other._terms

    @staticmethod
    def _normalize(term: str) -> str:
        normalized = term.strip().lower()
        if not normalized:
            raise VocabularyError("empty keyword")
        return normalized
