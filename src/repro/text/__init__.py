"""Textual machinery: vocabulary, Jaccard similarity, signatures."""

from repro.text.signature import DEFAULT_BITS_PER_TERM, SignatureScheme
from repro.text.similarity import (
    jaccard,
    jaccard_sets,
    mask_of,
    mask_to_ids,
    overlap_ratio,
)
from repro.text.vocabulary import Vocabulary

__all__ = [
    "DEFAULT_BITS_PER_TERM",
    "SignatureScheme",
    "Vocabulary",
    "jaccard",
    "jaccard_sets",
    "mask_of",
    "mask_to_ids",
    "overlap_ratio",
]
