"""Reopen persisted trees from their storage, without rebuilding.

Every tree writes a metadata page (page 0, see
:meth:`repro.index.rtree_base.RTreeBase._write_meta`) carrying its
``kind`` plus the constructor parameters needed to re-instantiate it.
:func:`open_tree` reads that page from any :class:`PageFile` — disk,
memory, or a :class:`~repro.storage.shm.SharedMemoryPageFile` attached
from another process — and returns a ready-to-query tree with
``root_id``/``height``/``count`` restored and nothing rebuilt.

This is what makes shard storage cheaply transferable: a worker process
receives only a segment name, attaches, and reopens.
"""

from __future__ import annotations

from repro.errors import IndexError_, StorageError
from repro.index.ir2 import IR2Tree
from repro.index.irtree import IRTree
from repro.index.object_rtree import ObjectRTree
from repro.index.rtree_base import META_PAGE_ID, RTreeBase
from repro.index.srt import SRTIndex
from repro.storage.buffer import DEFAULT_BUFFER_PAGES
from repro.storage.pagefile import PageFile
from repro.text.signature import SignatureScheme

#: ``metadata()["kind"]`` -> tree class, for every persisted tree type.
TREE_KINDS = {
    "object": ObjectRTree,
    "srt": SRTIndex,
    "ir2": IR2Tree,
    "irtree": IRTree,
}


def open_tree(
    pagefile: PageFile,
    buffer_pages: int = DEFAULT_BUFFER_PAGES,
    node_cache_pages: int | None = None,
) -> RTreeBase:
    """Open the tree persisted in ``pagefile`` (see module docstring)."""
    meta = RTreeBase.read_meta(pagefile)
    kind = meta.get("kind")
    if kind not in TREE_KINDS:
        raise IndexError_(
            f"unknown tree kind {kind!r}; expected one of "
            f"{sorted(TREE_KINDS)}"
        )
    if meta.get("page_size") != pagefile.page_size:
        raise StorageError(
            f"page size mismatch: meta says {meta.get('page_size')}, "
            f"page file uses {pagefile.page_size}"
        )
    if kind == "object":
        tree: RTreeBase = ObjectRTree(pagefile, buffer_pages, node_cache_pages)
    elif kind == "srt":
        tree = SRTIndex(
            meta["vocab_size"], pagefile, buffer_pages, node_cache_pages
        )
    elif kind == "ir2":
        tree = IR2Tree(
            meta["vocab_size"],
            pagefile,
            buffer_pages,
            SignatureScheme(meta["signature_bits"], meta["bits_per_term"]),
            node_cache_pages,
        )
    else:  # "irtree"
        tree = IRTree(
            meta["vocab_size"], pagefile, buffer_pages, node_cache_pages
        )
    tree.root_id = meta["root"]
    tree.height = meta["height"]
    tree.count = meta["count"]
    tree._meta_page_id = META_PAGE_ID
    return tree
