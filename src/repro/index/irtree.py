"""IR-tree style baseline: spatial clustering with exact summaries.

The IR-tree of Cong et al. [6, 11] augments an R-tree with per-node
inverted files, i.e. *exact* knowledge of which terms appear below each
node.  Re-cast into this repo's bitmask machinery, that is an R-tree
built on spatial location only (like the IR²-tree) whose node summaries
are exact keyword-union masks (like the SRT-index).

It is included as an extension baseline because it isolates the two
ingredients of the SRT-index's advantage:

* **summary fidelity** — IR-tree vs IR²-tree differ only in exact union
  vs lossy signature;
* **clustering** — SRT vs IR-tree differ only in the 4-d mapped build
  order vs spatial-only build order.

The ``ablation_index`` experiment measures all three side by side.
"""

from __future__ import annotations

from repro.hilbert.curve import hilbert_key_2d
from repro.index.feature_tree import FeatureScorer, FeatureTree
from repro.index.nodes import FeatureLeafEntry
from repro.text.similarity import overlap_ratio

IRT_KEY_BITS = 16


class IRTree(FeatureTree):
    """Spatially-built R-tree with exact keyword-union summaries."""

    def summary_bytes(self) -> int:
        # Exact union mask, same width as the leaf masks.
        return (self.vocab_size + 7) // 8

    def leaf_summary(self, mask: int) -> int:
        return mask

    def bulk_sort_key(self, entry: FeatureLeafEntry) -> int:
        """Spatial Hilbert key only, exactly like the IR²-tree."""
        return hilbert_key_2d(entry.x, entry.y, IRT_KEY_BITS)

    def make_scorer(self, query_mask: int, lam: float) -> FeatureScorer:
        def sim_upper(summary: int) -> float:
            return overlap_ratio(summary, query_mask)

        return FeatureScorer(query_mask, lam, sim_upper)

    def metadata(self) -> dict:
        return {
            "kind": "irtree",
            "vocab_size": self.vocab_size,
            "page_size": self.pagefile.page_size,
        }
