"""Spatial indexes: object R-tree, SRT-index, IR²-tree."""

from repro.index.feature_tree import FeatureScorer, FeatureTree
from repro.index.ir2 import IR2Tree
from repro.index.irtree import IRTree
from repro.index.nodes import (
    FeatureInternalEntry,
    FeatureLeafEntry,
    Node,
    ObjectInternalEntry,
    ObjectLeafEntry,
)
from repro.index.object_rtree import ObjectRTree
from repro.index.rtree_base import RTreeBase
from repro.index.srt import SRTIndex

__all__ = [
    "FeatureInternalEntry",
    "FeatureLeafEntry",
    "FeatureScorer",
    "FeatureTree",
    "IR2Tree",
    "IRTree",
    "Node",
    "ObjectInternalEntry",
    "ObjectLeafEntry",
    "ObjectRTree",
    "RTreeBase",
    "SRTIndex",
]
