"""R-tree node formats and their binary codecs.

Two node families share one layout scheme:

* **object nodes** (the data-object R-tree of Section 4.1): leaf entries
  are bare points, internal entries are child MBRs;
* **feature nodes** (SRT-index and modified IR²-tree): leaf entries carry
  the feature's quality score and exact keyword bit mask, internal entries
  additionally carry the two per-node aggregates the paper requires —
  the max descendant score ``e.s`` and a keyword summary ``e.W`` (exact
  union mask for SRT, superimposed signature for IR²).

Payload layout: ``[level:u8][count:u16]`` followed by fixed-size entries,
so node fan-out is *derived from the page size* — growing the vocabulary
grows the per-entry summary and shrinks fan-out, reproducing the effect
the paper discusses for Figure 7(d).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import IndexError_, StorageError
from repro.geometry.rect import Rect

_HEADER = struct.Struct("<BH")
_OBJ_LEAF = struct.Struct("<qdd")
_OBJ_INTERNAL = struct.Struct("<q4d")
_FEAT_LEAF_FIXED = struct.Struct("<q3d")
_FEAT_INTERNAL_FIXED = struct.Struct("<q5d")

LEAF_LEVEL = 0


@dataclass(frozen=True, slots=True)
class ObjectLeafEntry:
    """A data object stored in a leaf: id plus location."""

    oid: int
    x: float
    y: float

    @property
    def location(self) -> tuple[float, float]:
        return (self.x, self.y)

    @property
    def rect(self) -> Rect:
        return Rect((self.x, self.y), (self.x, self.y))


@dataclass(frozen=True, slots=True)
class ObjectInternalEntry:
    """A child pointer with its MBR."""

    child: int
    rect: Rect


@dataclass(frozen=True, slots=True)
class FeatureLeafEntry:
    """A feature object in a leaf: id, location, score, keyword mask."""

    fid: int
    x: float
    y: float
    score: float
    mask: int

    @property
    def location(self) -> tuple[float, float]:
        return (self.x, self.y)

    @property
    def rect(self) -> Rect:
        return Rect((self.x, self.y), (self.x, self.y))


@dataclass(frozen=True, slots=True)
class FeatureInternalEntry:
    """A child pointer with MBR plus the paper's aggregates.

    ``max_score`` is the maximum ``t.s`` below the child; ``summary`` is
    the textual summary of all descendant keywords (union mask for the
    SRT-index, signature for the IR²-tree).
    """

    child: int
    rect: Rect
    max_score: float
    summary: int


Entry = (
    ObjectLeafEntry | ObjectInternalEntry | FeatureLeafEntry | FeatureInternalEntry
)


@dataclass(slots=True)
class Node:
    """A decoded R-tree node: page id, level (0 = leaf) and entries.

    ``_leaf_arrays`` caches the columnar (numpy) view of a leaf's entries
    built by :mod:`repro.index.leafdata` for vectorized scoring; it is
    populated lazily on first use and dropped whenever the node is
    rewritten (``RTreeBase.write_node`` calls :meth:`invalidate_arrays`).
    """

    page_id: int
    level: int
    entries: list
    _leaf_arrays: object = field(default=None, repr=False, compare=False)

    @property
    def is_leaf(self) -> bool:
        return self.level == LEAF_LEVEL

    def invalidate_arrays(self) -> None:
        """Drop the cached columnar view (entries may have mutated)."""
        self._leaf_arrays = None

    def mbr(self) -> Rect:
        """MBR of all entries in this node."""
        if not self.entries:
            raise IndexError_(f"node {self.page_id} has no entries")
        rects = [
            e.rect if not isinstance(e, (ObjectInternalEntry, FeatureInternalEntry))
            else e.rect
            for e in self.entries
        ]
        return Rect.union_of(rects)


class ObjectNodeCodec:
    """Binary codec for data-object R-tree nodes."""

    leaf_entry_size = _OBJ_LEAF.size
    internal_entry_size = _OBJ_INTERNAL.size

    def encode(self, node: Node) -> bytes:
        parts = [_HEADER.pack(node.level, len(node.entries))]
        if node.is_leaf:
            for e in node.entries:
                parts.append(_OBJ_LEAF.pack(e.oid, e.x, e.y))
        else:
            for e in node.entries:
                parts.append(
                    _OBJ_INTERNAL.pack(
                        e.child, e.rect.low[0], e.rect.low[1],
                        e.rect.high[0], e.rect.high[1],
                    )
                )
        return b"".join(parts)

    def decode(self, page_id: int, payload: bytes) -> Node:
        level, count = _unpack_header(page_id, payload)
        entries: list = []
        offset = _HEADER.size
        if level == LEAF_LEVEL:
            for _ in range(count):
                oid, x, y = _OBJ_LEAF.unpack_from(payload, offset)
                offset += _OBJ_LEAF.size
                entries.append(ObjectLeafEntry(oid, x, y))
        else:
            for _ in range(count):
                child, x0, y0, x1, y1 = _OBJ_INTERNAL.unpack_from(payload, offset)
                offset += _OBJ_INTERNAL.size
                entries.append(ObjectInternalEntry(child, Rect((x0, y0), (x1, y1))))
        return Node(page_id, level, entries)

    def leaf_fanout(self, payload_capacity: int) -> int:
        return _fanout(payload_capacity, self.leaf_entry_size)

    def internal_fanout(self, payload_capacity: int) -> int:
        return _fanout(payload_capacity, self.internal_entry_size)


class FeatureNodeCodec:
    """Binary codec for feature-tree nodes.

    ``mask_bytes`` sizes the exact per-feature keyword masks stored in
    leaves; ``summary_bytes`` sizes the per-node textual summary stored in
    internal entries (equal to ``mask_bytes`` for the SRT-index, to the
    signature width for the IR²-tree).
    """

    def __init__(self, mask_bytes: int, summary_bytes: int) -> None:
        if mask_bytes < 1 or summary_bytes < 1:
            raise IndexError_("mask and summary widths must be positive")
        self.mask_bytes = mask_bytes
        self.summary_bytes = summary_bytes
        self.leaf_entry_size = _FEAT_LEAF_FIXED.size + mask_bytes
        self.internal_entry_size = _FEAT_INTERNAL_FIXED.size + summary_bytes

    def encode(self, node: Node) -> bytes:
        parts = [_HEADER.pack(node.level, len(node.entries))]
        if node.is_leaf:
            for e in node.entries:
                parts.append(_FEAT_LEAF_FIXED.pack(e.fid, e.x, e.y, e.score))
                parts.append(_encode_big(e.mask, self.mask_bytes, e.fid))
        else:
            for e in node.entries:
                parts.append(
                    _FEAT_INTERNAL_FIXED.pack(
                        e.child, e.rect.low[0], e.rect.low[1],
                        e.rect.high[0], e.rect.high[1], e.max_score,
                    )
                )
                parts.append(_encode_big(e.summary, self.summary_bytes, e.child))
        return b"".join(parts)

    def decode(self, page_id: int, payload: bytes) -> Node:
        level, count = _unpack_header(page_id, payload)
        entries: list = []
        offset = _HEADER.size
        if level == LEAF_LEVEL:
            for _ in range(count):
                fid, x, y, score = _FEAT_LEAF_FIXED.unpack_from(payload, offset)
                offset += _FEAT_LEAF_FIXED.size
                mask = int.from_bytes(
                    payload[offset : offset + self.mask_bytes], "little"
                )
                offset += self.mask_bytes
                entries.append(FeatureLeafEntry(fid, x, y, score, mask))
        else:
            for _ in range(count):
                child, x0, y0, x1, y1, max_score = _FEAT_INTERNAL_FIXED.unpack_from(
                    payload, offset
                )
                offset += _FEAT_INTERNAL_FIXED.size
                summary = int.from_bytes(
                    payload[offset : offset + self.summary_bytes], "little"
                )
                offset += self.summary_bytes
                entries.append(
                    FeatureInternalEntry(
                        child, Rect((x0, y0), (x1, y1)), max_score, summary
                    )
                )
        return Node(page_id, level, entries)

    def leaf_fanout(self, payload_capacity: int) -> int:
        return _fanout(payload_capacity, self.leaf_entry_size)

    def internal_fanout(self, payload_capacity: int) -> int:
        return _fanout(payload_capacity, self.internal_entry_size)


def _unpack_header(page_id: int, payload: bytes) -> tuple[int, int]:
    if len(payload) < _HEADER.size:
        raise StorageError(f"page {page_id}: node payload too short")
    return _HEADER.unpack_from(payload)


def _encode_big(value: int, width: int, owner: int) -> bytes:
    try:
        return value.to_bytes(width, "little")
    except OverflowError:
        raise IndexError_(
            f"entry {owner}: mask/summary does not fit {width} bytes"
        ) from None


def _fanout(payload_capacity: int, entry_size: int) -> int:
    fanout = (payload_capacity - _HEADER.size) // entry_size
    if fanout < 2:
        raise IndexError_(
            f"page too small: fan-out {fanout} for {entry_size}-byte entries"
        )
    return fanout
