"""The SRT-index (Section 4) — the paper's indexing contribution.

An R-tree over feature objects built in the *mapped 4-d space*
``(x, y, t.s, H(t.W))`` where ``H`` is the Hilbert/Gray ordering of the
keyword bit vectors (Section 4.2).  Bulk loading sorts features by the
Hilbert key of that 4-d point, so features that are close in space AND
have similar quality AND similar keyword sets land in the same node —
which is exactly what makes the node bound

    ŝ(e) = (1-λ)·e.s + λ·|e.W ∩ W| / |W|

tight.  The per-node keyword summary ``e.W`` is the exact union of all
descendant keywords; per the paper it is maintained as an aggregated
Hilbert value (decode → OR → encode).  We store the union bit mask — the
bijective image of that Hilbert value — and expose the Hilbert form via
:meth:`node_hilbert_value` for interoperability.
"""

from __future__ import annotations

from repro.geometry.rect import Rect
from repro.hilbert.curve import hilbert_key_4d
from repro.hilbert.keywords import KeywordHilbert
from repro.index.feature_tree import FeatureScorer, FeatureTree
from repro.index.nodes import FeatureInternalEntry, FeatureLeafEntry
from repro.storage.buffer import DEFAULT_BUFFER_PAGES
from repro.storage.pagefile import PageFile
from repro.text.similarity import overlap_ratio

SRT_KEY_BITS = 8


class SRTIndex(FeatureTree):
    """Score/textual/spatial R-tree over the mapped 4-d space."""

    def __init__(
        self,
        vocab_size: int,
        pagefile: PageFile | None = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        node_cache_pages: int | None = None,
    ) -> None:
        self._kh = KeywordHilbert(max(1, vocab_size))
        super().__init__(vocab_size, pagefile, buffer_pages, node_cache_pages)

    def summary_bytes(self) -> int:
        # The exact keyword-union mask: one bit per vocabulary term.
        return (self.vocab_size + 7) // 8

    def leaf_summary(self, mask: int) -> int:
        return mask

    def bulk_sort_key(self, entry: FeatureLeafEntry) -> int:
        """Hilbert key of the mapped point ``(x, y, s, H(W))``."""
        text_unit = self._kh.to_unit(self._kh.encode(entry.mask))
        return hilbert_key_4d(entry.x, entry.y, entry.score, text_unit, SRT_KEY_BITS)

    def make_scorer(self, query_mask: int, lam: float) -> FeatureScorer:
        def sim_upper(summary: int) -> float:
            return overlap_ratio(summary, query_mask)

        return FeatureScorer(query_mask, lam, sim_upper)

    def metadata(self) -> dict:
        return {
            "kind": "srt",
            "vocab_size": self.vocab_size,
            "page_size": self.pagefile.page_size,
        }

    def node_hilbert_value(self, entry: FeatureInternalEntry) -> int:
        """The node's aggregated keyword summary as a Hilbert value.

        This is the representation the paper stores; it is the bijective
        image of the union mask we keep (see module docstring).
        """
        return self._kh.encode(entry.summary)

    def _choose_cost(self, internal_entry, target: Rect):
        """Insert-mode subtree choice (extension; the paper bulk-loads).

        Prefers subtrees that already cover the new feature's keywords and
        score, then minimizes spatial enlargement — mirroring the 4-d
        clustering goal of the mapped space.
        """
        leaf_entry = self._pending_leaf
        spatial = internal_entry.rect.enlargement(target)
        if leaf_entry is None:
            return (0.0, 0.0, spatial)
        new_bits = (leaf_entry.mask & ~internal_entry.summary).bit_count()
        text_cost = new_bits / max(1, self.vocab_size)
        score_cost = max(0.0, leaf_entry.score - internal_entry.max_score)
        return (text_cost, score_cost, spatial)

    _pending_leaf: FeatureLeafEntry | None = None

    def insert(self, leaf_entry: FeatureLeafEntry) -> None:
        self._pending_leaf = leaf_entry
        try:
            super().insert(leaf_entry)
        finally:
            self._pending_leaf = None
