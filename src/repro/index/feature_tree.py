"""Base class for spatio-textual feature indexes (Section 4.1).

A feature index stores one feature set ``F_i``.  The paper's requirements
(Section 4.1): any spatial hierarchical index works, provided each entry
``e`` additionally maintains (i) the maximum quality score ``e.s`` below
it and (ii) a summary ``e.W`` of all descendant keywords, such that the
derived bound ``ŝ(e) >= s(t)`` holds for every descendant feature ``t``.

Concrete subclasses:

* :class:`repro.index.srt.SRTIndex` — the paper's contribution;
* :class:`repro.index.ir2.IR2Tree` — the modified IR²-tree baseline.

They differ in bulk-load order (4-d mapped space vs 2-d spatial) and in
the summary representation (exact keyword-union mask vs superimposed
signature), which changes the tightness of ``ŝ(e)`` — the effect the
experiments measure.

Query-time scoring is factored into :class:`FeatureScorer` objects created
per (query keywords, λ) so per-call work stays minimal on the hot path.
"""

from __future__ import annotations

from abc import abstractmethod
from collections.abc import Iterable

try:  # optional fast path; see repro.index.leafdata
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.errors import IndexError_
from repro.geometry.rect import Rect
from repro.index.leafdata import (
    SCORE_MEMO_CAP,
    feature_leaf_arrays,
    pack_mask,
    words_for_bytes,
)
from repro.index.nodes import (
    FeatureInternalEntry,
    FeatureLeafEntry,
    FeatureNodeCodec,
    Node,
)
from repro.index.rtree_base import DEFAULT_FILL, RTreeBase
from repro.model.dataset import FeatureDataset
from repro.model.objects import FeatureObject
from repro.storage.buffer import DEFAULT_BUFFER_PAGES
from repro.storage.pagefile import PageFile
from repro.text.similarity import jaccard


class FeatureScorer:
    """Per-query scoring of feature-tree entries.

    Implements Definition 1, ``s(t) = (1-λ)·t.s + λ·sim(t, W)``, and the
    index bound of Section 4.2, ``ŝ(e) = (1-λ)·e.s + λ·sim_ub(e, W)``,
    where ``sim_ub`` is subclass-specific (exact overlap for SRT, signature
    match count for IR²) and always >= the Jaccard similarity of any
    descendant feature.
    """

    __slots__ = ("query_mask", "lam", "n_terms", "_sim_upper", "_qwords")

    def __init__(self, query_mask: int, lam: float, sim_upper) -> None:
        self.query_mask = query_mask
        self.lam = lam
        self.n_terms = query_mask.bit_count()
        self._sim_upper = sim_upper
        self._qwords = None  # packed query mask, built on first vector use

    def leaf_score(self, entry: FeatureLeafEntry) -> float:
        """Exact preference score ``s(t)`` of a feature (Definition 1)."""
        return (1.0 - self.lam) * entry.score + self.lam * jaccard(
            entry.mask, self.query_mask
        )

    def leaf_relevant(self, entry: FeatureLeafEntry) -> bool:
        """``sim(t, W) > 0`` — the relevance filter of Definition 2."""
        return (entry.mask & self.query_mask) != 0

    def node_bound(self, entry: FeatureInternalEntry) -> float:
        """Upper bound ``ŝ(e)`` for every feature below ``entry``."""
        return (1.0 - self.lam) * entry.max_score + self.lam * self._sim_upper(
            entry.summary
        )

    def node_relevant(self, entry: FeatureInternalEntry) -> bool:
        """May the subtree contain a feature with ``sim > 0``?"""
        return self._sim_upper(entry.summary) > 0.0

    def bound(self, entry) -> float:
        """``ŝ(e)`` for internal entries, exact ``s(t)`` for leaf entries."""
        if isinstance(entry, FeatureLeafEntry):
            return self.leaf_score(entry)
        return self.node_bound(entry)

    def relevant(self, entry) -> bool:
        """Relevance test for either entry kind."""
        if isinstance(entry, FeatureLeafEntry):
            return self.leaf_relevant(entry)
        return self.node_relevant(entry)

    # ------------------------------------------------------------------
    # vectorized fast path (see repro.index.leafdata)
    # ------------------------------------------------------------------
    def leaf_score_arrays(self, arrays):
        """``(scores, relevant)`` arrays for a whole leaf at once.

        Mirrors :meth:`leaf_score` / :meth:`leaf_relevant` operation for
        operation so the results are bit-identical to the scalar loop:
        ``|t.W ∩ W|`` comes from a vectorized popcount of the packed
        masks and ``|t.W ∪ W| = |t.W| + |W| - |t.W ∩ W|`` (exact even
        when the query mask is wider than the packed entry masks, whose
        overflow bits can never intersect).
        """
        key = (self.query_mask, self.lam)
        memo = arrays.memo
        cached = memo.get(key)
        if cached is not None:
            return cached
        words = arrays.mask_words
        qwords = self._qwords
        if qwords is None or qwords.shape[0] != words.shape[1]:
            qwords = pack_mask(self.query_mask, words.shape[1])
            self._qwords = qwords
        inter = np.bitwise_count(words & qwords).sum(axis=1, dtype=np.int64)
        union = arrays.mask_pops + self.n_terms - inter
        relevant = inter > 0
        with np.errstate(divide="ignore", invalid="ignore"):
            jac = np.where(union > 0, inter / union, 0.0)
        scores = (1.0 - self.lam) * arrays.scores + self.lam * jac
        if len(memo) >= SCORE_MEMO_CAP:
            memo.clear()
        memo[key] = (scores, relevant)
        return scores, relevant


class FeatureTree(RTreeBase):
    """Shared construction & aggregate maintenance for feature indexes."""

    def __init__(
        self,
        vocab_size: int,
        pagefile: PageFile | None = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        node_cache_pages: int | None = None,
    ) -> None:
        super().__init__(pagefile, buffer_pages, node_cache_pages)
        if vocab_size < 1:
            raise IndexError_("vocabulary size must be >= 1")
        self.vocab_size = vocab_size
        self._codec = FeatureNodeCodec(
            mask_bytes=(vocab_size + 7) // 8,
            summary_bytes=self.summary_bytes(),
        )
        self._mask_words = words_for_bytes(self._codec.mask_bytes)

    @property
    def codec(self) -> FeatureNodeCodec:
        return self._codec

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def summary_bytes(self) -> int:
        """Serialized width of the per-node textual summary."""

    @abstractmethod
    def leaf_summary(self, mask: int) -> int:
        """Summary contribution of a single feature's keyword mask."""

    @abstractmethod
    def bulk_sort_key(self, entry: FeatureLeafEntry) -> int:
        """Total order used for bulk loading."""

    @abstractmethod
    def make_scorer(self, query_mask: int, lam: float) -> FeatureScorer:
        """Scorer for one query (keyword mask + smoothing parameter)."""

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: FeatureDataset,
        pagefile: PageFile | None = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        method: str = "bulk",
        fill: float = DEFAULT_FILL,
        **kwargs,
    ) -> "FeatureTree":
        """Build an index over a feature dataset.

        ``method`` is ``"bulk"`` (sorted packing — what the paper
        evaluates) or ``"insert"`` (incremental, extension path).
        """
        tree = cls(dataset.vocabulary.size, pagefile, buffer_pages, **kwargs)
        entries = [
            FeatureLeafEntry(f.fid, f.x, f.y, f.score, f.keyword_mask())
            for f in dataset
        ]
        if method == "bulk":
            entries.sort(key=tree.bulk_sort_key)
            tree.bulk_load(entries, fill)
        elif method == "insert":
            for entry in entries:
                tree.insert(entry)
        else:
            raise ValueError(f"unknown build method {method!r}")
        return tree

    def parent_entry(self, child: Node) -> FeatureInternalEntry:
        if not child.entries:
            raise IndexError_(f"node {child.page_id} has no entries")
        if child.is_leaf:
            max_score = max(e.score for e in child.entries)
            summary = 0
            for e in child.entries:
                summary |= self.leaf_summary(e.mask)
        else:
            max_score = max(e.max_score for e in child.entries)
            summary = 0
            for e in child.entries:
                summary |= e.summary
        return FeatureInternalEntry(child.page_id, child.mbr(), max_score, summary)

    def entry_rect(self, entry) -> Rect:
        return entry.rect

    # ------------------------------------------------------------------
    # vectorized fast path
    # ------------------------------------------------------------------
    def leaf_arrays(self, node: Node):
        """Columnar view of a leaf node, or None off the numpy fast path."""
        return feature_leaf_arrays(node, self._mask_words)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def feature_of(self, entry: FeatureLeafEntry) -> FeatureObject:
        """Materialize a :class:`FeatureObject` from a leaf entry."""
        from repro.text.similarity import mask_to_ids

        return FeatureObject(
            entry.fid, entry.x, entry.y, entry.score, mask_to_ids(entry.mask)
        )

    def iter_features(self) -> Iterable[FeatureLeafEntry]:
        """Full scan of all feature leaf entries."""
        yield from self.iter_leaf_entries()
