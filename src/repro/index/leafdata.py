"""Columnar (numpy) views of leaf nodes for vectorized scoring.

Scoring a leaf one entry at a time in pure Python dominates STDS/STPS
CPU time: each entry costs an attribute walk, a Jaccard popcount and a
float blend.  This module packs a leaf's entries into flat arrays —
``x``/``y``/``score`` as float64 plus the keyword masks as little-endian
``uint64`` words — so a whole leaf is scored with a handful of array
operations (``np.bitwise_count`` for the popcounts).

The arrays are built lazily on first use and cached on the
:class:`~repro.index.nodes.Node` object itself, so the decoded-node cache
(:mod:`repro.storage.node_cache`) amortizes the packing across queries;
``RTreeBase.write_node`` drops the cached view whenever a node mutates.

The fast path is strictly optional: when numpy is unavailable (or lacks
``bitwise_count``, added in numpy 2.0) every helper returns ``None`` and
callers fall back to the per-entry scalar loop.  The two paths produce
bit-identical scores — the vector expressions mirror the scalar formulas
operation for operation.  :func:`set_vectorized` lets tests and
benchmarks force the scalar path at runtime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised via set_vectorized in tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.index.nodes import Node

NUMPY_AVAILABLE = np is not None
#: ``np.bitwise_count`` (vectorized popcount) arrived in numpy 2.0; the
#: feature-mask fast path needs it, the object-location one does not.
MASK_COUNT_AVAILABLE = NUMPY_AVAILABLE and hasattr(np, "bitwise_count")

_enabled = NUMPY_AVAILABLE

_WORD_BITS = 64
_WORD_BYTES = 8


def vectorized_enabled() -> bool:
    """True when the numpy fast path is active."""
    return _enabled and NUMPY_AVAILABLE


def set_vectorized(enabled: bool) -> bool:
    """Enable/disable the numpy fast path; returns the previous setting.

    Enabling is a no-op when numpy is not importable — the library then
    keeps using the scalar fallback.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(enabled) and NUMPY_AVAILABLE
    return previous


def words_for_bytes(mask_bytes: int) -> int:
    """Number of 64-bit words needed to hold ``mask_bytes`` bytes."""
    return max(1, (mask_bytes + _WORD_BYTES - 1) // _WORD_BYTES)


def pack_mask(mask: int, n_words: int):
    """One keyword bit mask as a ``(n_words,)`` uint64 array.

    Bits beyond ``n_words * 64`` are truncated — callers that need exact
    union sizes keep the full popcount separately (see
    ``FeatureScorer.leaf_score_arrays``).
    """
    width = n_words * _WORD_BYTES
    clipped = mask & ((1 << (n_words * _WORD_BITS)) - 1)
    return np.frombuffer(clipped.to_bytes(width, "little"), dtype="<u8").copy()


#: Max distinct ``(query_mask, lam)`` score vectors memoized per leaf.
#: A leaf's vectors cost ~1 KB each, so even at the cap a 1000-leaf tree
#: holds ~64 MB of memoized scores; the memo is wiped wholesale when the
#: cap is hit (repeated-query workloads rarely exceed it).
SCORE_MEMO_CAP = 64


class FeatureLeafArrays:
    """Columnar view of a feature leaf: locations, scores, packed masks.

    ``memo`` caches per-query score vectors keyed by ``(mask, lam)`` —
    repeated-query workloads then score each leaf once per distinct
    query instead of once per execution.  The memo lives and dies with
    the arrays object, which ``Node.invalidate_arrays`` drops whenever
    the node mutates, so it can never go stale.
    """

    __slots__ = ("xs", "ys", "scores", "mask_words", "mask_pops", "memo")

    def __init__(self, entries, n_words: int) -> None:
        self.memo: dict = {}
        n = len(entries)
        self.xs = np.fromiter((e.x for e in entries), dtype=np.float64, count=n)
        self.ys = np.fromiter((e.y for e in entries), dtype=np.float64, count=n)
        self.scores = np.fromiter(
            (e.score for e in entries), dtype=np.float64, count=n
        )
        width = n_words * _WORD_BYTES
        buf = b"".join(e.mask.to_bytes(width, "little") for e in entries)
        self.mask_words = np.frombuffer(buf, dtype="<u8").reshape(n, n_words)
        # Exact per-entry popcounts |t.W|, used to derive union sizes.
        self.mask_pops = np.bitwise_count(self.mask_words).sum(
            axis=1, dtype=np.int64
        )

    def __len__(self) -> int:
        return len(self.xs)


class ObjectLeafArrays:
    """Columnar view of an object leaf: ids and locations."""

    __slots__ = ("oids", "xs", "ys")

    def __init__(self, entries) -> None:
        n = len(entries)
        self.oids = np.fromiter((e.oid for e in entries), dtype=np.int64, count=n)
        self.xs = np.fromiter((e.x for e in entries), dtype=np.float64, count=n)
        self.ys = np.fromiter((e.y for e in entries), dtype=np.float64, count=n)

    def __len__(self) -> int:
        return len(self.oids)


def feature_leaf_arrays(node: "Node", n_words: int) -> FeatureLeafArrays | None:
    """Cached columnar view of a feature leaf, or None off the fast path."""
    if not (_enabled and MASK_COUNT_AVAILABLE):
        return None
    if not node.is_leaf or not node.entries:
        return None
    cached = node._leaf_arrays
    if isinstance(cached, FeatureLeafArrays):
        return cached
    arrays = FeatureLeafArrays(node.entries, n_words)
    node._leaf_arrays = arrays
    return arrays


def object_leaf_arrays(node: "Node") -> ObjectLeafArrays | None:
    """Cached columnar view of an object leaf, or None off the fast path."""
    if not (_enabled and NUMPY_AVAILABLE):
        return None
    if not node.is_leaf or not node.entries:
        return None
    cached = node._leaf_arrays
    if isinstance(cached, ObjectLeafArrays):
        return cached
    arrays = ObjectLeafArrays(node.entries)
    node._leaf_arrays = arrays
    return arrays
