"""The data-object R-tree (``rtree`` in the paper, Section 4.1).

Indexes the data objects ``O`` by location only.  Besides the classic
range search it provides the three retrieval primitives the STPS variants
need (Sections 6.4, 7.1, 7.2):

* :meth:`within_all` — objects within distance ``r`` of *every* anchor
  point of a feature combination (range-score ``getDataObjects``);
* :meth:`best_first` — generic decreasing-upper-bound top-k search, used
  with the influence score;
* :meth:`in_polygon` — objects inside a convex region, used with the
  Voronoi-cell intersection of the nearest-neighbor variant.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable, Iterator, Sequence

from repro.geometry.polygon import ConvexPolygon
from repro.geometry.rect import Rect
from repro.hilbert.curve import hilbert_key_2d
from repro.index.leafdata import object_leaf_arrays
from repro.index.nodes import Node, ObjectLeafEntry, ObjectNodeCodec
from repro.index.rtree_base import DEFAULT_FILL, RTreeBase
from repro.model.objects import DataObject
from repro.storage.buffer import DEFAULT_BUFFER_PAGES
from repro.storage.pagefile import PageFile


class ObjectRTree(RTreeBase):
    """R-tree over data objects (points in the unit square)."""

    def __init__(
        self,
        pagefile: PageFile | None = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        node_cache_pages: int | None = None,
    ) -> None:
        super().__init__(pagefile, buffer_pages, node_cache_pages)
        self._codec = ObjectNodeCodec()

    @property
    def codec(self) -> ObjectNodeCodec:
        return self._codec

    def metadata(self) -> dict:
        return {"kind": "object", "page_size": self.pagefile.page_size}

    def parent_entry(self, child: Node):
        from repro.index.nodes import ObjectInternalEntry

        return ObjectInternalEntry(child.page_id, child.mbr())

    def entry_rect(self, entry) -> Rect:
        return entry.rect

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        objects: Iterable[DataObject],
        pagefile: PageFile | None = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        method: str = "hilbert",
        fill: float = DEFAULT_FILL,
        node_cache_pages: int | None = None,
    ) -> "ObjectRTree":
        """Build a tree from data objects.

        ``method`` is ``"hilbert"`` (bulk load in Hilbert order, default),
        ``"str"`` (sort-tile-recursive) or ``"insert"`` (one-by-one).
        """
        tree = cls(pagefile, buffer_pages, node_cache_pages)
        entries = [ObjectLeafEntry(o.oid, o.x, o.y) for o in objects]
        if method == "hilbert":
            entries.sort(key=lambda e: hilbert_key_2d(e.x, e.y))
            tree.bulk_load(entries, fill)
        elif method == "str":
            tree.bulk_load(_str_order(entries, tree.leaf_fanout, fill), fill)
        elif method == "insert":
            for entry in entries:
                tree.insert(entry)
        else:
            raise ValueError(f"unknown build method {method!r}")
        return tree

    # ------------------------------------------------------------------
    # searches
    # ------------------------------------------------------------------
    def range_search(
        self, center: Sequence[float], radius: float
    ) -> Iterator[ObjectLeafEntry]:
        """All objects within Euclidean ``radius`` of ``center``."""
        yield from self.within_all([tuple(center)], radius)

    def within_all(
        self, anchors: Sequence[tuple[float, float]], radius: float
    ) -> Iterator[ObjectLeafEntry]:
        """Objects within ``radius`` of every anchor point.

        With an empty anchor list every object qualifies (the all-virtual
        combination of Section 6.1).
        """
        if self.root_id is None:
            return
        r2 = radius * radius
        stack = [self.root_id]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                arrays = object_leaf_arrays(node)
                if arrays is not None:
                    # Vectorized: one distance test per anchor for the
                    # whole leaf (see repro.index.leafdata).
                    keep = None
                    for ax, ay in anchors:
                        dx = arrays.xs - ax
                        dy = arrays.ys - ay
                        near = dx * dx + dy * dy <= r2
                        keep = near if keep is None else keep & near
                    entries = node.entries
                    if keep is None:
                        yield from entries
                    else:
                        for i in keep.nonzero()[0]:
                            yield entries[i]
                    continue
                for e in node.entries:
                    if all(
                        _point_dist2(e.x, e.y, a) <= r2 for a in anchors
                    ):
                        yield e
            else:
                for e in node.entries:
                    if all(e.rect.mindist(a) <= radius for a in anchors):
                        stack.append(e.child)

    def in_polygon(self, polygon: ConvexPolygon) -> Iterator[ObjectLeafEntry]:
        """Objects inside a convex polygon (bbox pruning + exact test)."""
        if self.root_id is None or polygon.is_empty:
            return
        bbox = polygon.bounding_rect()
        stack = [self.root_id]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                for e in node.entries:
                    if bbox.contains_point((e.x, e.y)) and polygon.contains(
                        (e.x, e.y)
                    ):
                        yield e
            else:
                for e in node.entries:
                    if e.rect.intersects(bbox):
                        stack.append(e.child)

    def best_first(
        self,
        node_bound: Callable[[Rect], float],
        point_score: Callable[[float, float], float],
        limit: int,
        floor: float = float("-inf"),
        skip: Callable[[int], bool] | None = None,
        ties: bool = False,
    ) -> list[tuple[float, ObjectLeafEntry]]:
        """Top-``limit`` objects by a decreasing-bound score function.

        ``node_bound(rect)`` must upper-bound ``point_score(x, y)`` for
        every point in ``rect``.  Stops early once the best remaining bound
        falls to ``floor`` or below.  ``skip`` filters object ids (used to
        ignore already-collected objects).  With ``ties`` the search keeps
        draining entries that *tie* the ``limit``-th best score (so the
        caller can apply a deterministic tie-break over the full tie set);
        without it, tied objects past ``limit`` are cut in heap order.
        """
        if self.root_id is None or limit <= 0:
            return []
        results: list[tuple[float, ObjectLeafEntry]] = []
        counter = 0
        root = self.root_node()
        heap: list[tuple[float, int, object]] = []

        def push_node(node: Node) -> None:
            nonlocal counter
            for e in node.entries:
                if node.is_leaf:
                    if skip is not None and skip(e.oid):
                        continue
                    score = point_score(e.x, e.y)
                else:
                    score = node_bound(e.rect)
                if score > floor:
                    counter += 1
                    heapq.heappush(heap, (-score, counter, e))

        push_node(root)
        while heap:
            if len(results) >= limit and (
                not ties or -heap[0][0] < results[limit - 1][0]
            ):
                break
            neg_score, _, entry = heapq.heappop(heap)
            if -neg_score <= floor:
                break
            if isinstance(entry, ObjectLeafEntry):
                results.append((-neg_score, entry))
            else:
                push_node(self.read_node(entry.child))
        return results

    def all_entries(self) -> Iterator[ObjectLeafEntry]:
        """Sequential scan of every data object (used by STDS)."""
        yield from self.iter_leaf_entries()


def _point_dist2(x: float, y: float, anchor: tuple[float, float]) -> float:
    """Squared distance — the same predicate the vectorized path uses."""
    dx = x - anchor[0]
    dy = y - anchor[1]
    return dx * dx + dy * dy


def _str_order(
    entries: list[ObjectLeafEntry], leaf_fanout: int, fill: float
) -> list[ObjectLeafEntry]:
    """Sort-Tile-Recursive ordering for 2-d points."""
    import math

    if not entries:
        return entries
    per_leaf = max(2, int(leaf_fanout * fill))
    leaf_count = math.ceil(len(entries) / per_leaf)
    slice_count = max(1, math.ceil(math.sqrt(leaf_count)))
    per_slice = per_leaf * math.ceil(leaf_count / slice_count)
    by_x = sorted(entries, key=lambda e: (e.x, e.y))
    ordered: list[ObjectLeafEntry] = []
    for i in range(0, len(by_x), per_slice):
        chunk = sorted(by_x[i : i + per_slice], key=lambda e: (e.y, e.x))
        ordered.extend(chunk)
    return ordered
