"""Modified IR²-tree baseline (Felipe et al. [8], adapted per Section 8).

The original IR²-tree is an R-tree combined with signature files: every
node carries a superimposed-coding signature of the keywords below it.
The paper modifies it for preference queries: "we add to the leaf nodes of
IR²-Tree the scoring values for the feature objects, and maintain in
ancestor (internal) nodes the maximum score of all enclosed feature
objects".

Construction clusters by *spatial* proximity only (that is the point of
the comparison — the SRT-index also clusters by score and text, the
IR²-tree does not), so its node bounds are looser and STPS/STDS expand
more entries on it.
"""

from __future__ import annotations

from repro.hilbert.curve import hilbert_key_2d
from repro.index.feature_tree import FeatureScorer, FeatureTree
from repro.index.nodes import FeatureLeafEntry
from repro.storage.buffer import DEFAULT_BUFFER_PAGES
from repro.storage.pagefile import PageFile
from repro.text.signature import SignatureScheme
from repro.text.similarity import mask_to_ids

IR2_KEY_BITS = 16


class IR2Tree(FeatureTree):
    """Spatially-built R-tree with per-node signatures and max scores."""

    def __init__(
        self,
        vocab_size: int,
        pagefile: PageFile | None = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        scheme: SignatureScheme | None = None,
        node_cache_pages: int | None = None,
    ) -> None:
        self.scheme = scheme or SignatureScheme.for_vocabulary(vocab_size)
        super().__init__(vocab_size, pagefile, buffer_pages, node_cache_pages)

    def summary_bytes(self) -> int:
        return self.scheme.byte_length

    def leaf_summary(self, mask: int) -> int:
        return self.scheme.from_mask(mask)

    def bulk_sort_key(self, entry: FeatureLeafEntry) -> int:
        """Spatial Hilbert key only — the IR²-tree ignores score & text."""
        return hilbert_key_2d(entry.x, entry.y, IR2_KEY_BITS)

    def make_scorer(self, query_mask: int, lam: float) -> FeatureScorer:
        query_ids = tuple(mask_to_ids(query_mask))
        n_terms = max(1, len(query_ids))
        scheme = self.scheme

        def sim_upper(summary: int) -> float:
            # A query term MAY occur below the node iff all its signature
            # bits are set (false positives possible, never negatives),
            # so the match count / |W| upper-bounds descendant Jaccard.
            return scheme.matching_terms(summary, query_ids) / n_terms

        return FeatureScorer(query_mask, lam, sim_upper)

    def metadata(self) -> dict:
        return {
            "kind": "ir2",
            "vocab_size": self.vocab_size,
            "page_size": self.pagefile.page_size,
            "signature_bits": self.scheme.signature_bits,
            "bits_per_term": self.scheme.bits_per_term,
        }
