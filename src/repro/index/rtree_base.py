"""Shared R-tree machinery: paging, bulk loading, insertion, splitting.

All three indexes in the repo (object R-tree, SRT-index, IR²-tree) are
R-trees over the paged storage layer; they differ only in entry contents,
per-node aggregates and build order.  This base class implements the parts
they share:

* node read/write through a :class:`~repro.storage.buffer.BufferPool`
  (every node occupies exactly one page, so node accesses are the I/Os the
  benchmarks count);
* bottom-up bulk loading from a sorted run of leaf entries — the
  "bulk insertion [9]" (Kamel & Faloutsos) build the paper uses;
* classic Guttman insertion with quadratic split, for the incremental
  build path (extension / ablation);
* a metadata page (page 0) so trees persisted in a
  :class:`~repro.storage.pagefile.DiskPageFile` can be reopened.

Subclasses provide the codec, how to derive an internal (parent) entry
from a child node — which is where the SRT/IR² aggregates are maintained —
and the bulk-load sort key.
"""

from __future__ import annotations

import json
import time
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

from repro.errors import IndexError_
from repro.obs import tracing as _tracing
from repro.geometry.rect import Rect
from repro.storage.buffer import DEFAULT_BUFFER_PAGES, BufferPool
from repro.storage.node_cache import NodeCache
from repro.storage.page import Page
from repro.storage.pagefile import MemoryPageFile, PageFile
from repro.storage.stats import IOStats
from repro.index.nodes import LEAF_LEVEL, Node

DEFAULT_FILL = 0.9
MIN_FILL_RATIO = 0.4
META_PAGE_ID = 0


class RTreeBase(ABC):
    """Common R-tree core; see module docstring."""

    def __init__(
        self,
        pagefile: PageFile | None = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        node_cache_pages: int | None = None,
    ) -> None:
        self.pagefile = pagefile if pagefile is not None else MemoryPageFile()
        self.buffer = BufferPool(self.pagefile, buffer_pages)
        self.root_id: int | None = None
        self.height = 0
        self.count = 0
        self._meta_page_id: int | None = None
        # Decoded-node LRU above the page buffer: decoding a node is far
        # more expensive than the page lookup, so hot nodes are kept in
        # object form (see repro.storage.node_cache).  Hits additionally
        # count as buffer hits (one logical read).  ``node_cache_pages``
        # defaults to the buffer capacity; 0 disables the layer.
        if node_cache_pages is None:
            node_cache_pages = buffer_pages
        self._node_cache = NodeCache(node_cache_pages, self.pagefile.stats)

    @property
    def node_cache(self) -> NodeCache:
        """The decoded-node cache (hit/miss counters live here too)."""
        return self._node_cache

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @property
    @abstractmethod
    def codec(self):
        """Node codec (object or feature flavour)."""

    @abstractmethod
    def parent_entry(self, child: Node):
        """Internal entry summarizing ``child`` (MBR + aggregates)."""

    @abstractmethod
    def entry_rect(self, entry) -> Rect:
        """Spatial MBR of any entry (degenerate rect for leaf entries)."""

    @abstractmethod
    def metadata(self) -> dict:
        """Tree-specific metadata persisted on the meta page."""

    # ------------------------------------------------------------------
    # page plumbing
    # ------------------------------------------------------------------
    @property
    def stats(self) -> IOStats:
        """I/O statistics of the underlying page file."""
        return self.pagefile.stats

    def read_node(self, page_id: int) -> Node:
        """Fetch and decode a node (one logical I/O).

        Callers that mutate the returned node's entries must follow up
        with :meth:`write_node` (all internal callers do); the cached
        object is shared.
        """
        cached = self._node_cache.get(page_id)
        if cached is not None:
            # A node-cache hit serves one logical read from memory, so it
            # also counts as a buffer hit for the I/O accounting.
            self.pagefile.stats.record_hit()
            return cached
        if _tracing.enabled:
            # Node-cache misses are the real node expansions: the page is
            # fetched and decoded.  Trace them as spans so the timeline
            # shows where traversals leave the decoded-node cache.
            t0 = time.perf_counter()
            page = self.buffer.read(page_id)
            node = self.codec.decode(page_id, page.payload)
            _tracing.add_complete(
                "rtree.node_expand",
                t0,
                time.perf_counter(),
                cat="index",
                args={
                    "page_id": page_id,
                    "tree": type(self).__name__,
                    "level": node.level,
                },
            )
        else:
            page = self.buffer.read(page_id)
            node = self.codec.decode(page_id, page.payload)
        self._node_cache.put(node)
        return node

    def write_node(self, node: Node) -> None:
        """Encode and persist a node.

        The decoded-node cache is explicitly invalidated for the page and
        then refreshed with the node object just written, so a stale
        decode can never be served after a mutation; the node's packed
        leaf arrays are dropped because its entries may have changed.
        """
        node.invalidate_arrays()
        self.buffer.write(Page(node.page_id, self.codec.encode(node)))
        self._node_cache.invalidate(node.page_id)
        self._node_cache.put(node)

    def clear_cache(self) -> dict[str, int]:
        """Drop all cached pages and decoded nodes (cold-cache runs).

        Returns ``{"nodes": ..., "pages": ...}`` — how many decoded
        nodes and buffered pages were dropped.
        """
        nodes = self._node_cache.clear()
        pages = self.buffer.clear()
        return {"nodes": nodes, "pages": pages}

    def _new_node(self, level: int, entries: list) -> Node:
        node = Node(self.buffer.allocate(), level, entries)
        self.write_node(node)
        return node

    def root_node(self) -> Node:
        """The root node; raises on an empty tree."""
        if self.root_id is None:
            raise IndexError_("tree is empty")
        return self.read_node(self.root_id)

    @property
    def payload_capacity(self) -> int:
        return Page.capacity(self.pagefile.page_size)

    @property
    def leaf_fanout(self) -> int:
        return self.codec.leaf_fanout(self.payload_capacity)

    @property
    def internal_fanout(self) -> int:
        return self.codec.internal_fanout(self.payload_capacity)

    # ------------------------------------------------------------------
    # metadata page
    # ------------------------------------------------------------------
    def _write_meta(self) -> None:
        if self._meta_page_id is None:
            self._meta_page_id = self.buffer.allocate()
            if self._meta_page_id != META_PAGE_ID:
                # Not fatal (memory files), but disk reopen expects page 0.
                pass
        meta = dict(self.metadata())
        meta.update(root=self.root_id, height=self.height, count=self.count)
        payload = json.dumps(meta).encode()
        self.buffer.write(Page(self._meta_page_id, payload))

    @staticmethod
    def read_meta(pagefile: PageFile) -> dict:
        """Read the metadata page of a persisted tree."""
        return json.loads(pagefile.read(META_PAGE_ID).payload.decode())

    # ------------------------------------------------------------------
    # bulk loading
    # ------------------------------------------------------------------
    def bulk_load(self, leaf_entries: Sequence, fill: float = DEFAULT_FILL) -> None:
        """Pack pre-sorted leaf entries bottom-up into a full tree.

        ``fill`` is the target node occupancy (the classic packed R-tree
        uses 1.0; slightly lower leaves headroom for later inserts).
        """
        if self.root_id is not None:
            raise IndexError_("tree already built")
        if not 0.1 < fill <= 1.0:
            raise IndexError_(f"fill factor {fill} outside (0.1, 1.0]")
        self._write_meta()
        entries = list(leaf_entries)
        self.count = len(entries)
        if not entries:
            root = self._new_node(LEAF_LEVEL, [])
            self.root_id = root.page_id
            self.height = 1
            self._write_meta()
            return

        per_leaf = max(2, int(self.leaf_fanout * fill))
        nodes = [
            self._new_node(LEAF_LEVEL, entries[i : i + per_leaf])
            for i in range(0, len(entries), per_leaf)
        ]
        level = LEAF_LEVEL
        per_internal = max(2, int(self.internal_fanout * fill))
        while len(nodes) > 1:
            level += 1
            parents = []
            for i in range(0, len(nodes), per_internal):
                group = nodes[i : i + per_internal]
                parent_entries = [self.parent_entry(child) for child in group]
                parents.append(self._new_node(level, parent_entries))
            nodes = parents
        self.root_id = nodes[0].page_id
        self.height = level + 1
        self._write_meta()

    # ------------------------------------------------------------------
    # insertion (Guttman, quadratic split)
    # ------------------------------------------------------------------
    def insert(self, leaf_entry) -> None:
        """Insert one leaf entry, splitting nodes as needed."""
        if self.root_id is None:
            self._write_meta()
            root = self._new_node(LEAF_LEVEL, [leaf_entry])
            self.root_id = root.page_id
            self.height = 1
            self.count = 1
            self._write_meta()
            return

        path = self._choose_path(leaf_entry)
        leaf = path[-1]
        leaf.entries.append(leaf_entry)
        self.count += 1

        split: Node | None = None
        if len(leaf.entries) > self.leaf_fanout:
            split = self._split(leaf)
        else:
            self.write_node(leaf)

        # Propagate entry updates (and splits) toward the root.
        for depth in range(len(path) - 2, -1, -1):
            parent = path[depth]
            child = path[depth + 1]
            self._replace_child_entry(parent, child)
            if split is not None:
                parent.entries.append(self.parent_entry(split))
                split = None
            if len(parent.entries) > self.internal_fanout:
                split = self._split(parent)
            else:
                self.write_node(parent)

        if split is not None:
            old_root = path[0]
            new_root = self._new_node(
                old_root.level + 1,
                [self.parent_entry(old_root), self.parent_entry(split)],
            )
            self.root_id = new_root.page_id
            self.height += 1
        self._write_meta()

    def _choose_path(self, leaf_entry) -> list[Node]:
        """Root-to-leaf path choosing minimum-enlargement subtrees."""
        target = self.entry_rect(leaf_entry)
        path = [self.root_node()]
        while not path[-1].is_leaf:
            node = path[-1]
            best = min(
                node.entries,
                key=lambda e: (
                    self._choose_cost(e, target),
                    e.rect.area(),
                ),
            )
            path.append(self.read_node(best.child))
        return path

    def _choose_cost(self, internal_entry, target: Rect) -> float:
        """Subtree-choice cost; subclasses may fold in textual distance."""
        return internal_entry.rect.enlargement(target)

    def _replace_child_entry(self, parent: Node, child: Node) -> None:
        for i, entry in enumerate(parent.entries):
            if entry.child == child.page_id:
                parent.entries[i] = self.parent_entry(child)
                return
        raise IndexError_(
            f"node {parent.page_id} has no entry for child {child.page_id}"
        )

    def _split(self, node: Node) -> Node:
        """Quadratic split in place; returns the newly created sibling."""
        entries = node.entries
        rects = [self.entry_rect(e) for e in entries]
        seed_a, seed_b = _pick_seeds(rects)
        group_a, group_b = [seed_a], [seed_b]
        rect_a, rect_b = rects[seed_a], rects[seed_b]
        fanout = self.leaf_fanout if node.is_leaf else self.internal_fanout
        min_fill = max(1, int(fanout * MIN_FILL_RATIO))
        remaining = [i for i in range(len(entries)) if i not in (seed_a, seed_b)]

        while remaining:
            if len(group_a) + len(remaining) == min_fill:
                group_a.extend(remaining)
                break
            if len(group_b) + len(remaining) == min_fill:
                group_b.extend(remaining)
                break
            pick, prefer_a = _pick_next(remaining, rects, rect_a, rect_b)
            remaining.remove(pick)
            if prefer_a:
                group_a.append(pick)
                rect_a = rect_a.union(rects[pick])
            else:
                group_b.append(pick)
                rect_b = rect_b.union(rects[pick])

        sibling_entries = [entries[i] for i in group_b]
        node.entries = [entries[i] for i in group_a]
        self.write_node(node)
        sibling = self._new_node(node.level, sibling_entries)
        return sibling

    # ------------------------------------------------------------------
    # deletion (Guttman CondenseTree)
    # ------------------------------------------------------------------
    def delete(self, leaf_entry) -> bool:
        """Remove one leaf entry; returns False when not found.

        Under-full nodes along the path are dissolved and their leaf
        entries reinserted (CondenseTree); the root collapses when left
        with a single child.
        """
        if self.root_id is None:
            return False
        path = self._find_leaf_path(leaf_entry)
        if path is None:
            return False
        leaf = path[-1]
        leaf.entries.remove(leaf_entry)
        self.count -= 1

        orphans: list = []
        # Walk upward, dissolving under-full nodes.
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            fanout = self.leaf_fanout if node.is_leaf else self.internal_fanout
            min_fill = max(1, int(fanout * MIN_FILL_RATIO))
            if len(node.entries) < min_fill:
                parent.entries = [
                    e for e in parent.entries if e.child != node.page_id
                ]
                orphans.extend(self._collect_leaf_entries(node))
                # The subtree is unlinked without a final write (the
                # dissolved node may already differ in memory from its
                # page, e.g. the leaf that lost the deleted entry), so
                # its decoded nodes must leave the cache: a later
                # allocate() may hand the page ids out again, and the
                # cache would serve the dissolved image for them.
                self._invalidate_subtree(node)
            else:
                self.write_node(node)
                self._replace_child_entry(parent, node)

        root = path[0]
        self.write_node(root)
        # Collapse a root with a single internal child.
        while not root.is_leaf and len(root.entries) == 1:
            root = self.read_node(root.entries[0].child)
            self.root_id = root.page_id
            self.height -= 1
        if not root.is_leaf and not root.entries:
            # Everything dissolved into orphans: restart from empty.
            empty = self._new_node(LEAF_LEVEL, [])
            self.root_id = empty.page_id
            self.height = 1

        if orphans:
            # insert() re-counts the orphans and rewrites the meta page
            # after each one, so the final meta carries the settled
            # root/height/count — no separate write here (a second
            # _write_meta before the reinserts would persist a count that
            # still includes the orphans).
            self.count -= len(orphans)
            for entry in orphans:
                self.insert(entry)
        else:
            self._write_meta()
        return True

    def _find_leaf_path(self, leaf_entry) -> list[Node] | None:
        """Root-to-leaf path to a node containing ``leaf_entry``."""
        target = self.entry_rect(leaf_entry)

        def descend(node: Node, path: list[Node]) -> list[Node] | None:
            path.append(node)
            if node.is_leaf:
                if leaf_entry in node.entries:
                    return path
            else:
                for entry in node.entries:
                    if entry.rect.contains_rect(target):
                        found = descend(self.read_node(entry.child), path)
                        if found is not None:
                            return found
            path.pop()
            return None

        return descend(self.root_node(), [])

    def _collect_leaf_entries(self, node: Node) -> list:
        """All leaf entries in a subtree (for orphan reinsertion)."""
        if node.is_leaf:
            return list(node.entries)
        collected: list = []
        for entry in node.entries:
            collected.extend(
                self._collect_leaf_entries(self.read_node(entry.child))
            )
        return collected

    def _invalidate_subtree(self, node: Node) -> None:
        """Evict a dissolved subtree's decoded nodes from the cache."""
        if not node.is_leaf:
            for entry in node.entries:
                self._invalidate_subtree(self.read_node(entry.child))
        self._node_cache.invalidate(node.page_id)

    # ------------------------------------------------------------------
    # introspection / validation
    # ------------------------------------------------------------------
    def iter_leaves(self) -> Iterable[Node]:
        """All leaf nodes, in the same order ``iter_leaf_entries`` uses."""
        if self.root_id is None:
            return
        stack = [self.root_id]
        while stack:
            node = self.read_node(stack.pop())
            if node.is_leaf:
                yield node
            else:
                stack.extend(e.child for e in node.entries)

    def iter_leaf_entries(self) -> Iterable:
        """Full scan of all leaf entries (sequential reads)."""
        for node in self.iter_leaves():
            yield from node.entries

    def validate(self) -> None:
        """Check structural invariants; raises :class:`IndexError_`.

        Verified: parent MBRs contain child MBRs, aggregates match a
        recomputation from the child, levels decrease by one, leaf count
        equals ``self.count``.
        """
        if self.root_id is None:
            return
        seen = 0
        stack = [(self.root_id, self.height - 1)]
        while stack:
            page_id, level = stack.pop()
            node = self.read_node(page_id)
            if node.level != level:
                raise IndexError_(
                    f"node {page_id}: level {node.level}, expected {level}"
                )
            if node.is_leaf:
                seen += len(node.entries)
                continue
            for entry in node.entries:
                child = self.read_node(entry.child)
                expected = self.parent_entry(child)
                if expected != entry:
                    raise IndexError_(
                        f"node {page_id}: stale entry for child {entry.child}"
                    )
                stack.append((entry.child, level - 1))
        if seen != self.count:
            raise IndexError_(f"leaf scan found {seen} entries, count={self.count}")


def _pick_seeds(rects: list[Rect]) -> tuple[int, int]:
    """Guttman PickSeeds: the pair wasting the most area together."""
    worst = -1.0
    pair = (0, 1)
    for i in range(len(rects)):
        for j in range(i + 1, len(rects)):
            waste = (
                rects[i].union(rects[j]).area()
                - rects[i].area()
                - rects[j].area()
            )
            if waste > worst:
                worst = waste
                pair = (i, j)
    return pair


def _pick_next(
    remaining: list[int], rects: list[Rect], rect_a: Rect, rect_b: Rect
) -> tuple[int, bool]:
    """Guttman PickNext: strongest preference first; returns (index, to_a)."""
    best_pick = remaining[0]
    best_diff = -1.0
    best_prefer_a = True
    for i in remaining:
        cost_a = rect_a.enlargement(rects[i])
        cost_b = rect_b.enlargement(rects[i])
        diff = abs(cost_a - cost_b)
        if diff > best_diff:
            best_diff = diff
            best_pick = i
            best_prefer_a = cost_a < cost_b
    return best_pick, best_prefer_a
