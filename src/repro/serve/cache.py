"""Epoch-invalidated LRU result cache keyed on canonical query signature.

Serving millions of users means heavy query-*key* skew: the same few
(query, algorithm, pulling) combinations arrive over and over from many
different tenants.  The cache key is deliberately **tenant-agnostic** —
a :class:`~repro.core.query.PreferenceQuery` is a frozen value type, so
two tenants asking the same question share one cached answer (query
evaluation is deterministic and results are immutable; quotas are
enforced *before* the cache so a hot key never launders an exhausted
tenant's traffic past its bucket).

Coherence under live mutation is epoch-based: every entry is stamped
with the cache epoch current at fill time, and :meth:`ResultCache.get`
rejects entries from an older epoch (lazy eviction — no scan).  The
epoch advances via :meth:`ResultCache.bump` — wired to
:meth:`repro.live.LiveBase.add_mutation_listener` by
:meth:`ResultCache.attach_live`, so any insert/delete/move/rescore on
the live dataset instantly invalidates every cached answer.  One global
epoch per cache is deliberately coarse: a mutation *could* be scoped to
the queries whose radius touches it, but the zipf head refills in a few
requests and coarse invalidation is provably coherent.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.core.query import PreferenceQuery
from repro.core.results import QueryResult
from repro.errors import ReproError
from repro.obs import metrics as _metrics

#: Metric families owned by the serving cache (reset scope).
CACHE_METRIC_FAMILIES = ("repro_serve_cache_total",)


def cache_outcomes_metric() -> "_metrics.MetricFamily":
    """Cache lookups by outcome: hit / miss / stale; fills and evictions.

    Lazily resolved against the current default registry (the pattern
    established by :func:`repro.live.dataset.live_mutations_metric`) so
    test-scoped registries see serving-cache traffic.
    """
    return _metrics.registry().counter(
        "repro_serve_cache_total",
        "Serving result-cache events.",
        ("event",),
    )


def query_signature(
    query: PreferenceQuery, algorithm: str, pulling: str
) -> tuple:
    """The canonical, tenant-agnostic identity of one serving request.

    Everything that can change the *answer* is in the key; everything
    that cannot (tenant, batch_size, parallelism — tuning knobs proven
    result-neutral) is excluded, maximising cross-tenant sharing.
    """
    return (
        algorithm,
        pulling,
        query.k,
        query.radius,
        query.lam,
        query.variant.value,
        query.keyword_masks,
    )


class ResultCache:
    """Bounded LRU of immutable :class:`QueryResult`\\ s with epochs."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ReproError(
                f"cache max_entries must be >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple[int, QueryResult]] = (
            OrderedDict()
        )
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0
        self._detach = None

    # ------------------------------------------------------------------
    # epoch / invalidation
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        return self._epoch

    def bump(self) -> int:
        """Advance the epoch: every current entry becomes stale at once."""
        with self._lock:
            self._epoch += 1
            return self._epoch

    def attach_live(self, live) -> None:
        """Invalidate on every mutation of a ``repro.live`` dataset.

        Registers a mutation listener on ``live`` (any
        :class:`~repro.live.LiveBase` subclass) that bumps the epoch;
        the listener runs after the index write committed, so a get()
        racing a mutation can serve the *pre*-mutation answer but never
        a torn one, and the first get() after the listener fired misses.
        """
        listener = self._on_mutation
        live.add_mutation_listener(listener)
        previous = self._detach
        self._detach = lambda: (
            live.remove_mutation_listener(listener),
            previous() if previous else None,
        )

    def detach(self) -> None:
        """Unregister every listener installed by :meth:`attach_live`."""
        if self._detach is not None:
            detach, self._detach = self._detach, None
            detach()

    def _on_mutation(self, target: str, op: str) -> None:
        self.bump()

    # ------------------------------------------------------------------
    # lookup / fill
    # ------------------------------------------------------------------
    def get(self, key: tuple) -> QueryResult | None:
        """The cached result for ``key``, or None (miss or stale)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                cache_outcomes_metric().labels(event="miss").inc()
                return None
            epoch, result = entry
            if epoch != self._epoch:
                del self._entries[key]
                self.stale += 1
                cache_outcomes_metric().labels(event="stale").inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            cache_outcomes_metric().labels(event="hit").inc()
            return result

    def put(self, key: tuple, result: QueryResult) -> None:
        """Fill ``key`` at the current epoch, evicting LRU past the cap."""
        with self._lock:
            self._entries[key] = (self._epoch, result)
            self._entries.move_to_end(key)
            cache_outcomes_metric().labels(event="fill").inc()
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                cache_outcomes_metric().labels(event="evict").inc()

    def clear(self) -> int:
        """Drop every entry (epoch unchanged); returns how many."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Hits / lookups since construction (stale lookups count as misses)."""
        total = self.hits + self.misses + self.stale
        return self.hits / total if total else 0.0

    def estimated_bytes(self) -> int:
        """Rough retained size of the cached results.

        Per entry: the key tuple + OrderedDict slot (~200 B) and the
        result items (~88 B each: a ResultItem holds four floats/ints
        plus object headers).  Good enough for a capacity-planning
        gauge; not an accounting figure.
        """
        with self._lock:
            items = sum(
                len(result.items) for _, result in self._entries.values()
            )
            return 200 * len(self._entries) + 88 * items

    def describe(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "epoch": self._epoch,
                "hits": self.hits,
                "misses": self.misses,
                "stale": self.stale,
                "evictions": self.evictions,
                "hit_rate": round(self.hit_rate, 4),
            }
