"""Boot a demo query service over a synthetic world.

The README's "Serving queries" quickstart::

    PYTHONPATH=src python -m repro.serve --port 8080

builds a synthetic dataset, mounts :class:`~repro.serve.http.ServeServer`
(query endpoint + metrics/dashboard on one port) and prints a few
ready-to-paste example requests.  ``--live`` wraps the processor's
dataset in a :class:`~repro.live.LiveDataset` so live mutations
(via the Python API) invalidate the serving cache.

Ctrl-C stops the server.
"""

from __future__ import annotations

import argparse
import json
import logging
import time
from pathlib import Path

from repro.core.executor import QueryExecutor
from repro.core.processor import QueryProcessor
from repro.data.synthetic import synthetic_feature_sets, synthetic_objects
from repro.data.workload import WorkloadSpec, make_workload
from repro.obs import requests as _requests
from repro.obs import resources as _resources
from repro.obs import slo as _slo
from repro.obs.timeseries import Sampler, TimeSeriesRing
from repro.serve.http import ServeServer
from repro.serve.quota import QuotaSpec
from repro.serve.service import QueryService, ServeConfig


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--objects", type=int, default=20_000)
    parser.add_argument("--features", type=int, default=10_000)
    parser.add_argument("--sets", type=int, default=2)
    parser.add_argument("--vocab", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--quota-rate", type=float, default=None,
        help="default per-tenant requests/second (unlimited if omitted)",
    )
    parser.add_argument(
        "--quota-burst", type=float, default=None,
        help="default per-tenant burst (defaults to 2x rate)",
    )
    parser.add_argument(
        "--slo", type=Path, default=Path("SLO.json"),
        help="SLO document committing the latency target",
    )
    parser.add_argument(
        "--no-request-traces", action="store_true",
        help="disable the tail-sampled request trace store",
    )
    args = parser.parse_args(argv)
    logging.basicConfig(level=logging.INFO, format="%(message)s")
    # The README's tracing walkthrough runs against this server, so the
    # tail-sampled store is on by default here (the library default
    # stays off).
    if not args.no_request_traces:
        _requests.configure(enabled_=True)

    objects = synthetic_objects(args.objects, seed=args.seed)
    feature_sets = synthetic_feature_sets(
        args.sets, args.features, args.vocab, seed=args.seed + 1
    )
    processor = QueryProcessor.build(objects, feature_sets, index="srt")

    if args.quota_rate is not None:
        burst = args.quota_burst or max(1.0, 2 * args.quota_rate)
        default_quota = QuotaSpec(rate=args.quota_rate, burst=burst)
    else:
        default_quota = QuotaSpec()
    if args.slo.exists():
        config = ServeConfig.from_slo_file(
            args.slo, default_quota=default_quota
        )
        slos = _slo.load_slos(args.slo)
    else:
        config = ServeConfig(default_quota=default_quota)
        slos = _slo.default_slos()

    ring = TimeSeriesRing()
    sampler = Sampler(
        ring, interval_s=1.0, pre_sample=(_resources.collect,)
    ).start()

    executor = QueryExecutor(processor, max_workers=args.workers)
    service = QueryService(executor, config)
    server = ServeServer(
        service, host=args.host, port=args.port, ring=ring, slos=slos
    ).start()

    # One data-shaped example request, so the quickstart is paste-ready.
    example = make_workload(
        feature_sets, WorkloadSpec(n_queries=1, seed=args.seed + 7)
    )[0]
    body = {
        "tenant": "demo", "algorithm": "stps", "k": example.k,
        "radius": example.radius, "lam": example.lam,
        "masks": list(example.keyword_masks),
    }
    base = f"http://{args.host}:{server.port}"
    print(f"query service on {base}")
    print(f"  POST {base}/query        e.g. {json.dumps(body)}")
    print(f"  GET  {base}/stats/serve  (admission/cache/quota state)")
    if not args.no_request_traces:
        print(f"  GET  {base}/traces.json  (tail-sampled request traces)")
    print(f"  GET  {base}/dashboard    (live telemetry)")
    print(f"  GET  {base}/metrics      (Prometheus scrape)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.close()
        sampler.stop()
        executor.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
