"""Online query serving: multi-tenant admission control over the engine.

The serving layer turns the batch-oriented engine into a long-lived
service (ROADMAP: "online serving").  Layers, bottom-up:

* :mod:`repro.serve.quota` — per-tenant token buckets with lazy,
  bounded tenant tables (:class:`TenantQuotas`);
* :mod:`repro.serve.cache` — the tenant-agnostic, epoch-invalidated
  result cache (:class:`ResultCache`), wired to ``repro.live`` mutation
  listeners for coherence;
* :mod:`repro.serve.service` — transport-agnostic admission control +
  dispatch (:class:`QueryService`, :class:`ServeConfig`): quota gate,
  cache gate, SLO-driven backpressure gate, then
  :meth:`QueryExecutor.execute_one`;
* :mod:`repro.serve.http` — the stdlib HTTP front end
  (:class:`ServeServer`): ``/query`` + ``/stats/serve`` mounted
  alongside every :class:`~repro.obs.export.MetricsServer` route.

``python -m repro.serve`` boots a demo server over a synthetic world —
see the README "Serving queries" quickstart; DESIGN.md §15 documents
the admission-control and cache-keying protocol.
"""

from repro.serve.cache import ResultCache, query_signature
from repro.serve.http import ServeServer, parse_request
from repro.serve.quota import QuotaSpec, TenantQuotas
from repro.serve.service import (
    QueryService,
    ServeConfig,
    ServeDecision,
)

__all__ = [
    "QuotaSpec",
    "TenantQuotas",
    "ResultCache",
    "query_signature",
    "QueryService",
    "ServeConfig",
    "ServeDecision",
    "ServeServer",
    "parse_request",
]
