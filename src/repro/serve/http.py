"""Stdlib HTTP front end for :class:`~repro.serve.service.QueryService`.

One :class:`ServeServer` mounts everything a deployment needs on a
single port, no third-party dependency:

* ``POST /query`` (JSON body) and ``GET /query`` (query string) — the
  serving path: admission control + execution via the shared
  :class:`QueryService`.  429 responses carry ``Retry-After``.
* ``GET /stats/serve`` — live admission/cache/quota state.
* Everything :class:`repro.obs.export.MetricsServer` serves —
  ``/metrics``, ``/openmetrics``, ``/metrics.json``, ``/healthz``,
  ``/timeseries.json``, ``/dashboard``, ``/flight.json``,
  ``/flamegraph.txt`` — by inheriting its handler, so the scrape
  endpoint and the query endpoint share one listener.

Request shape (POST body or GET query string)::

    {"tenant": "acme", "algorithm": "stps", "pulling": "prioritized",
     "k": 5, "radius": 0.1, "lam": 0.5, "masks": [3, 1],
     "variant": "range"}

``masks`` holds one keyword bit mask per feature set (the canonical
:class:`~repro.core.query.PreferenceQuery` form; resolve keyword strings
with :meth:`PreferenceQuery.from_terms` client-side, or serve-side via
your own wrapper).  In a query string, ``masks`` is comma-separated:
``/query?tenant=acme&k=5&radius=0.1&lam=0.5&masks=3,1``.  The tenant may
also arrive as an ``X-Tenant`` header (body/param wins).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.core.query import PreferenceQuery, Variant
from repro.errors import QueryError, ReproError
from repro.obs import export as _export
from repro.obs import metrics as _metrics
from repro.obs import requests as _requests
from repro.serve.service import QueryService

logger = logging.getLogger(__name__)

DEFAULT_TENANT = "anonymous"


def parse_request(params: dict, headers=None) -> tuple[str, PreferenceQuery, str, str]:
    """(tenant, query, algorithm, pulling) from a request's parameters.

    ``params`` is a flat dict (JSON body or flattened query string);
    raises :class:`QueryError` on anything malformed — the HTTP layer
    maps that to a 400.
    """
    if not isinstance(params, dict):
        raise QueryError("request body must be a JSON object")
    tenant = str(params.get("tenant") or (
        headers.get("X-Tenant") if headers else None
    ) or DEFAULT_TENANT)
    algorithm = str(params.get("algorithm", "stps"))
    pulling = str(params.get("pulling", "prioritized"))
    try:
        k = int(params["k"])
        radius = float(params["radius"])
        lam = float(params["lam"])
    except KeyError as exc:
        raise QueryError(f"missing required field {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise QueryError(f"malformed numeric field: {exc}") from exc
    masks = params.get("masks")
    if isinstance(masks, str):
        masks = [m for m in masks.split(",") if m]
    if not isinstance(masks, (list, tuple)) or not masks:
        raise QueryError("'masks' must be a non-empty list of bit masks")
    try:
        mask_tuple = tuple(int(m) for m in masks)
    except (TypeError, ValueError) as exc:
        raise QueryError(f"malformed mask: {exc}") from exc
    variant_name = str(params.get("variant", "range"))
    try:
        variant = Variant(variant_name)
    except ValueError as exc:
        raise QueryError(
            f"unknown variant {variant_name!r}; choose from "
            f"{[v.value for v in Variant]}"
        ) from exc
    query = PreferenceQuery(k, radius, lam, mask_tuple, variant)
    return tenant, query, algorithm, pulling


def _decision_body(decision) -> dict:
    """JSON payload for one ServeDecision."""
    if decision.status == 200:
        result = decision.result
        return {
            "status": 200,
            "trace_id": decision.trace_id,
            "cached": decision.cached,
            "items": [
                {"oid": it.oid, "score": it.score, "x": it.x, "y": it.y}
                for it in result.items
            ],
            "stats": {
                "wall_s": result.stats.wall_s,
                "io_reads": result.stats.io_reads,
                "io_time_s": result.stats.io_time_s,
                "combinations": result.stats.combinations,
                "trace_id": result.stats.trace_id,
            },
            "queue_wait_s": decision.queue_wait_s,
            "latency_s": decision.latency_s,
        }
    body = {
        "status": decision.status,
        "error": decision.reason,
        "trace_id": decision.trace_id,
    }
    if decision.status == 429:
        body["retry_after_s"] = decision.retry_after_s
    return body


class _ServeHandler(_export._Handler):
    """Query endpoint + everything the metrics handler already serves."""

    service: QueryService  # set by ServeServer

    # Accurate Content-Length on every response (send_error included)
    # makes HTTP/1.1 keep-alive safe — and keep-alive is what lets a
    # load generator sustain hundreds of QPS without a connection
    # handshake per request.
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        split = urlsplit(self.path)
        if split.path == "/query":
            params = {
                key: values[-1]
                for key, values in parse_qs(split.query).items()
            }
            self._serve_query(params)
        elif split.path == "/stats/serve":
            self._send_json(200, self.service.describe())
        else:
            super().do_GET()

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        if urlsplit(self.path).path != "/query":
            self.send_error(404, "unknown path")
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            params = json.loads(self.rfile.read(length) or b"{}")
        except (ValueError, json.JSONDecodeError) as exc:
            self._send_json(400, {"status": 400, "error": f"bad body: {exc}"})
            return
        self._serve_query(params)

    def _serve_query(self, params: dict) -> None:
        try:
            tenant, query, algorithm, pulling = parse_request(
                params, self.headers
            )
        except (QueryError, ReproError) as exc:
            self._send_json(400, {"status": 400, "error": str(exc)})
            return
        # A valid client traceparent donates its trace id; anything
        # malformed (wrong widths, all-zero ids, version ff, uppercase
        # hex) falls back to a service-minted id per the W3C spec.
        parsed = _requests.parse_traceparent(self.headers.get("traceparent"))
        decision = self.service.handle(
            tenant, query, algorithm=algorithm, pulling=pulling,
            trace_id=parsed[0] if parsed else None,
        )
        # The response names the request's trace in W3C form whatever
        # the outcome — a 429 is exactly when the client wants the id.
        headers = {"traceparent": _requests.format_traceparent(
            decision.trace_id
        )}
        if decision.status == 429:
            # Whole seconds, rounded up: Retry-After is integral in
            # HTTP, and rounding down would invite an early retry that
            # meets a still-empty bucket.
            headers["Retry-After"] = str(
                max(1, int(decision.retry_after_s + 0.999))
            )
        self._send_json(decision.status, _decision_body(decision), headers)

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:
        logger.debug("serve endpoint: " + fmt, *args)


class ServeServer:
    """The online query service: one port, query + observability.

    Mirrors :class:`~repro.obs.export.MetricsServer`'s lifecycle (daemon
    serve thread, ephemeral ``port=0`` binding, prompt :meth:`close`)
    and adds the ``/query`` + ``/stats/serve`` routes bound to a
    :class:`QueryService`.

    Usage::

        service = QueryService(executor, config, live=live)
        server = ServeServer(service, port=0).start()
        print(f"query http://127.0.0.1:{server.port}/query")
        ...
        server.close()
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        registry=None,
        ring=None,
        slos=None,
        timeline_spec: dict | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.registry = (
            registry if registry is not None else _metrics.registry()
        )
        self.ring = ring
        self.slos = slos
        self.timeline_spec = timeline_spec
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    def start(self) -> "ServeServer":
        if self._httpd is not None:
            return self
        handler = type(
            "BoundServeHandler",
            (_ServeHandler,),
            {
                "service": self.service,
                "registry": self.registry,
                "ring": self.ring,
                "slos": self.slos,
                "timeline_spec": self.timeline_spec,
            },
        )
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()
        logger.info(
            "query service listening on %s:%d", self.host, self.port
        )
        return self

    def close(self) -> None:
        """Stop listening and detach the service's live hooks.

        Same promptness contract as :meth:`MetricsServer.close`: the
        listening socket shuts before the join, daemonic handler threads
        drain via their socket timeout, and the shared executor is left
        running (its owner closes it).
        """
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5)
            if thread.is_alive():  # pragma: no cover - defensive
                logger.warning(
                    "serve endpoint thread still alive after close()"
                )
        self.service.close()

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()
