"""Transport-agnostic serving core: admission control + dispatch.

:class:`QueryService` is what the HTTP layer (:mod:`repro.serve.http`)
wraps: one long-lived object owning a quota table, a result cache and a
shared :class:`~repro.core.executor.QueryExecutor` (whose processor may
be a single-node :class:`~repro.core.processor.QueryProcessor` or a
:class:`~repro.shard.ShardedQueryProcessor`).  Keeping it free of any
HTTP types makes every admission decision unit-testable without sockets.

A request passes through three gates, in a deliberate order:

1. **Quota** — the tenant's token bucket (:mod:`repro.serve.quota`).
   First, so an abusive tenant is clamped before it can touch shared
   resources (even the cache: a hot key must not launder an exhausted
   tenant's traffic past its bucket).
2. **Cache** — the epoch-validated result cache
   (:mod:`repro.serve.cache`).  Hits return immediately and *bypass
   backpressure*: a cache hit costs no executor capacity, so rejecting
   it during overload would throw away exactly the traffic that is
   cheapest to serve.  Under zipf-skewed keys this is what keeps the
   p99 flat while the executor is saturated.
3. **Backpressure** — reject with 429/``Retry-After`` when the executor
   queue is past its depth bound, or when the sliding-window p95 of
   queue wait has breached the committed SLO latency target
   (``SLO.json``): once waiting for a worker alone eats the latency
   budget, admitting more work can only create SLO-violating answers.

Admitted queries run via :meth:`QueryExecutor.execute_one`, which
reports the (queue_wait, latency) sample that feeds the backpressure
window and the ``repro_serve_*`` metrics.

Every request is traced end to end: :meth:`QueryService.handle` enters
a trace scope (inheriting a client-donated W3C trace id when the HTTP
layer parsed one), wraps each admission gate in a span
(``serve.quota`` / ``serve.cache`` / ``serve.backpressure`` /
``serve.execute``), collects the request's spans through a per-request
sink even while global tracing is off, and hands the finished request
to the tail-sampled trace store (:mod:`repro.obs.requests`).  RED
metrics are tenant-scoped with bounded label cardinality: past
``tenant_label_limit`` distinct tenants, new ones fold into the
``__other__`` overflow label so a tenant-id cardinality explosion
cannot take down the metrics registry.
"""

from __future__ import annotations

import logging
import math
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.combinations import PULL_PRIORITIZED, PULL_ROUND_ROBIN
from repro.core.processor import ALGORITHM_ISS, ALGORITHM_STDS, ALGORITHM_STPS
from repro.core.query import PreferenceQuery
from repro.core.results import QueryResult
from repro.errors import ReproError
from repro.obs import flight as _flight
from repro.obs import metrics as _metrics
from repro.obs import requests as _requests
from repro.obs import slo as _slo
from repro.obs import tracing as _tracing
from repro.serve.cache import ResultCache, query_signature
from repro.serve.quota import QuotaSpec, TenantQuotas

logger = logging.getLogger(__name__)

ALGORITHMS = (ALGORITHM_STPS, ALGORITHM_STDS, ALGORITHM_ISS)
PULLING_STRATEGIES = (PULL_PRIORITIZED, PULL_ROUND_ROBIN)

#: Default bound on queries queued behind the executor's workers.
DEFAULT_MAX_QUEUE_DEPTH = 64

#: Default sliding-window size (samples) for the queue-wait p95 gate.
DEFAULT_QUEUE_WAIT_WINDOW = 256
DEFAULT_QUEUE_WAIT_HORIZON_S = 10.0

#: Fallback latency target when no SLO document is available.
DEFAULT_LATENCY_SLO_S = 0.1

#: Distinct tenants that get their own metric label before new ones
#: fold into :data:`OVERFLOW_TENANT`.
DEFAULT_TENANT_LABEL_LIMIT = 64

#: The overflow label for tenants past the cardinality cap.
OVERFLOW_TENANT = "__other__"

#: Metric families owned by the serving layer (reset scope).
SERVE_METRIC_FAMILIES = (
    "repro_serve_requests_total",
    "repro_serve_rejections_total",
    "repro_serve_request_seconds",
    "repro_serve_tenant_seconds",
    "repro_serve_cache_hit_rate",
    "repro_serve_tenant_table_size",
    "repro_serve_shed_requests",
)


def requests_metric() -> "_metrics.MetricFamily":
    """Per-tenant requests by outcome; lazily bound to the registry."""
    return _metrics.registry().counter(
        "repro_serve_requests_total",
        "Serving requests by tenant and outcome.",
        ("tenant", "outcome"),
    )


def rejections_metric() -> "_metrics.MetricFamily":
    """Admission rejections by gate (quota / backpressure)."""
    return _metrics.registry().counter(
        "repro_serve_rejections_total",
        "Requests rejected by admission control.",
        ("reason",),
    )


def request_seconds_metric() -> "_metrics.MetricFamily":
    """End-to-end serving latency (admission + execution)."""
    return _metrics.registry().histogram(
        "repro_serve_request_seconds",
        "Wall time from admission to response, by outcome.",
        ("status",),
    )


def tenant_seconds_metric() -> "_metrics.MetricFamily":
    """End-to-end serving latency by tenant (cardinality-capped)."""
    return _metrics.registry().histogram(
        "repro_serve_tenant_seconds",
        "Wall time from admission to response, by tenant.",
        ("tenant",),
    )


@dataclass(slots=True)
class ServeConfig:
    """Operator knobs for one :class:`QueryService`."""

    default_quota: QuotaSpec = field(default_factory=QuotaSpec)
    quota_overrides: dict[str, QuotaSpec] = field(default_factory=dict)
    max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH
    #: Committed latency target the backpressure gate enforces; load it
    #: from the repo's ``SLO.json`` with :meth:`from_slo_file`.
    latency_slo_s: float = DEFAULT_LATENCY_SLO_S
    queue_wait_window: int = DEFAULT_QUEUE_WAIT_WINDOW
    #: Queue-wait samples older than this stop counting toward the
    #: backpressure p95.  Without a time horizon a transient overload
    #: poisons the count-bounded window permanently: cache misses get
    #: shed (so they never execute and never refresh the window) while
    #: cache hits bypass the gate — the service keeps shedding all
    #: uncached work long after the queue has drained.
    queue_wait_horizon_s: float = DEFAULT_QUEUE_WAIT_HORIZON_S
    cache_entries: int = 4096
    cache_enabled: bool = True
    #: Cardinality cap on the ``tenant`` metric label; tenants past it
    #: share the :data:`OVERFLOW_TENANT` label.
    tenant_label_limit: int = DEFAULT_TENANT_LABEL_LIMIT

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ReproError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.latency_slo_s <= 0:
            raise ReproError(
                f"latency_slo_s must be > 0, got {self.latency_slo_s}"
            )
        if self.queue_wait_window < 1:
            raise ReproError(
                f"queue_wait_window must be >= 1, got {self.queue_wait_window}"
            )
        if self.queue_wait_horizon_s <= 0:
            raise ReproError(
                f"queue_wait_horizon_s must be > 0, got "
                f"{self.queue_wait_horizon_s}"
            )
        if self.tenant_label_limit < 1:
            raise ReproError(
                f"tenant_label_limit must be >= 1, got "
                f"{self.tenant_label_limit}"
            )

    @classmethod
    def from_slo_file(cls, path: str | Path, **kwargs) -> "ServeConfig":
        """Config whose latency target is the committed SLO threshold.

        Prefers the serving-path latency SLO (metric
        ``repro_serve_request_seconds``); falls back to any latency SLO
        in the document, then to :data:`DEFAULT_LATENCY_SLO_S`.
        """
        threshold = DEFAULT_LATENCY_SLO_S
        latency_slos = [
            s for s in _slo.load_slos(path)
            if isinstance(s, _slo.LatencySLO)
        ]
        for candidate in latency_slos:
            if candidate.metric == "repro_serve_request_seconds":
                threshold = candidate.threshold_s
                break
        else:
            if latency_slos:
                threshold = latency_slos[0].threshold_s
        kwargs.setdefault("latency_slo_s", threshold)
        return cls(**kwargs)


@dataclass(slots=True)
class ServeDecision:
    """One request's outcome, independent of transport.

    ``status`` is deliberately HTTP-shaped (200/400/429/500) so the
    transport layer is a dumb mapping, but nothing here imports HTTP.
    """

    status: int
    result: QueryResult | None = None
    cached: bool = False
    retry_after_s: float = 0.0
    reason: str = ""
    queue_wait_s: float = 0.0
    latency_s: float = 0.0
    #: The request's trace id (client-donated or minted), set by
    #: :meth:`QueryService.handle` on every decision.
    trace_id: str = ""
    #: Terminal outcome label: ok / cached / quota / backpressure /
    #: bad_request / error.
    outcome: str = ""


class _TenantLabelLimiter:
    """Caps distinct tenant label values; overflow shares one label."""

    __slots__ = ("_limit", "_seen", "_lock")

    def __init__(self, limit: int) -> None:
        self._limit = limit
        self._seen: set[str] = set()
        self._lock = threading.Lock()

    def resolve(self, tenant: str) -> str:
        with self._lock:
            if tenant in self._seen:
                return tenant
            if len(self._seen) < self._limit:
                self._seen.add(tenant)
                return tenant
        return OVERFLOW_TENANT

    def __len__(self) -> int:
        with self._lock:
            return len(self._seen)


#: Live services, for the resource sampler's serve gauges (weakly held:
#: the sampler must never keep a closed service alive).
_live_services: "weakref.WeakSet[QueryService]" = weakref.WeakSet()


def live_services() -> list["QueryService"]:
    """Currently live service instances (a snapshot)."""
    return list(_live_services)


class QueryService:
    """Multi-tenant admission control around a shared executor."""

    def __init__(
        self,
        executor,
        config: ServeConfig | None = None,
        live=None,
    ) -> None:
        self.executor = executor
        self.config = config or ServeConfig()
        self.quotas = TenantQuotas(
            default=self.config.default_quota,
            overrides=self.config.quota_overrides,
        )
        self.cache = ResultCache(max_entries=self.config.cache_entries)
        if live is not None:
            self.cache.attach_live(live)
        self._lock = threading.Lock()
        #: ``(monotonic stamp, queue wait)`` pairs; bounded by count
        #: *and* expired by age (``queue_wait_horizon_s``) so the gate
        #: reflects current congestion, not a long-gone overload.
        self._queue_waits: deque[tuple[float, float]] = deque(
            maxlen=self.config.queue_wait_window
        )
        self.tenant_labels = _TenantLabelLimiter(
            self.config.tenant_label_limit
        )
        self.started_at = time.time()
        self.served = 0
        self.errors = 0
        self.rejected_quota = 0
        self.rejected_backpressure = 0
        _live_services.add(self)

    # ------------------------------------------------------------------
    # admission gates
    # ------------------------------------------------------------------
    def queue_wait_p95(self) -> float:
        """Sliding-window p95 of executor queue wait (0.0 when empty).

        Samples past the configured time horizon are pruned first, so
        the answer always describes the recent past.
        """
        cutoff = time.monotonic() - self.config.queue_wait_horizon_s
        with self._lock:
            waits = self._queue_waits
            while waits and waits[0][0] < cutoff:
                waits.popleft()
            if not waits:
                return 0.0
            ordered = sorted(wait for _, wait in waits)
        rank = max(1, math.ceil(0.95 * len(ordered)))
        return ordered[rank - 1]

    def _backpressured(self) -> tuple[bool, str]:
        """(reject?, reason) from queue depth and the SLO latency gate."""
        depth = self.executor.queue_depth
        if depth >= self.config.max_queue_depth:
            return True, (
                f"queue depth {depth} at bound {self.config.max_queue_depth}"
            )
        p95 = self.queue_wait_p95()
        if p95 > self.config.latency_slo_s:
            return True, (
                f"queue wait p95 {p95 * 1e3:.1f}ms over SLO target "
                f"{self.config.latency_slo_s * 1e3:.0f}ms"
            )
        return False, ""

    def _backpressure_retry_after(self) -> float:
        """A drain-time estimate: queued work / observed service rate."""
        with self._lock:
            waits = len(self._queue_waits)
        # Half the SLO target per queued query is a deliberately rough
        # but monotone signal: deeper queue -> longer Retry-After.
        depth = max(1, self.executor.queue_depth)
        workers = max(1, getattr(self.executor, "max_workers", 1))
        estimate = depth * (self.config.latency_slo_s / 2.0) / workers
        return max(0.05, min(5.0, estimate)) if waits or depth else 0.05

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def handle(
        self,
        tenant: str,
        query: PreferenceQuery,
        algorithm: str = ALGORITHM_STPS,
        pulling: str = PULL_PRIORITIZED,
        trace_id: str | None = None,
    ) -> ServeDecision:
        """Admit + execute one request; never raises for request faults.

        ``trace_id`` (when the transport parsed one out of a client
        ``traceparent``) becomes the request's trace id end to end —
        spans, flight records, exemplars, logs, and the trace store all
        join on it; otherwise a fresh id is minted here, *before* the
        gates, so even a quota 429 is a traced event.
        """
        trace_id = trace_id or _tracing.new_trace_id()
        collector = _tracing.SpanCollector() if _requests.enabled else None
        t0 = time.perf_counter()
        with _tracing.trace_scope(trace_id), _tracing.span_sink(collector):
            with _tracing.span("serve.request", cat="serve", tenant=tenant):
                decision = self._admit(tenant, query, algorithm, pulling)
            decision.trace_id = trace_id
            # Metrics + log inside the scope: the exemplar capture and
            # the log record's trace_id field both read the ContextVar.
            self._finish(t0, tenant, decision)
        elapsed = time.perf_counter() - t0
        if decision.status == 429 and _flight.enabled:
            _flight.record_rejection(
                query, f"serve/{algorithm}", pulling, trace_id, elapsed,
                tenant=tenant, decision=decision.outcome,
            )
        if _requests.enabled:
            # Both callables: most requests are dropped by the tail
            # sampler, so the span dicts and the query-shape dict are
            # only built for the kept few.
            _requests.record(
                trace_id=trace_id,
                tenant=tenant,
                outcome=decision.outcome,
                status=decision.status,
                duration_s=elapsed,
                algorithm=algorithm,
                pulling=pulling,
                query=lambda: _flight._query_args(query),
                spans=collector.snapshot if collector is not None else None,
                reason=decision.reason,
            )
        return decision

    def _admit(
        self,
        tenant: str,
        query: PreferenceQuery,
        algorithm: str,
        pulling: str,
    ) -> ServeDecision:
        """The admission waterfall; every gate is a traced span."""
        if algorithm not in ALGORITHMS:
            return ServeDecision(
                status=400, outcome="bad_request",
                reason=f"unknown algorithm {algorithm!r}; "
                       f"choose from {list(ALGORITHMS)}",
            )
        if pulling not in PULLING_STRATEGIES:
            return ServeDecision(
                status=400, outcome="bad_request",
                reason=f"unknown pulling {pulling!r}; "
                       f"choose from {list(PULLING_STRATEGIES)}",
            )

        # Gate 1: tenant quota.
        with _tracing.span("serve.quota", cat="serve", tenant=tenant):
            retry_after = self.quotas.try_acquire(tenant)
        if retry_after > 0.0:
            self.rejected_quota += 1
            rejections_metric().labels(reason="quota").inc()
            return ServeDecision(
                status=429, outcome="quota",
                retry_after_s=retry_after,
                reason=f"tenant {tenant!r} over quota",
            )

        # Gate 2: result cache (hits bypass backpressure — they cost no
        # executor capacity, so shedding them would be pure waste).
        key = None
        hit = None
        if self.config.cache_enabled:
            with _tracing.span("serve.cache", cat="serve"):
                key = query_signature(query, algorithm, pulling)
                hit = self.cache.get(key)
            if hit is not None:
                self.served += 1
                return ServeDecision(
                    status=200, outcome="cached", result=hit, cached=True,
                )

        # Gate 3: backpressure.
        with _tracing.span("serve.backpressure", cat="serve"):
            shed, why = self._backpressured()
        if shed:
            self.rejected_backpressure += 1
            rejections_metric().labels(reason="backpressure").inc()
            return ServeDecision(
                status=429, outcome="backpressure",
                retry_after_s=self._backpressure_retry_after(),
                reason=why,
            )

        # Execute.
        try:
            with _tracing.span(
                "serve.execute", cat="serve", algorithm=algorithm
            ):
                result, queue_wait_s, latency_s = self.executor.execute_one(
                    query, algorithm=algorithm, pulling=pulling
                )
        except ReproError as exc:
            self.errors += 1
            return ServeDecision(
                status=400, outcome="bad_request", reason=str(exc)
            )
        except Exception as exc:  # engine bug: the request still answers
            self.errors += 1
            return ServeDecision(
                status=500, outcome="error",
                reason=f"{type(exc).__name__}: {exc}",
            )
        with self._lock:
            self._queue_waits.append((time.monotonic(), queue_wait_s))
        if key is not None:
            self.cache.put(key, result)
        self.served += 1
        return ServeDecision(
            status=200, outcome="ok", result=result,
            queue_wait_s=queue_wait_s, latency_s=latency_s,
        )

    def _finish(
        self, t0: float, tenant: str, decision: ServeDecision
    ) -> ServeDecision:
        elapsed = time.perf_counter() - t0
        label_tenant = self.tenant_labels.resolve(tenant)
        requests_metric().labels(
            tenant=label_tenant, outcome=decision.outcome
        ).inc()
        request_seconds_metric().labels(
            status=str(decision.status)
        ).observe(elapsed)
        tenant_seconds_metric().labels(tenant=label_tenant).observe(elapsed)
        self._update_gauges()
        if logger.isEnabledFor(logging.INFO):
            logger.info(
                "request tenant=%s outcome=%s status=%d latency_ms=%.2f "
                "cached=%s",
                tenant, decision.outcome, decision.status, elapsed * 1e3,
                decision.cached,
            )
        return decision

    def _update_gauges(self) -> None:
        """Serve-state gauges for Prometheus/OpenMetrics scrapes."""
        reg = _metrics.registry()
        reg.gauge(
            "repro_serve_cache_hit_rate",
            "Result-cache hit rate since service start.",
        ).set(self.cache.hit_rate)
        reg.gauge(
            "repro_serve_tenant_table_size",
            "Distinct tenants with live quota buckets.",
        ).set(float(self.quotas.tenant_count()))
        reg.gauge(
            "repro_serve_shed_requests",
            "Requests shed by admission control since service start.",
        ).set(float(self.rejected_quota + self.rejected_backpressure))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Live service state for ``/stats/serve`` (strict JSON)."""
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "served": self.served,
            "errors": self.errors,
            "rejected": {
                "quota": self.rejected_quota,
                "backpressure": self.rejected_backpressure,
            },
            "executor": {
                "queue_depth": self.executor.queue_depth,
                "running": self.executor.running_count,
                "max_workers": getattr(self.executor, "max_workers", None),
                "max_queue_depth": self.config.max_queue_depth,
                "queue_wait_p95_s": round(self.queue_wait_p95(), 6),
                "latency_slo_s": self.config.latency_slo_s,
            },
            "cache": self.cache.describe(),
            "quotas": self.quotas.describe(),
            "tenant_labels": {
                "limit": self.config.tenant_label_limit,
                "distinct": len(self.tenant_labels),
            },
        }

    def close(self) -> None:
        """Detach live-mutation listeners (the executor is shared: the
        owner closes it)."""
        self.cache.detach()
