"""Per-tenant token-bucket quotas for the serving layer.

A tenant's quota is a classic token bucket: ``rate`` tokens per second
refill up to a ``burst`` ceiling, one token per admitted request.  A
tenant that exhausts its bucket is rejected with the time until the next
token becomes available — the serving layer turns that into a 429 with a
``Retry-After`` header, so well-behaved clients back off for exactly as
long as the bucket needs.

Buckets are created lazily per tenant (millions of users must not mean
millions of pre-provisioned buckets) from a default ``(rate, burst)``
pair, with explicit per-tenant overrides for tiered plans or abuse
clamps.  The table is bounded: least-recently-used *default-quota*
buckets are dropped once ``max_tenants`` is reached (a dropped bucket
resurrects full, which momentarily favours the evicted tenant — the
cheap and safe direction), while override buckets are pinned.

All state is process-local and thread-safe; time is injected
(``clock``) so tests can drive refill deterministically.
"""

from __future__ import annotations

import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import ReproError

#: Default bucket table bound (lazily created default-quota buckets).
DEFAULT_MAX_TENANTS = 100_000


@dataclass(frozen=True, slots=True)
class QuotaSpec:
    """A tenant's admission budget: sustained rate + burst ceiling."""

    rate: float = math.inf   # tokens (requests) per second
    burst: float = math.inf  # bucket capacity

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ReproError(f"quota rate must be > 0, got {self.rate}")
        if self.burst < 1:
            raise ReproError(f"quota burst must be >= 1, got {self.burst}")

    @property
    def unlimited(self) -> bool:
        return math.isinf(self.rate)


class _Bucket:
    """One tenant's token bucket (not thread-safe; table lock guards it)."""

    __slots__ = ("spec", "tokens", "stamp", "admitted", "rejected")

    def __init__(self, spec: QuotaSpec, now: float) -> None:
        self.spec = spec
        self.tokens = spec.burst
        self.stamp = now
        self.admitted = 0
        self.rejected = 0

    def refill(self, now: float) -> None:
        elapsed = now - self.stamp
        self.stamp = now
        if elapsed > 0 and not self.spec.unlimited:
            self.tokens = min(
                self.spec.burst, self.tokens + elapsed * self.spec.rate
            )

    def try_acquire(self, now: float) -> float:
        """Admit (returns 0.0) or reject with seconds until a token."""
        if self.spec.unlimited:
            self.admitted += 1
            return 0.0
        self.refill(now)
        # The epsilon absorbs float error in elapsed*rate refill sums:
        # a bucket refilled for exactly one token must admit.
        if self.tokens >= 1.0 - 1e-9:
            self.tokens = max(0.0, self.tokens - 1.0)
            self.admitted += 1
            return 0.0
        self.rejected += 1
        return (1.0 - self.tokens) / self.spec.rate


class TenantQuotas:
    """Lazily populated, bounded table of per-tenant token buckets."""

    def __init__(
        self,
        default: QuotaSpec | None = None,
        overrides: dict[str, QuotaSpec] | None = None,
        max_tenants: int = DEFAULT_MAX_TENANTS,
        clock=time.monotonic,
    ) -> None:
        if max_tenants < 1:
            raise ReproError(f"max_tenants must be >= 1, got {max_tenants}")
        self.default = default or QuotaSpec()
        self.overrides = dict(overrides or {})
        self.max_tenants = max_tenants
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: OrderedDict[str, _Bucket] = OrderedDict()

    def set_override(self, tenant: str, spec: QuotaSpec) -> None:
        """Pin a tenant to an explicit quota (replaces its live bucket)."""
        with self._lock:
            self.overrides[tenant] = spec
            self._buckets.pop(tenant, None)

    def try_acquire(self, tenant: str) -> float:
        """0.0 when admitted, else seconds until the tenant's next token."""
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                spec = self.overrides.get(tenant, self.default)
                bucket = _Bucket(spec, now)
                self._buckets[tenant] = bucket
                self._evict()
            else:
                self._buckets.move_to_end(tenant)
            return bucket.try_acquire(now)

    def _evict(self) -> None:
        # Drop least-recently-seen default-quota buckets; override
        # buckets are pinned (they encode an explicit clamp).
        while len(self._buckets) > self.max_tenants:
            for tenant in self._buckets:
                if tenant not in self.overrides:
                    del self._buckets[tenant]
                    break
            else:  # every bucket is an override: nothing evictable
                break

    def tenant_count(self) -> int:
        """Live bucket count (distinct tenants seen, post-eviction)."""
        with self._lock:
            return len(self._buckets)

    def describe(self) -> dict:
        """Live quota state, JSON-friendly (``/stats/serve`` payload)."""
        now = self._clock()
        with self._lock:
            tenants = {}
            for tenant, bucket in self._buckets.items():
                bucket.refill(now)
                tenants[tenant] = {
                    "rate": _finite(bucket.spec.rate),
                    "burst": _finite(bucket.spec.burst),
                    "tokens": round(bucket.tokens, 3)
                    if not bucket.spec.unlimited else None,
                    "admitted": bucket.admitted,
                    "rejected": bucket.rejected,
                }
            return {
                "default": {
                    "rate": _finite(self.default.rate),
                    "burst": _finite(self.default.burst),
                },
                "tenants": tenants,
            }


def _finite(value: float) -> float | None:
    """inf → None so quota state stays strict-JSON serialisable."""
    return None if math.isinf(value) else value
