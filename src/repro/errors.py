"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric input (mismatched dimensions, degenerate shapes)."""


class StorageError(ReproError):
    """Problem in the paged storage layer."""


class PageNotFoundError(StorageError):
    """A page id was requested that does not exist in the page file."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist")
        self.page_id = page_id


class PageCorruptedError(StorageError):
    """A page failed checksum or structural validation when read back."""

    def __init__(self, page_id: int, reason: str) -> None:
        super().__init__(f"page {page_id} is corrupted: {reason}")
        self.page_id = page_id
        self.reason = reason


class PageOverflowError(StorageError):
    """Serialized payload does not fit into the fixed page size."""

    def __init__(self, needed: int, capacity: int) -> None:
        super().__init__(
            f"payload of {needed} bytes exceeds page capacity of {capacity} bytes"
        )
        self.needed = needed
        self.capacity = capacity


class IndexError_(ReproError):
    """Structural problem inside a spatial index."""


class VocabularyError(ReproError):
    """Unknown term or inconsistent vocabulary use."""


class QueryError(ReproError):
    """Malformed query (bad k, radius, lambda, or keyword sets)."""


class DatasetError(ReproError):
    """Malformed or inconsistent dataset input."""


class ShardError(ReproError):
    """Failure inside the sharded engine (partitioning or shard worker).

    Wraps unexpected per-shard worker exceptions with the shard id so a
    batch can report *which* shard of *which* query failed; library
    errors (:class:`QueryError` etc.) propagate unwrapped.
    """

    def __init__(self, shard_id: int, message: str) -> None:
        super().__init__(f"shard {shard_id}: {message}")
        self.shard_id = shard_id
        self.message = message

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the formatted
        # string) into the two-argument __init__ and fails; the sharded
        # engine ships these across process boundaries, so restore from
        # the original pair instead.
        return (type(self), (self.shard_id, self.message))
