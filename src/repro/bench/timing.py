"""Per-workload measurement: averaged time and I/O counters.

Mirrors the paper's metric (Section 8.1): average execution time per
query, broken into time charged to disk accesses and CPU time.  By
default the buffer pool stays warm across the workload (as in the
paper's disk-resident-with-buffer setting); only physical page reads
that miss the buffer are charged I/O time.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.processor import QueryProcessor
from repro.core.query import PreferenceQuery


@dataclass(frozen=True, slots=True)
class Measurement:
    """Averages over one workload on one processor/algorithm.

    ``total_ms_std`` is the per-query standard deviation of the total
    time (0.0 for single-query workloads), so harness consumers can tell
    noise from signal.
    """

    queries: int
    total_ms: float
    cpu_ms: float
    io_ms: float
    io_reads: float
    buffer_hits: float
    combinations: float
    voronoi_ms: float
    voronoi_io_reads: float
    total_ms_std: float = 0.0

    def scaled(self, factor: float) -> "Measurement":
        """Measurement with all time/IO fields multiplied by ``factor``."""
        return Measurement(
            self.queries,
            self.total_ms * factor,
            self.cpu_ms * factor,
            self.io_ms * factor,
            self.io_reads * factor,
            self.buffer_hits * factor,
            self.combinations * factor,
            self.voronoi_ms * factor,
            self.voronoi_io_reads * factor,
            self.total_ms_std * factor,
        )


def measure(
    processor: QueryProcessor,
    queries: Sequence[PreferenceQuery],
    algorithm: str = "stps",
    cold_cache: bool = False,
    warmup: int = 2,
) -> Measurement:
    """Run a workload and average the per-query stats.

    ``cold_cache=False`` (default) keeps the buffer pool warm across
    queries, matching the disk-resident-with-buffer setup the paper
    evaluates; ``warmup`` queries are executed first without being
    counted.  ``cold_cache=True`` clears the buffers before every query
    instead (worst-case I/O).
    """
    n = len(queries)
    if n == 0:
        raise ValueError("empty workload")
    if not cold_cache:
        processor.clear_buffers()
        for query in queries[: max(0, warmup)]:
            processor.query(query, algorithm=algorithm)
    totals = []
    cpu = io = reads = hits = combos = vor_ms = vor_reads = 0.0
    for query in queries:
        if cold_cache:
            processor.clear_buffers()
        result = processor.query(query, algorithm=algorithm)
        s = result.stats
        totals.append(s.total_time_s * 1e3)
        cpu += s.cpu_time_s * 1e3
        io += s.io_time_s * 1e3
        reads += s.io_reads
        hits += s.buffer_hits
        combos += s.combinations
        vor_ms += (s.voronoi_cpu_s + s.voronoi_io_time_s) * 1e3
        vor_reads += s.voronoi_io_reads
    totals_arr = np.asarray(totals)
    return Measurement(
        queries=n,
        total_ms=float(totals_arr.mean()),
        cpu_ms=cpu / n,
        io_ms=io / n,
        io_reads=reads / n,
        buffer_hits=hits / n,
        combinations=combos / n,
        voronoi_ms=vor_ms / n,
        voronoi_io_reads=vor_reads / n,
        total_ms_std=float(totals_arr.std()),
    )
