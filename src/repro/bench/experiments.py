"""Experiment registry: one entry per table/figure panel of Section 8.

Every panel of the paper's evaluation maps to a registered experiment
(``table3a`` .. ``fig14b``) built from two generic sweeps:

* *scalability panels* (Table 3, Figs. 7, 10, 13) vary a dataset
  parameter — feature cardinality, object cardinality, number of feature
  sets ``c``, vocabulary size — on the synthetic data;
* *query-parameter panels* (Figs. 8, 9, 11, 12, 14) vary a query
  parameter — radius ``r``, ``k``, smoothing ``λ``, queried keywords —
  on the real-like or synthetic data.

Series labels follow the paper: the SRT-index vs the modified IR²-tree,
under STDS or STPS, for the range / influence / nearest-neighbor score
variants.  Additional ``ablation_*`` experiments cover the design choices
DESIGN.md calls out (pulling strategy, buffer size, build method).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.bench.context import BenchContext
from repro.bench.timing import Measurement, measure
from repro.core.query import Variant

INDEXES = ("srt", "ir2")


@dataclass(slots=True)
class ExperimentResult:
    """One panel's worth of measurements."""

    experiment_id: str
    title: str
    paper_ref: str
    x_label: str
    x_values: list
    series: dict[str, list[Measurement]] = field(default_factory=dict)

    def add(self, label: str, measurement: Measurement) -> None:
        self.series.setdefault(label, []).append(measurement)


@dataclass(frozen=True, slots=True)
class Experiment:
    """A registered experiment."""

    experiment_id: str
    title: str
    paper_ref: str
    run: Callable[[BenchContext], ExperimentResult]


REGISTRY: dict[str, Experiment] = {}
GROUPS: dict[str, list[str]] = {}


def _register(experiment: Experiment, group: str) -> None:
    REGISTRY[experiment.experiment_id] = experiment
    GROUPS.setdefault(group, []).append(experiment.experiment_id)
    GROUPS.setdefault("all", []).append(experiment.experiment_id)


# ----------------------------------------------------------------------
# generic sweeps
# ----------------------------------------------------------------------
_DATASET_PARAMS = {
    "features": ("|F_i|", lambda cfg: cfg.cardinality_sweep),
    "objects": ("|O|", lambda cfg: cfg.cardinality_sweep),
    "c": ("number of feature sets c", lambda cfg: cfg.c_sweep),
    "vocab": ("indexed keywords", lambda cfg: cfg.vocab_sweep),
}

_QUERY_PARAMS = {
    "radius": ("radius r", lambda cfg: cfg.radius_sweep),
    "k": ("k", lambda cfg: cfg.k_sweep),
    "lam": ("smoothing parameter λ", lambda cfg: cfg.lam_sweep),
    "keywords": ("queried keywords", lambda cfg: cfg.keywords_sweep),
}

_ALGO_LABEL = {"stds": "STDS", "stps": "STPS"}


def _queries_per_point(ctx: BenchContext, algorithm: str, variant: Variant) -> int:
    if algorithm == "stds":
        return ctx.cfg.stds_queries_per_point
    if variant is Variant.NEAREST:
        return ctx.cfg.nn_queries_per_point
    return ctx.cfg.queries_per_point


def _scalability_sweep(
    ctx: BenchContext,
    experiment_id: str,
    title: str,
    paper_ref: str,
    algorithm: str,
    variant: Variant,
    param: str,
) -> ExperimentResult:
    x_label, xs_fn = _DATASET_PARAMS[param]
    xs = list(xs_fn(ctx.cfg))
    result = ExperimentResult(experiment_id, title, paper_ref, x_label, xs)
    n_queries = _queries_per_point(ctx, algorithm, variant)
    for x in xs:
        build_kw = {
            "features": {"n_feat": x},
            "objects": {"n_obj": x},
            "c": {"c": x},
            "vocab": {"vocab": x},
        }[param]
        feature_sets = ctx.feature_sets(
            c=build_kw.get("c"),
            n=build_kw.get("n_feat"),
            vocab=build_kw.get("vocab"),
        )
        queries = ctx.workload(feature_sets, variant=variant, n_queries=n_queries)
        for index in INDEXES:
            processor = ctx.synthetic_processor(index, **build_kw)
            label = f"{_ALGO_LABEL[algorithm]}/{index.upper()}"
            result.add(label, measure(processor, queries, algorithm))
    return result


def _query_param_sweep(
    ctx: BenchContext,
    experiment_id: str,
    title: str,
    paper_ref: str,
    dataset: str,
    variant: Variant,
    param: str,
    algorithm: str = "stps",
) -> ExperimentResult:
    x_label, xs_fn = _QUERY_PARAMS[param]
    xs = list(xs_fn(ctx.cfg))
    result = ExperimentResult(experiment_id, title, paper_ref, x_label, xs)
    n_queries = _queries_per_point(ctx, algorithm, variant)
    if dataset == "real":
        feature_sets = ctx.real().feature_sets
        processor_of = ctx.real_processor
    else:
        feature_sets = ctx.feature_sets()
        processor_of = lambda index: ctx.synthetic_processor(index)  # noqa: E731
    for x in xs:
        workload_kw = {
            "radius": {"radius": x},
            "k": {"k": x},
            "lam": {"lam": x},
            "keywords": {"keywords_per_set": x},
        }[param]
        queries = ctx.workload(
            feature_sets, variant=variant, n_queries=n_queries, **workload_kw
        )
        for index in INDEXES:
            label = f"{_ALGO_LABEL[algorithm]}/{index.upper()}"
            result.add(label, measure(processor_of(index), queries, algorithm))
    return result


def _make_scalability(
    experiment_id: str,
    title: str,
    paper_ref: str,
    algorithm: str,
    variant: Variant,
    param: str,
    group: str,
) -> None:
    def run(ctx: BenchContext) -> ExperimentResult:
        return _scalability_sweep(
            ctx, experiment_id, title, paper_ref, algorithm, variant, param
        )

    _register(Experiment(experiment_id, title, paper_ref, run), group)


def _make_query_param(
    experiment_id: str,
    title: str,
    paper_ref: str,
    dataset: str,
    variant: Variant,
    param: str,
    group: str,
) -> None:
    def run(ctx: BenchContext) -> ExperimentResult:
        return _query_param_sweep(
            ctx, experiment_id, title, paper_ref, dataset, variant, param
        )

    _register(Experiment(experiment_id, title, paper_ref, run), group)


# ----------------------------------------------------------------------
# Table 3 — STDS scalability (synthetic)
# ----------------------------------------------------------------------
for _suffix, _param in zip("abcd", ("features", "objects", "c", "vocab")):
    _make_scalability(
        f"table3{_suffix}",
        f"STDS execution time vs {_DATASET_PARAMS[_param][0]} (synthetic)",
        "Table 3",
        "stds",
        Variant.RANGE,
        _param,
        group="table3",
    )

# ----------------------------------------------------------------------
# Figure 7 — STPS scalability (synthetic, range score)
# ----------------------------------------------------------------------
for _suffix, _param in zip("abcd", ("features", "objects", "c", "vocab")):
    _make_scalability(
        f"fig7{_suffix}",
        f"STPS vs {_DATASET_PARAMS[_param][0]} (synthetic, range score)",
        f"Figure 7({_suffix})",
        "stps",
        Variant.RANGE,
        _param,
        group="fig7",
    )

# ----------------------------------------------------------------------
# Figures 8 & 9 — query parameters (range score)
# ----------------------------------------------------------------------
for _suffix, _param in zip("abcd", ("radius", "k", "lam", "keywords")):
    _make_query_param(
        f"fig8{_suffix}",
        f"STPS vs {_QUERY_PARAMS[_param][0]} (real dataset, range score)",
        f"Figure 8({_suffix})",
        "real",
        Variant.RANGE,
        _param,
        group="fig8",
    )
    _make_query_param(
        f"fig9{_suffix}",
        f"STPS vs {_QUERY_PARAMS[_param][0]} (synthetic, range score)",
        f"Figure 9({_suffix})",
        "synthetic",
        Variant.RANGE,
        _param,
        group="fig9",
    )

# ----------------------------------------------------------------------
# Figure 10 — influence-score scalability (synthetic)
# ----------------------------------------------------------------------
for _suffix, _param in zip("abcd", ("features", "objects", "c", "vocab")):
    _make_scalability(
        f"fig10{_suffix}",
        f"STPS vs {_DATASET_PARAMS[_param][0]} (synthetic, influence score)",
        f"Figure 10({_suffix})",
        "stps",
        Variant.INFLUENCE,
        _param,
        group="fig10",
    )

# ----------------------------------------------------------------------
# Figure 11 — influence, real dataset (k, queried keywords)
# ----------------------------------------------------------------------
_make_query_param(
    "fig11a",
    "STPS vs k (real dataset, influence score)",
    "Figure 11(a)",
    "real",
    Variant.INFLUENCE,
    "k",
    group="fig11",
)
_make_query_param(
    "fig11b",
    "STPS vs queried keywords (real dataset, influence score)",
    "Figure 11(b)",
    "real",
    Variant.INFLUENCE,
    "keywords",
    group="fig11",
)

# ----------------------------------------------------------------------
# Figure 12 — influence, synthetic, query parameters
# ----------------------------------------------------------------------
for _suffix, _param in zip("abcd", ("radius", "k", "lam", "keywords")):
    _make_query_param(
        f"fig12{_suffix}",
        f"STPS vs {_QUERY_PARAMS[_param][0]} (synthetic, influence score)",
        f"Figure 12({_suffix})",
        "synthetic",
        Variant.INFLUENCE,
        _param,
        group="fig12",
    )

# ----------------------------------------------------------------------
# Figure 13 — nearest-neighbor scalability (synthetic)
# ----------------------------------------------------------------------
_make_scalability(
    "fig13a",
    "STPS vs |F_i| (synthetic, nearest-neighbor score)",
    "Figure 13(a)",
    "stps",
    Variant.NEAREST,
    "features",
    group="fig13",
)
_make_scalability(
    "fig13b",
    "STPS vs |O| (synthetic, nearest-neighbor score)",
    "Figure 13(b)",
    "stps",
    Variant.NEAREST,
    "objects",
    group="fig13",
)

# ----------------------------------------------------------------------
# Figure 14 — nearest-neighbor, varying k (real + synthetic)
# ----------------------------------------------------------------------
_make_query_param(
    "fig14a",
    "STPS vs k (real dataset, nearest-neighbor score)",
    "Figure 14(a)",
    "real",
    Variant.NEAREST,
    "k",
    group="fig14",
)
_make_query_param(
    "fig14b",
    "STPS vs k (synthetic, nearest-neighbor score)",
    "Figure 14(b)",
    "synthetic",
    Variant.NEAREST,
    "k",
    group="fig14",
)


# ----------------------------------------------------------------------
# Ablations (extensions; DESIGN.md Section 7)
# ----------------------------------------------------------------------
def _ablation_pulling(ctx: BenchContext) -> ExperimentResult:
    """Prioritized pulling (Definition 5) vs round-robin."""
    from repro.core.combinations import PULL_PRIORITIZED, PULL_ROUND_ROBIN
    from repro.core.stps import stps as run_stps

    xs = list(ctx.cfg.c_sweep)
    result = ExperimentResult(
        "ablation_pulling",
        "STPS pulling strategy: prioritized vs round-robin (synthetic)",
        "Section 6.3 (pulling strategy)",
        "number of feature sets c",
        xs,
    )
    import time

    for c in xs:
        feature_sets = ctx.feature_sets(c=c)
        queries = ctx.workload(feature_sets, n_queries=ctx.cfg.queries_per_point)
        processor = ctx.synthetic_processor("srt", c=c)
        for pulling, label in (
            (PULL_PRIORITIZED, "STPS/prioritized"),
            (PULL_ROUND_ROBIN, "STPS/round-robin"),
        ):
            total_ms = io_ms = reads = pulls = combos = 0.0
            for query in queries:
                processor.clear_buffers()
                t0 = time.perf_counter()
                res = run_stps(
                    processor.object_tree,
                    processor.feature_trees,
                    query,
                    pulling=pulling,
                )
                total_ms += (time.perf_counter() - t0) * 1e3
                total_ms += res.stats.io_time_s * 1e3
                io_ms += res.stats.io_time_s * 1e3
                reads += res.stats.io_reads
                pulls += res.stats.features_pulled
                combos += res.stats.combinations
            n = len(queries)
            result.add(
                label,
                Measurement(
                    n, total_ms / n, (total_ms - io_ms) / n, io_ms / n,
                    reads / n, 0.0, combos / n, 0.0, pulls / n,
                ),
            )
    return result


def _ablation_buffer(ctx: BenchContext) -> ExperimentResult:
    """Effect of the LRU buffer-pool size on physical I/O."""
    sizes = [16, 64, 256, 1024]
    result = ExperimentResult(
        "ablation_buffer",
        "STPS physical reads vs buffer-pool size (synthetic, SRT)",
        "storage-substrate ablation",
        "buffer pages",
        sizes,
    )
    from repro.core.processor import QueryProcessor

    feature_sets = ctx.feature_sets()
    queries = ctx.workload(feature_sets)
    for pages in sizes:
        processor = QueryProcessor.build(
            ctx.objects(),
            feature_sets,
            index="srt",
            page_size=ctx.cfg.page_size,
            buffer_pages=pages,
        )
        # Warm runs WITHOUT clearing buffers between queries: the point is
        # cross-query caching.
        result.add("STPS/SRT", measure(processor, queries, cold_cache=False))
    return result


def _ablation_build(ctx: BenchContext) -> ExperimentResult:
    """Bulk-loaded vs insert-built SRT index, query-time comparison."""
    from repro.core.processor import QueryProcessor

    methods = ["bulk", "insert"]
    result = ExperimentResult(
        "ablation_build",
        "STPS on bulk-loaded vs insert-built SRT index (synthetic)",
        "Section 4.2 (bulk insertion)",
        "build method",
        methods,
    )
    feature_sets = ctx.feature_sets()
    queries = ctx.workload(feature_sets)
    for method in methods:
        processor = QueryProcessor.build(
            ctx.objects(),
            feature_sets,
            index="srt",
            page_size=ctx.cfg.page_size,
            buffer_pages=ctx.cfg.buffer_pages,
            method=method,
        )
        result.add("STPS/SRT", measure(processor, queries))
    return result


def _ablation_index(ctx: BenchContext) -> ExperimentResult:
    """Three-way index comparison isolating the SRT-index's ingredients.

    SRT = 4-d clustering + exact summaries; IR-tree = spatial clustering
    + exact summaries; IR² = spatial clustering + signatures.  The gap
    SRT→IR-tree is the clustering contribution, IR-tree→IR² the summary
    contribution.
    """
    xs = list(ctx.cfg.cardinality_sweep)
    result = ExperimentResult(
        "ablation_index",
        "STPS on SRT vs IR-tree vs IR² (synthetic, range score)",
        "Section 4 (index design)",
        "|F_i|",
        xs,
    )
    for n in xs:
        feature_sets = ctx.feature_sets(n=n)
        queries = ctx.workload(feature_sets)
        for index in ("srt", "irtree", "ir2"):
            processor = ctx.synthetic_processor(index, n_feat=n)
            result.add(f"STPS/{index.upper()}", measure(processor, queries))
    return result


def _ablation_influence_algo(ctx: BenchContext) -> ExperimentResult:
    """Paper's STPS (Alg. 5) vs the combination-free ISS extension.

    STPS enumerates every combination above the k-th score (cost grows
    with the product of per-set candidate counts); ISS searches the
    object tree directly (cost linear in c).  The crossover sits around
    c = 3.
    """
    xs = [c for c in ctx.cfg.c_sweep if c <= 3]
    result = ExperimentResult(
        "ablation_influence_algo",
        "Influence score: STPS (Alg. 5) vs ISS extension (synthetic)",
        "Section 7.1 + DESIGN.md extensions",
        "number of feature sets c",
        xs,
    )
    for c in xs:
        feature_sets = ctx.feature_sets(c=c)
        queries = ctx.workload(
            feature_sets,
            variant=Variant.INFLUENCE,
            n_queries=ctx.cfg.nn_queries_per_point,
        )
        processor = ctx.synthetic_processor("srt", c=c)
        for algorithm in ("stps", "iss"):
            result.add(
                f"{algorithm.upper()}/SRT",
                measure(processor, queries, algorithm),
            )
    return result


_register(
    Experiment(
        "ablation_index",
        "Index three-way ablation",
        "Section 4",
        _ablation_index,
    ),
    group="ablations",
)
_register(
    Experiment(
        "ablation_influence_algo",
        "Influence algorithm ablation",
        "Section 7.1",
        _ablation_influence_algo,
    ),
    group="ablations",
)
_register(
    Experiment(
        "ablation_pulling",
        "Pulling-strategy ablation",
        "Section 6.3",
        _ablation_pulling,
    ),
    group="ablations",
)
_register(
    Experiment(
        "ablation_buffer",
        "Buffer-pool ablation",
        "substrate",
        _ablation_buffer,
    ),
    group="ablations",
)
_register(
    Experiment(
        "ablation_build",
        "Build-method ablation",
        "Section 4.2",
        _ablation_build,
    ),
    group="ablations",
)


def resolve(names: list[str]) -> list[Experiment]:
    """Expand experiment ids and group names into experiment objects."""
    ids: list[str] = []
    for name in names:
        if name in GROUPS:
            ids.extend(GROUPS[name])
        elif name in REGISTRY:
            ids.append(name)
        else:
            known = sorted(set(REGISTRY) | set(GROUPS))
            raise KeyError(f"unknown experiment {name!r}; known: {known}")
    # Preserve order, drop duplicates.
    seen: set[str] = set()
    unique = [i for i in ids if not (i in seen or seen.add(i))]
    return [REGISTRY[i] for i in unique]
