"""Text and CSV rendering of experiment results.

``format_result`` prints the same rows/series the paper's tables and bar
charts report: one row per x-value, one column group per series, each
cell showing total time with its I/O + CPU split (the paper's dark/white
bar segments) and, for the NN variant, the separately-tracked Voronoi
cost (the striped segments of Figures 13-14).
"""

from __future__ import annotations

import csv
import io

from repro.bench.experiments import ExperimentResult
from repro.bench.timing import Measurement


def _fmt_cell(m: Measurement, show_voronoi: bool) -> str:
    cell = f"{m.total_ms:9.1f}ms (io {m.io_ms:7.1f} + cpu {m.cpu_ms:7.1f})"
    if show_voronoi and m.voronoi_ms > 0:
        cell += f" [voronoi {m.voronoi_ms:7.1f}]"
    return cell


def format_result(result: ExperimentResult) -> str:
    """Human-readable table for one experiment."""
    lines = [
        f"== {result.experiment_id}: {result.title}",
        f"   (reproduces {result.paper_ref}; times are per-query averages)",
    ]
    show_voronoi = any(
        m.voronoi_ms > 0 for ms in result.series.values() for m in ms
    )
    width = max(len(str(x)) for x in result.x_values)
    width = max(width, len(result.x_label))
    for label in result.series:
        lines.append(f"   series: {label}")
    header = f"   {result.x_label:>{width}}"
    lines.append("")
    lines.append(header + "".join(f" | {label:^42}" for label in result.series))
    for i, x in enumerate(result.x_values):
        row = f"   {str(x):>{width}}"
        for label, measurements in result.series.items():
            row += " | " + _fmt_cell(measurements[i], show_voronoi)
        lines.append(row)
    lines.append("")
    return "\n".join(lines)


def result_from_csv(text: str) -> ExperimentResult:
    """Rebuild an :class:`ExperimentResult` from :func:`result_to_csv`
    output (used to re-validate shape claims on saved runs)."""
    rows = list(csv.DictReader(io.StringIO(text)))
    if not rows:
        raise ValueError("empty result CSV")
    first = rows[0]
    x_values: list = []
    series: dict[str, list[Measurement]] = {}
    for row in rows:
        x: object = row["x"]
        try:
            x = int(x)  # type: ignore[assignment]
        except ValueError:
            try:
                x = float(x)  # type: ignore[assignment]
            except ValueError:
                pass
        if x not in x_values:
            x_values.append(x)
        series.setdefault(row["series"], []).append(
            Measurement(
                queries=int(row["queries"]),
                total_ms=float(row["total_ms"]),
                cpu_ms=float(row["cpu_ms"]),
                io_ms=float(row["io_ms"]),
                io_reads=float(row["io_reads"]),
                buffer_hits=float(row["buffer_hits"]),
                combinations=float(row["combinations"]),
                voronoi_ms=float(row["voronoi_ms"]),
                voronoi_io_reads=float(row["voronoi_io_reads"]),
                total_ms_std=float(row.get("total_ms_std", 0.0) or 0.0),
            )
        )
    result = ExperimentResult(
        first["experiment"],
        first["experiment"],
        first["paper_ref"],
        first["x_label"],
        x_values,
    )
    result.series = series
    return result


def result_to_csv(result: ExperimentResult) -> str:
    """CSV export: one row per (x, series) pair with all counters."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "experiment",
            "paper_ref",
            "x_label",
            "x",
            "series",
            "queries",
            "total_ms",
            "cpu_ms",
            "io_ms",
            "io_reads",
            "buffer_hits",
            "combinations",
            "voronoi_ms",
            "voronoi_io_reads",
            "total_ms_std",
        ]
    )
    for label, measurements in result.series.items():
        for x, m in zip(result.x_values, measurements):
            writer.writerow(
                [
                    result.experiment_id,
                    result.paper_ref,
                    result.x_label,
                    x,
                    label,
                    m.queries,
                    f"{m.total_ms:.3f}",
                    f"{m.cpu_ms:.3f}",
                    f"{m.io_ms:.3f}",
                    f"{m.io_reads:.1f}",
                    f"{m.buffer_hits:.1f}",
                    f"{m.combinations:.1f}",
                    f"{m.voronoi_ms:.3f}",
                    f"{m.voronoi_io_reads:.1f}",
                    f"{m.total_ms_std:.3f}",
                ]
            )
    return buffer.getvalue()
